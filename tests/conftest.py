"""Shared fixtures: paper FD sets, the running example, and RNG helpers."""

from __future__ import annotations

import random

import pytest

from repro.core.fd import FDSet
from repro.core.table import Table
from repro.datagen.office import office_fds, office_table


@pytest.fixture
def office() -> Table:
    """Table T of Figure 1(a)."""
    return office_table()


@pytest.fixture
def office_delta() -> FDSet:
    """Δ of the running example (Example 2.2)."""
    return office_fds()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20180618)  # PODS'18 conference date


# FD sets referenced repeatedly in the paper -------------------------------

#: Example 3.1's ``Δ_{A↔B→C}``.
DELTA_A_IFF_B_TO_C = FDSet("A -> B; B -> A; B -> C")

#: Example 3.1's Δ1 over the ssn schema.
DELTA_SSN = FDSet(
    "ssn -> first; ssn -> last; first last -> ssn; ssn -> address; "
    "ssn office -> phone; ssn office -> fax"
)

#: Example 3.8's class representatives Δ1–Δ5.
EXAMPLE_38 = {
    1: FDSet("A -> B; C -> D"),
    2: FDSet("A -> C D; B -> C E"),
    3: FDSet("A -> B C; B -> D"),
    4: FDSet("A B -> C; A C -> B; B C -> A"),
    5: FDSet("A B -> C; C -> A D"),
}


def random_small_table(
    rng: random.Random,
    schema,
    size: int,
    domain: int = 3,
    weighted: bool = False,
) -> Table:
    """A small uniform-random table for cross-checking solvers."""
    rows = [
        tuple(f"v{rng.randrange(domain)}" for _ in schema) for _ in range(size)
    ]
    weights = (
        [float(rng.choice((1, 1, 2, 3))) for _ in range(size)]
        if weighted
        else None
    )
    return Table.from_rows(schema, rows, weights)
