"""Shared fixtures: paper FD sets, the running example, and RNG helpers.

The reusable constants and data helpers live in :mod:`repro.testing`
(importable from anywhere); they are re-exported here so legacy
``from conftest import …`` still works inside ``tests/``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.fd import FDSet
from repro.core.table import Table
from repro.datagen.office import office_fds, office_table
from repro.testing import (  # noqa: F401 — re-exported for test modules
    DELTA_A_IFF_B_TO_C,
    DELTA_SSN,
    EXAMPLE_38,
    random_small_table,
)


@pytest.fixture
def office() -> Table:
    """Table T of Figure 1(a)."""
    return office_table()


@pytest.fixture
def office_delta() -> FDSet:
    """Δ of the running example (Example 2.2)."""
    return office_fds()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20180618)  # PODS'18 conference date
