"""Tests for the Theorem 4.14 embeddings (Lemmas B.6 / B.7).

The headline property: the optimal U-repair distance is preserved by
both embeddings — verified with the exact solver on small instances.
"""

import pytest

from repro.core.exact import exact_u_repair
from repro.core.fd import FDSet
from repro.core.table import Table
from repro.core.violations import satisfies
from repro.reductions.urepair_families import (
    DELTA_ABC_CHAIN,
    PAD,
    delta_k,
    delta_k_schema,
    delta_prime_k,
    delta_prime_k_schema,
    embed_chain_into_delta_k,
    embed_dp1_into_dpk,
)

from repro.testing import random_small_table


class TestFamilies:
    def test_delta_k_shape(self):
        fds = delta_k(3)
        assert len(fds) == 2 + 3
        assert fds.mlc() == 5  # k + 2

    def test_delta_prime_k_shape(self):
        fds = delta_prime_k(3)
        assert len(fds) == 4
        assert fds.mlc() == 2  # ⌈(k+1)/2⌉

    def test_k_validation(self):
        with pytest.raises(ValueError):
            delta_k(0)
        with pytest.raises(ValueError):
            embed_dp1_into_dpk(Table(delta_prime_k_schema(1), {}), 1)


class TestLemmaB6:
    def test_embedding_layout(self):
        table = Table.from_rows(("A", "B", "C"), [("a", "b", "c")])
        embedded = embed_chain_into_delta_k(table, 2)
        assert embedded.schema == delta_k_schema(2)
        record = dict(zip(embedded.schema, embedded[1]))
        assert record["A1"] == "a" and record["B0"] == "b" and record["C"] == "c"
        assert record["A0"] == 0 and record["B2"] == 0

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            embed_chain_into_delta_k(Table(("X", "Y"), {}), 2)

    def test_consistency_preserved_both_ways(self, rng):
        fds_k = delta_k(2)
        for _ in range(10):
            table = random_small_table(rng, ("A", "B", "C"), 5, domain=2)
            embedded = embed_chain_into_delta_k(table, 2)
            assert satisfies(table, DELTA_ABC_CHAIN) == satisfies(
                embedded, fds_k
            )

    @pytest.mark.parametrize("k", (1, 2))
    def test_optimal_distance_preserved(self, k, rng):
        """The Lemma B.6 identity: dist_upd optima coincide."""
        fds_k = delta_k(k)
        for _ in range(4):
            table = random_small_table(rng, ("A", "B", "C"), 4, domain=2)
            embedded = embed_chain_into_delta_k(table, k)
            source_opt = table.dist_upd(exact_u_repair(table, DELTA_ABC_CHAIN))
            target_opt = embedded.dist_upd(exact_u_repair(embedded, fds_k))
            assert source_opt == pytest.approx(target_opt)

    def test_weights_preserved(self):
        table = Table.from_rows(
            ("A", "B", "C"), [("a", "b", "c")], weights=[7.0]
        )
        assert embed_chain_into_delta_k(table, 2).weight(1) == 7.0


class TestLemmaB7:
    def _dp1_table(self, rng, size):
        return random_small_table(rng, delta_prime_k_schema(1), size, domain=2)

    def test_embedding_layout(self, rng):
        table = self._dp1_table(rng, 1)
        embedded = embed_dp1_into_dpk(table, 3)
        assert embedded.schema == delta_prime_k_schema(3)
        record = dict(zip(embedded.schema, embedded[1]))
        assert record["A4"] == PAD and record["B3"] == PAD

    def test_consistency_preserved(self, rng):
        dp1, dp3 = delta_prime_k(1), delta_prime_k(3)
        for _ in range(10):
            table = self._dp1_table(rng, 5)
            embedded = embed_dp1_into_dpk(table, 3)
            assert satisfies(table, dp1) == satisfies(embedded, dp3)

    def test_optimal_distance_preserved(self, rng):
        """The Lemma B.7 identity: dist_upd optima coincide."""
        dp1, dp2 = delta_prime_k(1), delta_prime_k(2)
        for _ in range(3):
            table = self._dp1_table(rng, 3)
            embedded = embed_dp1_into_dpk(table, 2)
            source_opt = table.dist_upd(exact_u_repair(table, dp1))
            target_opt = embedded.dist_upd(exact_u_repair(embedded, dp2))
            assert source_opt == pytest.approx(target_opt)

    def test_dp1_has_common_lhs_a1(self):
        """Theorem 4.14's base case: Δ'_1 has common lhs A1 and fails
        OSRSucceeds (its residual is the hard {A→B, C→D} shape)."""
        from repro.core.dichotomy import osr_succeeds

        dp1 = delta_prime_k(1)
        assert dp1.common_lhs() == frozenset({"A1"})
        assert not osr_succeeds(dp1)
