"""Tests for the exact baselines (vertex-cover S-repair, U-repair search)."""

import pytest

from repro.core.exact import (
    ExactSearchLimit,
    brute_force_s_repair,
    exact_s_repair,
    exact_u_repair,
)
from repro.core.fd import FDSet
from repro.core.table import FreshValue, Table
from repro.core.violations import satisfies

from repro.testing import random_small_table


class TestExactSRepair:
    def test_matches_brute_force(self, rng):
        for fds in [FDSet("A -> B; B -> C"), FDSet("A -> B; C -> D"), FDSet("A B -> C; C -> B")]:
            schema = sorted(fds.attributes)
            for _ in range(10):
                table = random_small_table(
                    rng, schema, rng.randrange(0, 9), domain=2, weighted=True
                )
                vc = exact_s_repair(table, fds)
                bf = brute_force_s_repair(table, fds)
                assert satisfies(vc, fds)
                assert table.dist_sub(vc) == pytest.approx(table.dist_sub(bf))

    def test_consistent_table_unchanged(self, office, office_delta):
        from repro.datagen.office import consistent_subsets

        s1 = consistent_subsets()["S1"]
        assert exact_s_repair(s1, office_delta) == s1

    def test_figure1_distance(self, office, office_delta):
        repair = exact_s_repair(office, office_delta)
        assert office.dist_sub(repair) == 2.0

    def test_result_is_maximal(self, rng):
        """The complement of a minimum cover is a *maximal* independent
        set, i.e. a subset repair in the local sense too."""
        fds = FDSet("A -> B; B -> C")
        for _ in range(10):
            table = random_small_table(rng, ("A", "B", "C"), 7, domain=2)
            repair = exact_s_repair(table, fds)
            kept = set(repair.ids())
            for tid in table.ids():
                if tid in kept:
                    continue
                candidate = table.subset(sorted(kept | {tid}, key=str))
                assert not satisfies(candidate, fds)

    def test_brute_force_guard(self):
        table = Table.from_rows(("A",), [("x",)] * 25)
        with pytest.raises(ExactSearchLimit):
            brute_force_s_repair(table, FDSet("-> A"), max_tuples=20)


class TestExactURepair:
    def test_already_consistent(self, office_delta):
        from repro.datagen.office import consistent_subsets

        s2 = consistent_subsets()["S2"]
        assert exact_u_repair(s2, office_delta) == s2

    def test_single_fd_one_cell_fix(self):
        table = Table.from_rows(("A", "B"), [("a", 1), ("a", 2)])
        fixed = exact_u_repair(table, FDSet("A -> B"))
        assert table.dist_upd(fixed) == 1.0
        assert satisfies(fixed, FDSet("A -> B"))

    def test_weighted_prefers_cheap_tuple(self):
        table = Table.from_rows(
            ("A", "B"), [("a", 1), ("a", 2)], weights=[10.0, 1.0]
        )
        fixed = exact_u_repair(table, FDSet("A -> B"))
        assert table.dist_upd(fixed) == 1.0
        assert fixed[1] == ("a", 1)  # the heavy tuple is untouched

    def test_consensus_fd_majority(self):
        table = Table.from_rows(("A",), [("x",), ("x",), ("y",)])
        fixed = exact_u_repair(table, FDSet("-> A"))
        assert table.dist_upd(fixed) == 1.0

    def test_fresh_values_used_when_beneficial(self):
        """Breaking an lhs with a fresh value can beat any active-domain
        fix (the Figure 1(e) pattern)."""
        fds = FDSet("A -> B; A -> C")
        table = Table.from_rows(
            ("A", "B", "C"),
            [("a", 1, 1), ("a", 2, 2)],
        )
        fixed = exact_u_repair(table, fds)
        # One cell: retarget A of either tuple to a fresh value; two cells
        # would be needed to reconcile B and C.
        assert table.dist_upd(fixed) == 1.0
        changed = fixed.changed_cells(table)
        assert len(changed) == 1 and changed[0][1] == "A"

    def test_figure1_running_example_cost(self, office, office_delta):
        fixed = exact_u_repair(office, office_delta)
        assert office.dist_upd(fixed) == 2.0
        assert satisfies(fixed, office_delta)

    def test_upper_bound_prunes_but_preserves_optimum(self):
        table = Table.from_rows(("A", "B"), [("a", 1), ("a", 2), ("a", 3)])
        fds = FDSet("A -> B")
        fixed = exact_u_repair(table, fds, upper_bound=5.0)
        assert table.dist_upd(fixed) == 2.0

    def test_budget_guard(self):
        table = Table.from_rows(
            ("A", "B", "C"),
            [(f"a{i % 3}", i, i) for i in range(9)],
        )
        with pytest.raises(ExactSearchLimit):
            exact_u_repair(table, FDSet("A -> B; B -> C"), cell_budget=10)

    def test_max_changes_too_small(self):
        table = Table.from_rows(("A",), [("x",), ("y",), ("z",)])
        with pytest.raises(ExactSearchLimit):
            # Enforcing ∅ → A needs two cell changes.
            exact_u_repair(table, FDSet("-> A"), max_changes=1)

    def test_cross_check_with_corollary_45(self, rng):
        """Corollary 4.5: dist_sub(S*) ≤ dist_upd(U*) ≤ mlc·dist_sub(S*)
        for consensus-free Δ."""
        fds = FDSet("A -> B; B -> A")
        for _ in range(8):
            table = random_small_table(rng, ("A", "B"), rng.randrange(1, 5), domain=2)
            s_star = exact_s_repair(table, fds)
            u_star = exact_u_repair(table, fds)
            ds = table.dist_sub(s_star)
            du = table.dist_upd(u_star)
            assert ds <= du + 1e-9
            assert du <= fds.mlc() * ds + 1e-9
