"""Tests for the workload generators."""

import pytest

from repro.core.fd import FDSet
from repro.core.violations import satisfies
from repro.datagen.cnf import random_non_mixed_formula
from repro.datagen.graphs import bounded_degree_graph, gnp_graph, random_tripartite_graph
from repro.datagen.office import (
    EXPECTED_SUBSET_DISTANCES,
    EXPECTED_UPDATE_DISTANCES,
    consistent_subsets,
    consistent_updates,
    office_fds,
    office_table,
)
from repro.datagen.probabilistic import random_probabilistic_table
from repro.datagen.synthetic import (
    clustered_conflicts_table,
    consistent_table,
    corrupt_cells,
    planted_violations_table,
    random_table,
)


class TestOffice:
    def test_table_matches_figure1(self):
        t = office_table()
        assert len(t) == 4
        assert t[1] == ("HQ", "322", 3, "Paris")
        assert t.weight(1) == 2 and t.weight(2) == 1

    def test_golden_subset_distances(self):
        """Example 2.3's distances for S1–S3."""
        t = office_table()
        for name, subset in consistent_subsets().items():
            assert t.dist_sub(subset) == EXPECTED_SUBSET_DISTANCES[name], name

    def test_golden_update_distances(self):
        """Example 2.3's distances for U1–U3."""
        t = office_table()
        for name, update in consistent_updates().items():
            assert t.dist_upd(update) == EXPECTED_UPDATE_DISTANCES[name], name

    def test_all_variants_consistent(self):
        fds = office_fds()
        for variant in (*consistent_subsets().values(), *consistent_updates().values()):
            assert satisfies(variant, fds)

    def test_original_violates(self):
        assert not satisfies(office_table(), office_fds())


class TestSynthetic:
    def test_random_table_shape(self):
        t = random_table(("A", "B"), 10, domain=3, seed=1)
        assert len(t) == 10 and t.schema == ("A", "B")

    def test_random_table_deterministic(self):
        t1 = random_table(("A", "B"), 10, seed=42)
        t2 = random_table(("A", "B"), 10, seed=42)
        assert t1 == t2

    @pytest.mark.parametrize(
        "fds",
        [FDSet("A -> B"), FDSet("A -> B; B -> C"), FDSet("A B -> C; C -> B")],
        ids=str,
    )
    def test_consistent_table_satisfies(self, fds):
        schema = sorted(fds.attributes)
        for seed in range(5):
            t = consistent_table(schema, fds, 20, seed=seed)
            assert satisfies(t, fds)

    def test_corrupt_cells_rate_zero_is_identity(self):
        t = random_table(("A", "B"), 8, seed=3)
        assert corrupt_cells(t, 0.0, seed=4) == t

    def test_corrupt_cells_rate_changes_cells(self):
        t = random_table(("A", "B"), 30, domain=10, seed=5)
        corrupted = corrupt_cells(t, 0.5, domain=10, seed=6)
        assert len(corrupted.changed_cells(t)) > 5

    def test_planted_violations_zero_corruption(self):
        fds = FDSet("A -> B; B -> C")
        t = planted_violations_table(("A", "B", "C"), fds, 15, corruption=0.0, seed=7)
        assert satisfies(t, fds)

    def test_planted_violations_introduce_dirt(self):
        fds = FDSet("A -> B")
        dirty_count = 0
        for seed in range(5):
            t = planted_violations_table(
                ("A", "B"), fds, 30, corruption=0.4, domain=2, seed=seed
            )
            if not satisfies(t, fds):
                dirty_count += 1
        assert dirty_count >= 3  # corruption at 40% almost surely violates

    def test_weighted_generation(self):
        t = planted_violations_table(
            ("A", "B"), FDSet("A -> B"), 10, weighted=True, seed=8
        )
        assert len(t) == 10


class TestGraphGenerators:
    def test_gnp_extremes(self):
        empty = gnp_graph(6, 0.0, seed=1)
        full = gnp_graph(6, 1.0, seed=1)
        assert empty.num_edges() == 0
        assert full.num_edges() == 15

    def test_bounded_degree_respected(self):
        for seed in range(5):
            g = bounded_degree_graph(20, max_degree=3, seed=seed)
            assert g.max_degree() <= 3

    def test_tripartite_edges_cross_parts(self):
        g = random_tripartite_graph(3, 0.8, seed=2)
        for edge in g.edges:
            u, v = tuple(edge)
            assert u[0] != v[0]  # parts are labelled a/b/c


class TestCnfGenerator:
    def test_clause_count_and_size(self):
        f = random_non_mixed_formula(5, 9, 3, seed=3)
        assert len(f.clauses) == 9
        assert all(len(c.variables) == 3 for c in f.clauses)

    def test_clause_size_guard(self):
        with pytest.raises(ValueError):
            random_non_mixed_formula(2, 3, 5, seed=0)

    def test_non_mixed_property(self):
        f = random_non_mixed_formula(6, 20, 2, seed=4)
        for clause in f.clauses:
            assert isinstance(clause.positive, bool)


class TestClusteredConflicts:
    FAMILIES = (
        FDSet("A -> B"),
        FDSet("A -> B; B -> C"),
        FDSet("A -> B; A B -> C"),
        FDSet("A -> B; B -> A; B -> C"),
    )

    def test_components_are_exactly_the_clusters(self):
        from repro.core.decompose import decompose

        table = clustered_conflicts_table(
            ("A", "B", "C"), 500, clusters=10, cluster_size=12, seed=1
        )
        for fds in self.FAMILIES:
            decomp = decompose(table, fds)
            assert decomp.component_count == 10
            assert {c.size for c in decomp.components} == {12}

    def test_filler_is_consistent_under_every_family(self):
        table = clustered_conflicts_table(
            ("A", "B", "C"), 300, clusters=0, cluster_size=5, seed=2
        )
        for fds in self.FAMILIES:
            assert satisfies(table, fds)

    def test_size_guards(self):
        with pytest.raises(ValueError):
            clustered_conflicts_table(("A", "B"), 10, clusters=3, cluster_size=5)
        with pytest.raises(ValueError):
            clustered_conflicts_table(("A", "B"), 10, clusters=2, cluster_size=1)


class TestProbabilisticGenerator:
    def test_weights_are_probabilities(self):
        t = random_probabilistic_table(("A", "B"), 50, seed=5)
        for tid in t.ids():
            assert 0.0 < t.weight(tid) <= 1.0

    def test_fraction_mix(self):
        t = random_probabilistic_table(
            ("A",), 200, certain_fraction=0.2, unlikely_fraction=0.3, seed=6
        )
        certain = sum(1 for tid in t.ids() if t.weight(tid) == 1.0)
        unlikely = sum(1 for tid in t.ids() if t.weight(tid) <= 0.5)
        assert certain > 10
        assert unlikely > 20
