"""Tests for subset-repair counting/enumeration (the chain dichotomy of
Livshits & Kimelfeld [26], recalled in Section 2.2 of the paper)."""

import pytest

from repro.core.counting import (
    NotChainError,
    brute_force_count_s_repairs,
    count_s_repairs,
    enumerate_s_repairs,
)
from repro.core.fd import FDSet
from repro.core.checking import is_s_repair
from repro.core.table import Table
from repro.datagen.office import consistent_subsets, office_fds, office_table
from repro.graphs.graph import Graph
from repro.graphs.mis import count_maximal_independent_sets, maximal_independent_sets

from repro.testing import random_small_table

CHAIN_SETS = [
    FDSet("A -> B"),
    FDSet("A -> B; A B -> C"),
    FDSet("-> A; A -> B"),
    FDSet("A -> B C"),
]


class TestMaximalIndependentSets:
    def test_empty_graph_has_one(self):
        assert count_maximal_independent_sets(Graph()) == 1

    def test_edgeless_graph(self):
        g = Graph()
        for i in range(3):
            g.add_node(i)
        sets = list(maximal_independent_sets(g))
        assert sets == [frozenset({0, 1, 2})]

    def test_single_edge(self):
        g = Graph.from_edges([("a", "b")])
        assert {frozenset("a"), frozenset("b")} == set(
            maximal_independent_sets(g)
        )

    def test_path_graph(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        sets = set(maximal_independent_sets(g))
        assert sets == {frozenset({1, 3}), frozenset({2})}

    def test_sets_are_maximal_and_independent(self):
        import random

        rng = random.Random(3)
        for _ in range(10):
            g = Graph()
            n = rng.randrange(2, 8)
            for i in range(n):
                g.add_node(i)
            for i in range(n):
                for j in range(i + 1, n):
                    if rng.random() < 0.4:
                        g.add_edge(i, j)
            for s in maximal_independent_sets(g):
                assert g.is_independent_set(s)
                for v in g.nodes():
                    if v not in s:
                        assert not g.is_independent_set(s | {v})


class TestChainCounting:
    def test_office_has_exactly_two_repairs(self):
        """Figure 1: the subset repairs of T are exactly S1 and S2."""
        table, fds = office_table(), office_fds()
        assert count_s_repairs(table, fds) == 2
        repairs = {frozenset(r.ids()) for r in enumerate_s_repairs(table, fds)}
        expected = {
            frozenset(consistent_subsets()["S1"].ids()),
            frozenset(consistent_subsets()["S2"].ids()),
        }
        assert repairs == expected

    @pytest.mark.parametrize("fds", CHAIN_SETS, ids=str)
    def test_matches_brute_force(self, fds, rng):
        schema = sorted(fds.attributes)
        for _ in range(10):
            table = random_small_table(rng, schema, rng.randrange(0, 10), domain=2)
            assert count_s_repairs(table, fds) == brute_force_count_s_repairs(
                table, fds
            )

    @pytest.mark.parametrize("fds", CHAIN_SETS, ids=str)
    def test_enumeration_yields_distinct_repairs(self, fds, rng):
        schema = sorted(fds.attributes)
        table = random_small_table(rng, schema, 8, domain=2)
        repairs = list(enumerate_s_repairs(table, fds))
        assert len(repairs) == count_s_repairs(table, fds)
        assert len({frozenset(r.ids()) for r in repairs}) == len(repairs)
        for repair in repairs:
            assert is_s_repair(table, fds, repair)

    def test_consistent_table_has_one_repair(self):
        fds = FDSet("A -> B")
        table = Table.from_rows(("A", "B"), [("a", 1), ("b", 2)])
        assert count_s_repairs(table, fds) == 1

    def test_empty_table(self):
        assert count_s_repairs(Table(("A", "B"), {}), FDSet("A -> B")) == 1

    def test_trivial_fds(self):
        table = Table.from_rows(("A",), [("x",), ("y",)])
        assert count_s_repairs(table, FDSet()) == 1

    def test_consensus_sums_blocks(self):
        table = Table.from_rows(("A",), [("x",), ("x",), ("y",)])
        # Blocks {x, x} and {y}: each is internally consistent → 2 repairs.
        assert count_s_repairs(table, FDSet("-> A")) == 2

    def test_common_lhs_multiplies_blocks(self):
        fds = FDSet("A -> B")
        table = Table.from_rows(
            ("A", "B"), [("a", 1), ("a", 2), ("b", 1), ("b", 2)]
        )
        # Each A-block contributes 2 repairs → 4 in total.
        assert count_s_repairs(table, fds) == 4


class TestNonChain:
    def test_non_chain_rejected(self):
        table = Table(("A", "B"), {})
        with pytest.raises(NotChainError):
            count_s_repairs(table, FDSet("A -> B; B -> A"))
        with pytest.raises(NotChainError):
            list(enumerate_s_repairs(table, FDSet("A -> B; B -> A")))

    def test_brute_force_handles_non_chain(self, rng):
        """The two dichotomies differ: {A→B, B→A} is PTIME for *optimal*
        S-repairs (lhs marriage) but non-chain, so counting needs the
        brute-force route."""
        fds = FDSet("A -> B; B -> A")
        table = Table.from_rows(
            ("A", "B"), [("a1", "b1"), ("a1", "b2"), ("a2", "b2")]
        )
        # Repairs: {1}, {2}, {3}, {1,3}? — 1=(a1,b1), 3=(a2,b2) share no
        # value, so {1,3} is consistent and maximal; {2}=(a1,b2) conflicts
        # with both.
        assert brute_force_count_s_repairs(table, fds) == 2

    def test_brute_force_guard(self):
        table = Table.from_rows(("A",), [("x",)] * 25)
        with pytest.raises(ValueError):
            brute_force_count_s_repairs(table, FDSet("-> A"), max_tuples=18)
