"""Integration tests: every example script runs headless and produces
its key outputs (the ≥3-runnable-examples deliverable, kept green)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    # Keep sys.argv clean for argv-reading examples.
    old_argv = sys.argv
    sys.argv = [name]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "optimal S-repair complexity: PTIME" in out
    assert "deleted weight 2" in out
    assert "distance 2" in out


def test_hr_deduplication(capsys):
    out = run_example("hr_deduplication", capsys)
    assert "PTIME" in out
    assert "3 conflicting record pairs" in out
    assert "estimated dirtiness (optimal deletion cost): 3" in out


def test_sensor_mpd(capsys):
    out = run_example("sensor_mpd", capsys)
    assert "most probable consistent database" in out
    assert "match" in out
    assert "r5" in out  # the certain tuple is kept


def test_dichotomy_explorer(capsys):
    out = run_example("dichotomy_explorer", capsys)
    assert out.count("APX-complete") >= 6
    assert "strictness: equal" in out


def test_approximation_tradeoffs(capsys):
    out = run_example("approximation_tradeoffs", capsys)
    assert "guarantees on Δ_k" in out
    assert "measured quality" in out


def test_catalog_pipeline(capsys):
    out = run_example("catalog_pipeline", capsys)
    assert "optimal deletion cost bracket" in out
    assert "policy 2: update" in out
