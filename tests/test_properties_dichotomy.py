"""End-to-end property tests of the dichotomy machinery (hypothesis).

Random FD sets over a small attribute universe are pushed through
``classify``:

* on the tractable side, ``OptSRepair`` must match the exact
  vertex-cover optimum on random tables — the soundness half of
  Theorem 3.4 exercised over the whole space of FD sets, not just the
  paper's examples;
* on the hard side, a witness must exist, and its fact-wise reduction
  must be injective and preserve pair (in)consistency — the
  completeness half's machinery;
* the dichotomy verdict is invariant under equivalence-preserving
  rewrites (singleton rhs) and attribute renaming.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dichotomy import classify, osr_succeeds
from repro.core.exact import exact_s_repair
from repro.core.fd import FD, FDSet
from repro.core.srepair import DichotomyFailure, opt_s_repair
from repro.core.table import Table
from repro.core.violations import satisfies
from repro.reductions.factwise import reduction_for_witness

ATTRS = list("ABCD")

nonempty = st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3).map(frozenset)
maybe_empty = st.sets(st.sampled_from(ATTRS), max_size=2).map(frozenset)
fd_strategy = st.builds(FD, maybe_empty, nonempty)
fdset_strategy = st.lists(fd_strategy, min_size=1, max_size=4).map(FDSet)


def _random_tables(fds, count=3, size=7, seed=0):
    rng = random.Random(seed)
    schema = tuple(sorted(fds.attributes)) or ("A",)
    for _ in range(count):
        rows = [
            tuple(rng.randrange(2) for _ in schema)
            for _ in range(rng.randrange(0, size))
        ]
        weights = [float(rng.choice((1, 2))) for _ in rows]
        yield Table.from_rows(schema, rows, weights)


@settings(max_examples=60, deadline=None)
@given(fdset_strategy, st.integers(min_value=0, max_value=10_000))
def test_tractable_side_is_sound(fds, seed):
    """Theorem 3.4, positive side, over random FD sets."""
    if not osr_succeeds(fds):
        return
    for table in _random_tables(fds, seed=seed):
        repair = opt_s_repair(fds, table)
        assert repair.is_subset_of(table)
        assert satisfies(repair, fds)
        exact = exact_s_repair(table, fds)
        assert abs(table.dist_sub(repair) - table.dist_sub(exact)) < 1e-9


@settings(max_examples=60, deadline=None)
@given(fdset_strategy)
def test_hard_side_has_valid_witness(fds):
    """Theorem 3.4, negative side: a class witness and a working
    fact-wise reduction must exist for every stuck FD set."""
    result = classify(fds)
    if result.tractable:
        return
    witness = result.witness
    assert witness is not None and 1 <= witness.class_id <= 5
    schema = tuple(sorted(result.residual.attributes))
    reduction = reduction_for_witness(schema, result.residual, witness)
    rng = random.Random(17)
    seen = {}
    for _ in range(80):
        t1 = tuple(rng.randrange(3) for _ in range(3))
        t2 = tuple(rng.randrange(3) for _ in range(3))
        m1, m2 = reduction.map_tuple(t1), reduction.map_tuple(t2)
        # Injectivity.
        for t, m in ((t1, m1), (t2, m2)):
            assert seen.setdefault(m, t) == t
        # Pair consistency preservation.
        src = Table(("A", "B", "C"), {1: t1, 2: t2})
        tgt = Table(reduction.target_schema, {1: m1, 2: m2})
        assert satisfies(src, reduction.source_fds) == satisfies(
            tgt, reduction.target_fds
        )


@settings(max_examples=60, deadline=None)
@given(fdset_strategy)
def test_verdict_invariant_under_singleton_rhs(fds):
    assert osr_succeeds(fds) == osr_succeeds(fds.with_singleton_rhs())


@settings(max_examples=40, deadline=None)
@given(fdset_strategy)
def test_verdict_invariant_under_renaming(fds):
    mapping = {a: f"{a}'" for a in ATTRS}
    renamed = FDSet(
        FD(
            frozenset(mapping[a] for a in fd.lhs),
            frozenset(mapping[a] for a in fd.rhs),
        )
        for fd in fds
    )
    assert osr_succeeds(fds) == osr_succeeds(renamed)


@settings(max_examples=60, deadline=None)
@given(fdset_strategy, st.integers(min_value=0, max_value=10_000))
def test_opt_s_repair_never_fails_on_tractable_and_is_sound_anyway(fds, seed):
    """If ``OSRSucceeds(Δ)``, Algorithm 1 never fails.  If not, it *may*
    still terminate on degenerate tables (e.g. an empty table makes the
    common-lhs recursion visit zero groups and line 10 is never reached)
    — and whenever it terminates, its output is nonetheless an optimal
    S-repair, because the per-step soundness lemmas (A.1–A.3) do not
    depend on the residual being simplifiable."""
    tractable = osr_succeeds(fds)
    for table in _random_tables(fds, count=2, seed=seed):
        try:
            repair = opt_s_repair(fds, table)
        except DichotomyFailure:
            assert not tractable
            continue
        assert satisfies(repair, fds)
        exact = exact_s_repair(table, fds)
        assert abs(table.dist_sub(repair) - table.dist_sub(exact)) < 1e-9


@settings(max_examples=40, deadline=None)
@given(fdset_strategy, st.integers(min_value=0, max_value=10_000))
def test_approximation_covers_both_sides(fds, seed):
    """Prop 3.3's 2-approximation holds regardless of the verdict."""
    from repro.core.approx import approx_s_repair

    for table in _random_tables(fds, count=2, seed=seed):
        result = approx_s_repair(table, fds)
        assert satisfies(result.repair, fds)
        optimum = table.dist_sub(exact_s_repair(table, fds))
        assert result.distance <= 2 * optimum + 1e-9
