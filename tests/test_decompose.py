"""Tests for the conflict-graph decomposition and execution layers.

The load-bearing invariant: repairing per connected component of the
conflict graph — any method, any guarantee, serial or parallel — is
indistinguishable (in distance, and for deterministic methods in the
repair itself) from repairing the whole table at once, while conflict-free
tuples are carried through verbatim without entering any solver.
"""

import random

import pytest

from repro.core.decompose import (
    EXACT_COMPONENT_THRESHOLD,
    decompose,
    plan_s_method,
)
from repro.core.approx import approx_s_repair, greedy_s_repair
from repro.core.exact import exact_s_repair
from repro.core.fd import FDSet
from repro.core.srepair import optimal_s_repair
from repro.core.table import Table
from repro.core.urepair import u_repair
from repro.core.violations import satisfies
from repro.datagen.synthetic import clustered_conflicts_table
from repro.exec import map_components, resolve_workers
from repro.io.tables import table_to_csv
from repro.testing import random_small_table

HARD = FDSet("A -> B; B -> C")
TRACTABLE = FDSet("A -> B; A B -> C")
MARRIAGE = FDSet("A -> B; B -> A; B -> C")


def clustered(n=120, clusters=6, cluster_size=8, seed=0, **kwargs):
    return clustered_conflicts_table(
        ("A", "B", "C"), n, clusters=clusters, cluster_size=cluster_size,
        seed=seed, **kwargs
    )


class TestDecompose:
    def test_components_partition_conflicting_tuples(self):
        table = clustered()
        decomp = decompose(table, HARD)
        assert decomp.component_count == 6
        assert decomp.largest_component == 8
        seen = set(decomp.consistent_ids)
        for component in decomp.components:
            assert not seen & set(component.ids)
            seen.update(component.ids)
        assert seen == set(table.ids())

    def test_components_are_conflict_closed(self):
        table = clustered(seed=3)
        decomp = decompose(table, HARD)
        for component in decomp.components:
            members = set(component.ids)
            for tid in component.ids:
                assert decomp.index.neighbors(tid) <= members

    def test_consistent_tuples_have_no_conflicts(self):
        table = clustered(seed=1)
        decomp = decompose(table, HARD)
        for tid in decomp.consistent_ids:
            assert not decomp.index.neighbors(tid)

    def test_consistent_table_decomposes_to_nothing(self):
        table = Table.from_rows(("A", "B"), [("a", "b"), ("c", "d")])
        decomp = decompose(table, FDSet("A -> B"))
        assert decomp.component_count == 0
        assert decomp.consistent_ids == table.ids()

    def test_projected_subindex_equals_rebuild(self):
        table = clustered(seed=5)
        decomp = decompose(table, HARD)
        for component in decomp.components:
            fresh = component.table.subset(list(component.table.ids()))
            rebuilt = fresh.conflict_index(HARD)
            assert component.index.num_edges == rebuilt.num_edges
            assert component.index.edges() == rebuilt.edges()
            assert component.index.ids() == rebuilt.ids()

    def test_subindex_seeded_into_subtable_cache(self):
        table = clustered(seed=5)
        decomp = decompose(table, HARD)
        component = decomp.components[0]
        assert component.table.conflict_index(HARD) is component.index

    def test_merge_kept_preserves_table_order(self):
        table = clustered(seed=2)
        decomp = decompose(table, HARD)
        merged = decomp.merge_kept([c.ids for c in decomp.components])
        assert merged.ids() == table.ids()


class TestPortfolioPolicy:
    def test_tractable_always_dichotomy(self):
        assert plan_s_method(10, True, "best") == "dichotomy"
        assert plan_s_method(10_000, True, "best") == "dichotomy"

    def test_hard_small_exact_large_approx(self):
        assert plan_s_method(EXACT_COMPONENT_THRESHOLD, False, "best") == "exact"
        assert plan_s_method(EXACT_COMPONENT_THRESHOLD + 1, False, "best") == "approx"

    def test_optimal_forces_exact(self):
        assert plan_s_method(10_000, False, "optimal") == "exact"

    def test_fast_forces_approx(self):
        assert plan_s_method(2, True, "fast") == "approx"


class TestDecomposedSRepairEquivalence:
    @pytest.mark.parametrize("fds", (HARD, TRACTABLE, MARRIAGE))
    def test_exact_distance_matches_global(self, fds):
        table = clustered(seed=4)
        global_repair = exact_s_repair(table, fds, node_limit=5000)
        decomposed = exact_s_repair(table, fds, decomposed=True)
        assert table.dist_sub(decomposed) == table.dist_sub(global_repair)
        assert satisfies(decomposed, fds)

    @pytest.mark.parametrize("fds", (HARD, TRACTABLE))
    def test_approx_repair_identical_to_global(self, fds):
        # BYE payments and maximalisation are component-local, so the
        # decomposed approximation is not merely as good — it is the
        # *same* repair.
        table = clustered(seed=6)
        assert (
            approx_s_repair(table, fds, decomposed=True).repair
            == approx_s_repair(table, fds).repair
        )

    def test_greedy_repair_identical_to_global(self):
        table = clustered(seed=7)
        assert (
            greedy_s_repair(table, HARD, decomposed=True).repair
            == greedy_s_repair(table, HARD).repair
        )

    def test_random_tables_all_guarantees(self, rng):
        from repro.pipeline import clean

        for trial in range(8):
            table = random_small_table(
                rng, ("A", "B", "C"), 14, domain=2, weighted=True
            )
            for fds in (HARD, TRACTABLE):
                optimum = table.dist_sub(exact_s_repair(table, fds))
                for guarantee in ("best", "optimal", "fast"):
                    dec = clean(table, fds, guarantee=guarantee)
                    glob = clean(table, fds, guarantee=guarantee, decomposed=False)
                    assert satisfies(dec.cleaned, fds)
                    if guarantee in ("best", "optimal"):
                        # Small components ⇒ the portfolio solves
                        # everything exactly, matching the global optimum.
                        assert dec.distance == optimum
                        assert dec.optimal and dec.ratio_bound == 1.0
                    assert dec.distance <= glob.distance + 1e-9
                    assert dec.distance <= dec.ratio_bound * optimum + 1e-9

    def test_random_tables_updates(self, rng):
        for trial in range(6):
            table = random_small_table(rng, ("A", "B", "C"), 10, domain=2)
            for fds in (TRACTABLE, FDSet("A -> B")):
                dec = u_repair(table, fds, decomposed=True)
                glob = u_repair(table, fds)
                assert satisfies(dec.update, fds)
                assert dec.update.is_update_of(table)
                assert dec.distance == glob.distance
                assert dec.optimal == glob.optimal

    def test_instance_specific_ratio_on_hard_fds(self):
        """An APX-complete Δ whose conflicts form small components is
        solved exactly — the decomposed path certifies ratio 1.0 where
        the global heuristic settled for the 2-approximation."""
        from repro.pipeline import clean

        table = clustered(n=200, clusters=5, cluster_size=10, seed=9)
        result = clean(table, HARD, guarantee="best")
        assert result.optimal and result.ratio_bound == 1.0
        assert result.method_counts == {"exact": 5}
        legacy = clean(table, HARD, guarantee="best", decomposed=False)
        assert not legacy.optimal and legacy.ratio_bound == 2.0
        assert result.distance <= legacy.distance


class TestSerialParallelIdentical:
    def test_s_repair_byte_identical(self):
        table = clustered(seed=8)
        serial = optimal_s_repair(table, HARD, decomposed=True)
        parallel = optimal_s_repair(table, HARD, parallel=4)
        assert serial.repair == parallel.repair
        assert table_to_csv(serial.repair) == table_to_csv(parallel.repair)
        assert serial.distance == parallel.distance

    def test_u_repair_byte_identical_serialisation(self):
        # Fresh labelled nulls are relabelled per component in
        # deterministic changed-cell order, so even the serialised form
        # is identical however the components were scheduled.
        table = clustered(seed=10)
        serial = u_repair(table, HARD, decomposed=True)
        parallel = u_repair(table, HARD, parallel=4)
        assert serial.distance == parallel.distance
        assert table_to_csv(serial.update) == table_to_csv(parallel.update)

    def test_clean_parallel_matches_serial(self):
        from repro.pipeline import clean

        table = clustered(seed=11)
        for strategy in ("deletions", "updates"):
            serial = clean(table, HARD, strategy=strategy)
            parallel = clean(table, HARD, strategy=strategy, parallel=4)
            assert serial.distance == parallel.distance
            assert table_to_csv(serial.cleaned) == table_to_csv(parallel.cleaned)


class TestExecLayer:
    def test_resolve_workers(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(1, 10) == 1
        assert resolve_workers(4, 1) == 1
        assert resolve_workers(4, 2) == 2
        assert resolve_workers(2, 10) == 2
        assert resolve_workers(8, 3) == 3

    def test_map_components_preserves_order(self):
        tasks = list(range(20))
        assert map_components(_square, tasks, parallel=4) == [
            x * x for x in tasks
        ]
        assert map_components(_square, tasks) == [x * x for x in tasks]

    def test_table_pickle_drops_cache(self):
        import pickle

        table = clustered(n=30, clusters=2, cluster_size=5, seed=12)
        table.conflict_index(HARD)  # unpicklable cache entry
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
        assert clone.ids() == table.ids()
        assert clone.conflict_index(HARD).num_edges == table.conflict_index(HARD).num_edges


def _square(x):
    return x * x
