"""The ConflictIndex engine: incremental maintenance vs naive rebuild.

The load-bearing invariant: after ANY sequence of tuple removals, the
live index must be indistinguishable from an index built from scratch on
the corresponding sub-table — same edges, same degrees, same buckets'
verdict, same matching lower bound.  Property tests drive randomized
tables and removal orders through both paths and compare.

Equivalence tests then pin the contract the repair entry points rely on:
passing a prebuilt index never changes a repair result.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import approx_s_repair, approx_u_repair, greedy_s_repair
from repro.core.conflict_index import ConflictIndex
from repro.core.exact import exact_s_repair
from repro.core.fd import FDSet
from repro.core.srepair import optimal_s_repair
from repro.core.table import Table
from repro.core.urepair import u_repair
from repro.core.violations import (
    conflict_graph,
    conflicting_ids,
    satisfies,
    violating_pairs,
)
from repro.pipeline import assess, clean
from repro.testing import random_small_table

FD_SETS = [
    FDSet("A -> B"),
    FDSet("A -> B; A B -> C"),
    FDSet("A -> B; B -> C"),
    FDSet("A -> B; B -> A; B -> C"),
    FDSet("-> A; B -> C"),
    FDSet("A B -> C"),
]

SCHEMA = ("A", "B", "C")


def _edge_set(index):
    return {frozenset(pair) for pair in index.edges()}


def _tables():
    value = st.integers(min_value=0, max_value=2)
    row = st.tuples(value, value, value)
    weight = st.sampled_from((1.0, 1.0, 2.0, 3.0))
    return st.lists(st.tuples(row, weight), min_size=0, max_size=10).map(
        lambda pairs: Table.from_rows(
            SCHEMA, [p[0] for p in pairs], [p[1] for p in pairs]
        )
    )


# ---------------------------------------------------------------------------
# Construction: the index agrees with the streaming violation detector
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fds", FD_SETS, ids=str)
def test_index_matches_streaming_pairs(fds):
    rng = random.Random(42)
    for size in (0, 1, 5, 20, 60):
        table = random_small_table(rng, SCHEMA, size, domain=3, weighted=True)
        index = ConflictIndex(table, fds)
        streamed = {
            frozenset((t1, t2)) for t1, t2, _ in violating_pairs(table, fds)
        }
        assert _edge_set(index) == streamed
        assert index.num_edges == len(streamed)
        assert index.is_consistent() == (not streamed)
        assert index.total_weight() == pytest.approx(table.total_weight())


@pytest.mark.parametrize("fds", FD_SETS, ids=str)
def test_index_graph_equals_conflict_graph(fds):
    rng = random.Random(7)
    table = random_small_table(rng, SCHEMA, 30, domain=3)
    index = ConflictIndex(table, fds)
    graph = conflict_graph(table, fds)
    assert set(graph.nodes()) == set(index.ids())
    assert {frozenset(e) for e in graph.edges()} == _edge_set(index)
    for tid in index.ids():
        assert graph.weight(tid) == index.weight(tid)
        assert graph.degree(tid) == index.degree(tid)


# ---------------------------------------------------------------------------
# The tentpole property: incremental removal ≡ from-scratch rebuild
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(table=_tables(), data=st.data())
def test_incremental_removal_matches_rebuild(table, data):
    fds = data.draw(st.sampled_from(FD_SETS))
    live = ConflictIndex(table, fds)
    remaining = list(table.ids())
    order = data.draw(st.permutations(remaining))
    for tid in order:
        live.remove(tid)
        remaining.remove(tid)
        rebuilt = ConflictIndex(table.subset(remaining), fds)
        assert set(live.ids()) == set(remaining)
        assert _edge_set(live) == _edge_set(rebuilt)
        assert live.num_edges == rebuilt.num_edges
        assert live.is_consistent() == rebuilt.is_consistent()
        for t in remaining:
            assert live.degree(t) == rebuilt.degree(t)
            assert live.neighbors(t) == rebuilt.neighbors(t)


@settings(max_examples=40, deadline=None)
@given(table=_tables(), data=st.data())
def test_incremental_bucket_pairs_match_rebuild(table, data):
    """The per-FD buckets themselves stay exact under removal (not just
    the adjacency): the violating-pairs multiset served from the live
    buckets equals a fresh index's."""
    fds = data.draw(st.sampled_from(FD_SETS))
    live = ConflictIndex(table, fds)
    ids = list(table.ids())
    to_remove = data.draw(st.lists(st.sampled_from(ids), unique=True)) if ids else []
    for tid in to_remove:
        live.remove(tid)
    kept = [tid for tid in ids if tid not in set(to_remove)]
    rebuilt = ConflictIndex(table.subset(kept), fds)
    live_pairs = sorted(
        (tuple(sorted(map(str, (t1, t2)))), str(fd))
        for t1, t2, fd in live.violating_pairs()
    )
    rebuilt_pairs = sorted(
        (tuple(sorted(map(str, (t1, t2)))), str(fd))
        for t1, t2, fd in rebuilt.violating_pairs()
    )
    assert live_pairs == rebuilt_pairs
    assert live.matching_lower_bound() == pytest.approx(
        rebuilt.matching_lower_bound()
    )


def test_remove_unknown_raises():
    table = Table.from_rows(SCHEMA, [(1, 2, 3)])
    index = ConflictIndex(table, FD_SETS[0])
    index.remove(1)
    with pytest.raises(KeyError):
        index.remove(1)
    with pytest.raises(KeyError):
        index.remove("nope")


def test_removed_weight_bookkeeping():
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 1, 2)], weights=[2.0, 3.0])
    index = ConflictIndex(table, FDSet("A -> C")).copy()
    assert index.removed_weight == 0.0
    index.remove(2)
    assert index.removed_weight == 3.0
    assert index.is_consistent()


def test_copy_isolates_mutation():
    rng = random.Random(3)
    table = random_small_table(rng, SCHEMA, 25, domain=2)
    fds = FDSet("A -> B; B -> C")
    pristine = table.conflict_index(fds)
    before_edges = _edge_set(pristine)
    working = pristine.copy()
    for tid in list(working.ids())[:10]:
        working.remove(tid)
    assert _edge_set(pristine) == before_edges
    assert len(pristine) == len(table)
    # The cache hands back the same pristine object every time.
    assert table.conflict_index(fds) is pristine


# ---------------------------------------------------------------------------
# Insert: the symmetric counterpart (the streaming-session substrate)
# ---------------------------------------------------------------------------

def _observable_state(index):
    """Everything a consumer can see: live ids, canonical edges, degrees,
    weights, bucket-served violating pairs, matching bound."""
    return (
        index.ids(),
        index.edges(),
        {tid: index.degree(tid) for tid in index.ids()},
        {tid: index.weight(tid) for tid in index.ids()},
        sorted(
            (tuple(sorted(map(str, (t1, t2)))), str(fd))
            for t1, t2, fd in index.violating_pairs()
        ),
        index.matching_lower_bound(),
    )


@settings(max_examples=40, deadline=None)
@given(table=_tables(), data=st.data())
def test_insert_then_remove_is_identity(table, data):
    """Inserting a fresh tuple and removing it again leaves no observable
    trace — the mutation algebra's unit law."""
    fds = data.draw(st.sampled_from(FD_SETS))
    index = ConflictIndex(table, fds)
    before = _observable_state(index)
    row = data.draw(st.tuples(*[st.integers(0, 2)] * 3))
    weight = data.draw(st.sampled_from((1.0, 2.0)))
    index.insert("fresh", row, weight)
    index.remove("fresh")
    assert _observable_state(index) == before


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_interleaved_inserts_deletes_match_rebuild(data):
    """Any interleaving of inserts and deletes yields an index observably
    equal to a from-scratch build on the corresponding table (deleted
    tuples gone, inserted tuples appended at the end)."""
    fds = data.draw(st.sampled_from(FD_SETS))
    value = st.integers(min_value=0, max_value=2)
    row_st = st.tuples(value, value, value)
    start_rows = data.draw(st.lists(row_st, min_size=0, max_size=6))
    table = Table.from_rows(SCHEMA, start_rows)
    live = ConflictIndex(table, fds)
    # The shadow model: (tid, row, weight) in current table order.
    shadow = [(tid, table[tid], table.weight(tid)) for tid in table.ids()]
    next_id = len(shadow) + 1
    for _step in range(data.draw(st.integers(min_value=1, max_value=8))):
        if shadow and data.draw(st.booleans()):
            victim = data.draw(st.sampled_from([tid for tid, _r, _w in shadow]))
            live.remove(victim)
            shadow = [entry for entry in shadow if entry[0] != victim]
        else:
            row = data.draw(row_st)
            weight = data.draw(st.sampled_from((1.0, 3.0)))
            live.insert(next_id, row, weight)
            shadow.append((next_id, row, weight))
            next_id += 1
        rebuilt = ConflictIndex(
            Table(
                SCHEMA,
                {tid: row for tid, row, _w in shadow},
                {tid: w for tid, _r, w in shadow},
            ),
            fds,
        )
        assert _observable_state(live) == _observable_state(rebuilt)
        assert live.num_edges == rebuilt.num_edges
        assert live.components() == rebuilt.components()
        assert live.consistent_ids() == rebuilt.consistent_ids()
        assert live.conflicting_tuples() == rebuilt.conflicting_tuples()


def test_insert_validation():
    table = Table.from_rows(SCHEMA, [(1, 1, 1)])
    index = ConflictIndex(table, FDSet("A -> B"))
    with pytest.raises(ValueError, match="already live"):
        index.insert(1, (2, 2, 2))
    with pytest.raises(ValueError, match="arity"):
        index.insert(2, (1, 2))
    with pytest.raises(ValueError, match="non-positive"):
        index.insert(2, (1, 2, 3), 0.0)
    # Failed inserts leave no trace.
    assert index.ids() == (1,)
    assert index.insert(2, (1, 2, 3), 2.0) == 1
    assert index.num_edges == 1


def test_insert_into_copy_does_not_leak_positions():
    """Copies share the position map copy-on-write: re-inserting an id
    the original still positions must not disturb the original's
    canonical edge order."""
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 2, 2), (2, 2, 2)])
    fds = FDSet("A -> B")
    original = ConflictIndex(table, fds)
    edges_before = original.edges()
    working = original.copy()
    working.remove(1)
    working.insert(1, (2, 9, 9), 1.0)  # re-positioned at the end
    assert original.edges() == edges_before
    rebuilt = ConflictIndex(
        Table(SCHEMA, {2: (1, 2, 2), 3: (2, 2, 2), 1: (2, 9, 9)}), fds
    )
    assert working.edges() == rebuilt.edges()


def test_projection_buckets_are_lazy():
    """project() defers bucket construction; adjacency-only consumers
    never pay for it, and bucket readers see exact state on demand."""
    rng = random.Random(11)
    table = random_small_table(rng, SCHEMA, 40, domain=2)
    fds = FDSet("A -> B; B -> C")
    index = table.conflict_index(fds)
    components = index.components()
    assert components
    ids = components[0]
    subtable = table.subset(ids)
    projected = index.project(subtable, set(ids))
    assert projected._buckets is None  # still lazy
    assert projected.num_edges > 0    # adjacency fully live
    rebuilt = ConflictIndex(subtable, fds)
    assert _edge_set(projected) == _edge_set(rebuilt)
    # First bucket read materialises; content equals a fresh build.
    live_pairs = sorted(
        (tuple(sorted(map(str, (t1, t2)))), str(fd))
        for t1, t2, fd in projected.violating_pairs()
    )
    rebuilt_pairs = sorted(
        (tuple(sorted(map(str, (t1, t2)))), str(fd))
        for t1, t2, fd in rebuilt.violating_pairs()
    )
    assert live_pairs == rebuilt_pairs
    assert projected._buckets is not None


def test_lazy_projection_tracks_removals_before_materialisation():
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 2, 2), (1, 3, 3)])
    fds = FDSet("A -> B")
    index = table.conflict_index(fds)
    ids = index.components()[0]
    projected = index.project(table.subset(ids), set(ids))
    projected.remove(ids[0])
    # Buckets materialise from the post-removal live set.
    assert sorted(
        {t1, t2} == {ids[1], ids[2]}
        for t1, t2, _fd in projected.violating_pairs()
    )
    survivors = [tid for tid in ids if tid != ids[0]]
    rebuilt = ConflictIndex(table.subset(survivors), fds)
    assert _edge_set(projected) == _edge_set(rebuilt)


def test_reanchor_validates_live_set():
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 2, 2)])
    fds = FDSet("A -> B")
    index = ConflictIndex(table, fds)
    other = Table.from_rows(SCHEMA, [(1, 1, 1)])
    with pytest.raises(ValueError, match="live tuples"):
        index.reanchor(other)
    snapshot = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 2, 2)])
    index.reanchor(snapshot)
    index.ensure_for(fds, snapshot)  # identity check now passes


# ---------------------------------------------------------------------------
# Equivalence: prebuilt index never changes any repair result
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fds", FD_SETS, ids=str)
def test_repairs_identical_with_and_without_prebuilt_index(fds):
    rng = random.Random(2018)
    for size in (0, 8, 30):
        table = random_small_table(rng, SCHEMA, size, domain=3, weighted=True)
        index = ConflictIndex(table, fds)

        plain = approx_s_repair(table, fds)
        indexed = approx_s_repair(table, fds, index=index)
        assert plain.repair == indexed.repair
        assert plain.distance == indexed.distance

        plain_opt = optimal_s_repair(table, fds)
        indexed_opt = optimal_s_repair(table, fds, index=index)
        assert plain_opt.distance == indexed_opt.distance
        assert plain_opt.repair == indexed_opt.repair

        assert exact_s_repair(table, fds) == exact_s_repair(
            table, fds, index=index
        )


@pytest.mark.parametrize("fds", FD_SETS[:4], ids=str)
def test_u_repairs_identical_with_and_without_prebuilt_index(fds):
    rng = random.Random(99)
    table = random_small_table(rng, SCHEMA, 8, domain=2, weighted=True)
    index = ConflictIndex(table, fds)
    plain = u_repair(table, fds)
    indexed = u_repair(table, fds, index=index)
    # Fresh labelled nulls compare by identity, so the update tables of
    # two runs are never ``==``; the changed cells and cost must agree.
    assert sorted(plain.update.changed_cells(table)) == sorted(
        indexed.update.changed_cells(table)
    )
    assert plain.distance == indexed.distance
    approx_plain = approx_u_repair(table, fds)
    approx_indexed = approx_u_repair(table, fds, index=index)
    assert approx_plain.distance == approx_indexed.distance


def test_u_repair_short_circuits_consistent_table():
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (2, 2, 2)])
    fds = FDSet("A -> B; B -> C")
    index = ConflictIndex(table, fds)
    result = u_repair(table, fds, index=index)
    assert result.optimal and result.distance == 0.0
    assert result.update == table


def test_consistent_table_guarantee_independent_of_index():
    """The reported guarantee must not depend on whether an index was
    supplied: a consistent table is optimal/ratio-1 on every path."""
    table = Table.from_rows(("A", "B"), [("a", "1"), ("b", "2")])
    fds = FDSet("A -> B")
    index = ConflictIndex(table, fds)
    for result in (
        u_repair(table, fds),
        u_repair(table, fds, index=index),
        approx_u_repair(table, fds),
        approx_u_repair(table, fds, index=index),
    ):
        assert result.optimal
        assert result.ratio_bound == 1.0
        assert result.distance == 0.0


def test_pipeline_shares_one_index():
    rng = random.Random(5)
    table = random_small_table(rng, SCHEMA, 40, domain=3)
    fds = FDSet("A -> B; B -> C")
    index = table.conflict_index(fds)
    report = assess(table, fds)
    assert report.conflict_count == index.num_edges
    outcome = clean(table, fds, strategy="deletions", guarantee="fast", index=index)
    assert satisfies(outcome.cleaned, fds)
    assert report.lower_bound <= outcome.distance <= report.upper_bound or (
        not outcome.optimal
    )


# ---------------------------------------------------------------------------
# The incremental consumer: greedy deletion over a live index
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fds", FD_SETS, ids=str)
def test_greedy_s_repair_is_consistent_and_maximal(fds):
    rng = random.Random(13)
    for size in (0, 10, 50):
        table = random_small_table(rng, SCHEMA, size, domain=3, weighted=True)
        result = greedy_s_repair(table, fds)
        assert satisfies(result.repair, fds)
        # Maximality: no deleted tuple can be added back consistently.
        kept = set(result.repair.ids())
        index = table.conflict_index(fds)
        for tid in table.ids():
            if tid not in kept:
                assert index.neighbors(tid) & kept, (
                    f"deleted tuple {tid} conflicts with nothing kept"
                )


def test_mismatched_prebuilt_index_is_rejected():
    """An index built for a different Δ must raise, not silently produce
    a wrong repair (easy to hit when batching several FD sets)."""
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 2, 2)])
    fds = FDSet("A -> B; B -> C")
    wrong = table.conflict_index(FDSet("A -> C"))
    with pytest.raises(ValueError, match="built for"):
        approx_s_repair(table, fds, index=wrong)
    with pytest.raises(ValueError, match="built for"):
        u_repair(table, fds, index=wrong)
    with pytest.raises(ValueError, match="built for"):
        assess(table, fds, index=wrong)
    # Order-insensitive: a reordered-but-equal Δ is accepted.
    reordered = FDSet("B -> C; A -> B")
    index = table.conflict_index(fds)
    assert approx_s_repair(table, reordered, index=index).distance >= 0


def test_index_from_different_table_is_rejected():
    """An index built from another table object (even an equal-content
    copy) must raise instead of silently repairing the wrong conflicts."""
    rows = [(1, 1, 1), (1, 2, 2)]
    fds = FDSet("A -> B")
    table_a = Table.from_rows(SCHEMA, rows)
    table_b = Table.from_rows(SCHEMA, rows)
    index_a = table_a.conflict_index(fds)
    with pytest.raises(ValueError, match="different table"):
        approx_s_repair(table_b, fds, index=index_a)
    with pytest.raises(ValueError, match="different table"):
        assess(table_b, fds, index=index_a)
    # A copy of the index still pairs with its own source table.
    assert approx_s_repair(table_a, fds, index=index_a.copy()).distance == 1.0


def test_one_off_calls_do_not_populate_cache():
    """conflicting_ids/conflict_graph build transient indexes; caching
    is an explicit opt-in via table.conflict_index()."""
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 2, 2)])
    fds = FDSet("A -> B")
    assert conflicting_ids(table, fds) == [(1, 2)]
    assert conflict_graph(table, fds).num_edges() == 1
    assert table.cached_conflict_index(fds) is None
    # Once opted in, the same cached index serves subsequent calls.
    index = table.conflict_index(fds)
    assert table.cached_conflict_index(fds) is index
    assert conflicting_ids(table, fds) == [(1, 2)]


def test_clear_derived_cache():
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 2, 2)])
    fds = FDSet("A -> B")
    index = table.conflict_index(fds)
    table.group_by(("A",))
    table.clear_derived_cache()
    assert table.cached_conflict_index(fds) is None
    rebuilt = table.conflict_index(fds)
    assert rebuilt is not index
    assert rebuilt.num_edges == index.num_edges


def test_greedy_s_repair_mixed_unorderable_ids():
    """Ids of mixed types with colliding str() must not reach the heap's
    tuple comparison (1 vs '1' is unorderable in Python)."""
    table = Table(("A", "B"), {1: ("a", "b"), "1": ("a", "c")})
    fds = FDSet("A -> B")
    result = greedy_s_repair(table, fds)
    assert satisfies(result.repair, fds)
    assert len(result.repair) == 1


def test_conflicting_ids_deduplicates_multi_fd_pairs():
    # Both FDs are violated by the same pair; the pair must appear once.
    table = Table.from_rows(("A", "B", "C"), [(1, 1, 1), (1, 2, 2)])
    fds = FDSet("A -> B; A -> C")
    assert conflicting_ids(table, fds) == [(1, 2)]
    index = table.conflict_index(fds)
    assert index.num_edges == 1
    # … but violating_pairs reports it once per violated FD.
    assert len(list(index.violating_pairs())) == 2
