"""Tests for the high-level cleaning pipeline."""

import pytest

from repro.core.exact import exact_s_repair
from repro.core.fd import FDSet
from repro.core.violations import satisfies
from repro.datagen.office import office_fds, office_table
from repro.datagen.synthetic import planted_violations_table
from repro.pipeline import CleaningResult, DirtinessReport, assess, clean

from repro.testing import random_small_table


class TestAssess:
    def test_consistent_table(self):
        from repro.datagen.office import consistent_subsets

        report = assess(consistent_subsets()["S1"], office_fds())
        assert report.consistent
        assert report.lower_bound == report.upper_bound == 0.0
        assert report.dirtiness_fraction == 0.0

    def test_office_bracket(self):
        report = assess(office_table(), office_fds())
        assert not report.consistent
        assert report.conflict_count == 2  # (1,2) and (1,3)
        assert report.conflicting_tuples == 3
        # The true optimum (2.0) sits inside the bracket.
        assert report.lower_bound <= 2.0 <= report.upper_bound
        assert report.upper_bound <= 2 * 2.0
        assert report.complexity == "PTIME"

    def test_bracket_always_contains_optimum(self, rng):
        fds = FDSet("A -> B; B -> C")
        for _ in range(10):
            table = random_small_table(rng, ("A", "B", "C"), 10, domain=2, weighted=True)
            report = assess(table, fds)
            optimum = table.dist_sub(exact_s_repair(table, fds))
            assert report.lower_bound <= optimum + 1e-9
            assert optimum <= report.upper_bound + 1e-9
            assert report.upper_bound <= 2 * optimum + 1e-9

    def test_summary_renders(self):
        text = assess(office_table(), office_fds()).summary()
        assert "bracket" in text and "APX" in text or "PTIME" in text

    def test_empty_table(self):
        from repro.core.table import Table

        report = assess(Table(("A",), {}), FDSet("-> A"))
        assert report.consistent and report.total_tuples == 0


class TestClean:
    def test_deletions_best_on_tractable(self):
        result = clean(office_table(), office_fds())
        assert result.optimal and result.distance == 2.0
        assert satisfies(result.cleaned, office_fds())
        assert result.strategy == "deletions"

    def test_updates_best_on_tractable(self):
        result = clean(office_table(), office_fds(), strategy="updates")
        assert result.optimal and result.distance == 2.0
        assert satisfies(result.cleaned, office_fds())

    def test_fast_guarantee_is_polynomial_approx(self):
        fds = FDSet("A -> B; B -> C")
        table = planted_violations_table(("A", "B", "C"), fds, 120, corruption=0.1, domain=4, seed=4)
        result = clean(table, fds, guarantee="fast")
        assert not result.optimal or result.distance == 0.0
        assert result.ratio_bound == 2.0
        assert satisfies(result.cleaned, fds)

    def test_best_switches_to_approx_on_large_hard(self):
        fds = FDSet("A -> B; B -> C")
        table = planted_violations_table(("A", "B", "C"), fds, 100, corruption=0.1, domain=4, seed=5)
        result = clean(table, fds, guarantee="best")
        assert satisfies(result.cleaned, fds)
        assert result.ratio_bound <= 2.0

    def test_optimal_guarantee_on_hard_small(self, rng):
        fds = FDSet("A -> B; B -> C")
        table = random_small_table(rng, ("A", "B", "C"), 10, domain=2)
        result = clean(table, fds, guarantee="optimal")
        assert result.optimal
        assert result.distance == table.dist_sub(exact_s_repair(table, fds))

    def test_updates_optimal_guarantee(self):
        fds = FDSet("product -> price; buyer -> email")
        table = planted_violations_table(
            tuple(sorted(fds.attributes)), fds, 20, corruption=0.2, domain=3, seed=6
        )
        result = clean(table, fds, strategy="updates", guarantee="optimal")
        assert result.optimal
        assert satisfies(result.cleaned, fds)

    def test_report_attached(self):
        result = clean(office_table(), office_fds())
        assert isinstance(result.report, DirtinessReport)
        assert result.report.conflict_count == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            clean(office_table(), office_fds(), strategy="teleport")
        with pytest.raises(ValueError):
            clean(office_table(), office_fds(), guarantee="psychic")
