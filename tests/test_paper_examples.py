"""Golden tests: every numbered example and claim of the paper, in order.

This file is the executable record of the paper's worked examples; each
test cites the example it reproduces.  EXPERIMENTS.md summarises the
outcomes.
"""

import pytest

from repro.core.approx import kl_ratio, mci, mfs, our_ratio
from repro.core.dichotomy import HARD_FD_SETS, classify, osr_succeeds
from repro.core.exact import exact_s_repair, exact_u_repair
from repro.core.fd import FD, FDSet
from repro.core.srepair import opt_s_repair
from repro.core.table import Table
from repro.core.urepair import u_repair
from repro.core.violations import satisfies
from repro.datagen.office import (
    consistent_subsets,
    consistent_updates,
    office_fds,
    office_table,
)

from repro.testing import DELTA_A_IFF_B_TO_C, DELTA_SSN, EXAMPLE_38


class TestExample21And23:
    """Figure 1 and Example 2.3: tables, flags, and distances."""

    def test_table_flags(self):
        subsets = consistent_subsets()
        updates = consistent_updates()
        assert subsets["S2"].is_duplicate_free and subsets["S2"].is_unweighted
        assert subsets["S1"].is_duplicate_free and not subsets["S1"].is_unweighted
        assert not updates["U2"].is_duplicate_free
        assert not updates["U2"].is_unweighted

    def test_subset_distances(self):
        t = office_table()
        s = consistent_subsets()
        assert t.dist_sub(s["S1"]) == 2
        assert t.dist_sub(s["S2"]) == 2
        assert t.dist_sub(s["S3"]) == 3

    def test_update_distances(self):
        t = office_table()
        u = consistent_updates()
        assert t.dist_upd(u["U1"]) == 2
        assert t.dist_upd(u["U2"]) == 3
        assert t.dist_upd(u["U3"]) == 4

    def test_s3_is_15_optimal(self):
        t = office_table()
        optimum = t.dist_sub(opt_s_repair(office_fds(), t))
        assert t.dist_sub(consistent_subsets()["S3"]) / optimum == 1.5


class TestExample22:
    """Example 2.2: structure of the running Δ."""

    def test_common_lhs_is_facility(self):
        assert office_fds().common_lhs() == frozenset({"facility"})

    def test_delta_is_chain(self):
        assert office_fds().is_chain

    def test_t_violates_others_satisfy(self):
        fds = office_fds()
        assert not satisfies(office_table(), fds)
        for v in (*consistent_subsets().values(), *consistent_updates().values()):
            assert satisfies(v, fds)


class TestExample31:
    """Example 3.1: lhs marriages."""

    def test_a_iff_b_marriage(self):
        pairs = {
            frozenset((x1, x2)) for x1, x2 in DELTA_A_IFF_B_TO_C.lhs_marriages()
        }
        assert frozenset((frozenset("A"), frozenset("B"))) in pairs

    def test_ssn_marriage(self):
        pairs = {
            frozenset((x1, x2)) for x1, x2 in DELTA_SSN.lhs_marriages()
        }
        assert (
            frozenset((frozenset({"ssn"}), frozenset({"first", "last"}))) in pairs
        )


class TestExample35:
    """Example 3.5: the four classification walkthroughs."""

    def test_running_delta_succeeds(self):
        assert osr_succeeds(office_fds())

    def test_a_iff_b_to_c_succeeds(self):
        assert osr_succeeds(DELTA_A_IFF_B_TO_C)

    def test_ssn_succeeds(self):
        assert osr_succeeds(DELTA_SSN)

    def test_failures(self):
        assert not osr_succeeds(FDSet("A -> B; B -> C"))
        assert not osr_succeeds(FDSet("A -> B; C -> D"))


class TestCorollary36:
    """Corollary 3.6: chain FD sets are tractable."""

    @pytest.mark.parametrize(
        "fds",
        [
            FDSet("A -> B; A B -> C; A B C -> D"),
            FDSet("facility -> city; facility room -> floor"),
            FDSet("-> A; A -> B; A B -> C"),
        ],
        ids=str,
    )
    def test_chain_implies_success(self, fds):
        assert fds.is_chain
        assert osr_succeeds(fds)


class TestTable1:
    """Table 1: the four hard FD sets."""

    @pytest.mark.parametrize("name", sorted(HARD_FD_SETS))
    def test_all_fail_osr(self, name):
        assert not osr_succeeds(HARD_FD_SETS[name])

    @pytest.mark.parametrize("name", sorted(HARD_FD_SETS))
    def test_all_get_witnesses(self, name):
        result = classify(HARD_FD_SETS[name])
        assert result.witness is not None
        assert 1 <= result.witness.class_id <= 5


class TestExample38:
    """Example 3.8: class representatives Δ1–Δ5 → classes 1–5."""

    @pytest.mark.parametrize("class_id", sorted(EXAMPLE_38))
    def test_classification(self, class_id):
        result = classify(EXAMPLE_38[class_id])
        assert result.witness.class_id == class_id


class TestComment311:
    """Comment 3.11: ``Δ_{A↔B→C}`` is PTIME in our dichotomy (contra the
    earlier Gribkoff et al. claim)."""

    def test_ptime_verdict(self):
        assert osr_succeeds(DELTA_A_IFF_B_TO_C)

    def test_optimal_repair_computable(self):
        table = Table.from_rows(
            ("A", "B", "C"),
            [("u", "v", 0), ("v", "u", 0), ("u", "u", 1), ("v", "v", 1)],
        )
        repair = opt_s_repair(DELTA_A_IFF_B_TO_C, table)
        exact = exact_s_repair(table, DELTA_A_IFF_B_TO_C)
        assert table.dist_sub(repair) == table.dist_sub(exact)


class TestExample42:
    """Example 4.2: attribute-disjoint decomposition for U-repairs."""

    def test_delta_tractable_for_updates(self):
        fds = FDSet("item -> cost; buyer -> address")
        table = Table.from_rows(
            ("item", "cost", "buyer", "address"),
            [
                ("pen", 1, "ann", "haifa"),
                ("pen", 2, "ann", "durham"),
                ("ink", 5, "bob", "durham"),
            ],
        )
        result = u_repair(table, fds)
        assert result.optimal
        # One cell fixes item→cost (pen), one fixes buyer→address (ann).
        assert result.distance == 2.0

    def test_delta_prime_is_apx_hard_for_updates(self):
        """Δ' adds address → state: the {A→B, B→C} core is hard, so the
        dispatcher cannot promise optimality (beyond exhaustive search)."""
        fds = FDSet("item -> cost; buyer -> address; address -> state")
        components = fds.with_singleton_rhs().attribute_disjoint_components()
        hard = [c for c in components if len(c) == 2]
        assert hard and not osr_succeeds(hard[0])

    def test_s_repair_hard_but_u_repair_easy(self):
        """Corollary 4.11(2) via {A→B, C→D}: S-repairs APX-complete,
        U-repairs PTIME."""
        fds = FDSet("A -> B; C -> D")
        assert not osr_succeeds(fds)
        table = Table.from_rows(
            ("A", "B", "C", "D"), [("a", 1, "c", 1), ("a", 2, "c", 2)]
        )
        result = u_repair(table, fds)
        assert result.optimal
        assert result.distance == table.dist_upd(exact_u_repair(table, fds))


class TestExample47:
    """Example 4.7: Corollary 4.6 in action."""

    def test_running_example_u_repair_ptime(self):
        result = u_repair(office_table(), office_fds())
        assert result.optimal and result.distance == 2.0

    def test_passport_delta(self):
        fds = FDSet("id country -> passport; id passport -> country")
        assert fds.common_lhs() == frozenset({"id"})
        assert osr_succeeds(fds)
        table = Table.from_rows(
            ("id", "country", "passport"),
            [(1, "IL", "p1"), (1, "IL", "p2"), (2, "US", "p3")],
        )
        result = u_repair(table, fds)
        assert result.optimal

    def test_zip_delta_fails(self):
        fds = FDSet("state city -> zip; state zip -> country")
        assert not osr_succeeds(fds)


class TestProposition49:
    """Prop 4.9: {A→B, B→A} — optimal U-repair in PTIME with
    dist_upd(U*) = dist_sub(S*)."""

    def test_equality_of_distances(self):
        fds = FDSet("A -> B; B -> A")
        table = Table.from_rows(
            ("A", "B"),
            [("a1", "b1"), ("a1", "b2"), ("a2", "b2"), ("a3", "b3")],
        )
        s_star = opt_s_repair(fds, table)
        result = u_repair(table, fds)
        assert result.optimal
        assert result.distance == table.dist_sub(s_star)
        exact = exact_u_repair(table, fds)
        assert result.distance == table.dist_upd(exact)


class TestSection44Families:
    """Section 4.4: the Δ_k / Δ'_k ratio comparison."""

    @staticmethod
    def _delta_k(k):
        lhs = " ".join(f"A{i}" for i in range(k + 1))
        parts = [f"{lhs} -> B0", "B0 -> C"]
        parts += [f"B{i} -> A0" for i in range(1, k + 1)]
        return FDSet("; ".join(parts))

    @staticmethod
    def _delta_prime_k(k):
        return FDSet("; ".join(f"A{i} A{i+1} -> B{i}" for i in range(k + 1)))

    def test_ratio_table(self):
        for k in (2, 3, 4, 6):
            dk = self._delta_k(k)
            assert our_ratio(dk) == 2 * (k + 2)  # Θ(k)
            assert kl_ratio(dk) == (k + 2) * (2 * k + 1)  # Θ(k²)
            dpk = self._delta_prime_k(k)
            assert our_ratio(dpk) == 2 * ((k + 2) // 2)  # Θ(k)
            assert kl_ratio(dpk) == 9  # Θ(1)

    def test_combined_approximation_takes_the_min(self):
        """On Δ_k ours wins immediately; on Δ'_k KL's constant 9 wins once
        2⌈(k+1)/2⌉ exceeds it (k ≥ 9)."""
        for k in (2, 4):
            dk = self._delta_k(k)
            assert min(our_ratio(dk), kl_ratio(dk)) == our_ratio(dk)
        for k in (10, 14):
            dpk = self._delta_prime_k(k)
            assert min(our_ratio(dpk), kl_ratio(dpk)) == kl_ratio(dpk)

    def test_theorem_414_hardness_side_shape(self):
        """Theorem 4.14's Δ'_1 argument: A1 is a common lhs and the
        S-repair problem for {A→B, C→D} is hard; our classifier agrees
        that Δ'_1 itself fails OSRSucceeds."""
        dp1 = self._delta_prime_k(1)
        assert dp1.common_lhs() == frozenset({"A1"})
        assert not osr_succeeds(dp1)
