"""Tests for repair checking (local minimality, Section 2.3) and the
Section 5 restricted-update-domain extension."""

import pytest

from repro.core.checking import (
    is_consistent_subset,
    is_consistent_update,
    is_s_repair,
    is_u_repair,
    non_restorable_cells,
)
from repro.core.exact import ExactSearchLimit, exact_s_repair, exact_u_repair
from repro.core.fd import FDSet
from repro.core.srepair import opt_s_repair
from repro.core.table import Table
from repro.core.urepair import u_repair
from repro.datagen.office import (
    consistent_subsets,
    consistent_updates,
    office_fds,
    office_table,
)

from repro.testing import random_small_table


class TestSRepairChecking:
    def test_figure1_subsets_are_repairs(self):
        """S1 and S2 are maximal (S-repairs in the strict, local sense);
        S3 is a consistent subset but *not* maximal — it is strictly
        contained in S1 (the paper deliberately blurs the distinction:
        'we do not distinguish between an S-repair and a consistent
        subset', §2.3)."""
        table, fds = office_table(), office_fds()
        subsets = consistent_subsets()
        for name in ("S1", "S2"):
            assert is_consistent_subset(table, fds, subsets[name]), name
            assert is_s_repair(table, fds, subsets[name]), name
        assert is_consistent_subset(table, fds, subsets["S3"])
        assert not is_s_repair(table, fds, subsets["S3"])
        assert subsets["S3"].is_subset_of(subsets["S1"])

    def test_non_maximal_subset_is_not_a_repair(self):
        table, fds = office_table(), office_fds()
        s2 = consistent_subsets()["S2"]
        smaller = s2.subset([1])  # tuple 4 could be added back
        assert is_consistent_subset(table, fds, smaller)
        assert not is_s_repair(table, fds, smaller)

    def test_inconsistent_subset_rejected(self):
        table, fds = office_table(), office_fds()
        assert not is_s_repair(table, fds, table)  # T itself violates Δ

    def test_optimal_repairs_are_maximal(self, rng):
        """Every optimal S-repair is an S-repair in the local sense."""
        for fds in (FDSet("A -> B; A -> C"), FDSet("A -> B; B -> A")):
            for _ in range(8):
                table = random_small_table(rng, ("A", "B", "C"), 7, domain=2)
                repair = opt_s_repair(fds, table)
                assert is_s_repair(table, fds, repair)

    def test_exact_repairs_are_maximal(self, rng):
        fds = FDSet("A -> B; B -> C")
        for _ in range(8):
            table = random_small_table(rng, ("A", "B", "C"), 7, domain=2)
            repair = exact_s_repair(table, fds)
            assert is_s_repair(table, fds, repair)


class TestURepairChecking:
    def test_figure1_updates_are_repairs(self):
        """U1–U3 of Figure 1 are update repairs: no changed value can be
        restored without breaking consistency."""
        table, fds = office_table(), office_fds()
        for name, update in consistent_updates().items():
            assert is_consistent_update(table, fds, update), name
            assert is_u_repair(table, fds, update), name

    def test_wasteful_update_is_not_a_repair(self):
        table, fds = office_table(), office_fds()
        u1 = consistent_updates()["U1"]
        wasteful = u1.with_updates({(4, "room"): "Z99"})  # pointless change
        assert is_consistent_update(table, fds, wasteful)
        assert not is_u_repair(table, fds, wasteful)

    def test_non_restorable_cells(self):
        table, fds = office_table(), office_fds()
        u1 = consistent_updates()["U1"]
        assert non_restorable_cells(table, fds, u1) == [(1, "facility")]
        wasteful = u1.with_updates({(4, "room"): "Z99"})
        assert (4, "room") not in non_restorable_cells(table, fds, wasteful)

    def test_dispatcher_output_is_u_repair(self, rng):
        for fds in (FDSet("A -> B"), FDSet("A -> B; B -> A")):
            for _ in range(6):
                table = random_small_table(rng, ("A", "B"), 5, domain=2)
                result = u_repair(table, fds)
                assert is_u_repair(table, fds, result.update)

    def test_changed_cell_guard(self):
        table = Table.from_rows(("A",), [("x",)] * 20)
        update = table.with_updates(
            {(i, "A"): f"y{i}" for i in range(1, 20)}
        )
        with pytest.raises(ValueError):
            is_u_repair(table, FDSet(), update, max_changed_cells=16)


class TestRestrictedUpdateDomains:
    """Section 5's future-work restriction: finite per-attribute value
    pools (no fresh nulls)."""

    def test_restriction_changes_the_optimum(self):
        fds = FDSet("A -> B; A -> C")
        table = Table.from_rows(("A", "B", "C"), [("a", 1, 1), ("a", 2, 2)])
        # Unrestricted: one fresh value on A suffices (distance 1).
        free = exact_u_repair(table, fds)
        assert table.dist_upd(free) == 1.0
        # Restricting A to its active domain forces reconciling B and C.
        restricted = exact_u_repair(
            table, fds, allowed_values={"A": {"a"}}
        )
        assert table.dist_upd(restricted) == 2.0

    def test_restriction_can_make_repair_impossible(self):
        fds = FDSet("-> A")
        table = Table.from_rows(("A",), [("x",), ("y",)])
        with pytest.raises(ExactSearchLimit):
            # Neither cell may move: no consistent update exists.
            exact_u_repair(table, fds, allowed_values={"A": set()})

    def test_restriction_with_matching_pool_matches_unrestricted(self):
        fds = FDSet("A -> B")
        table = Table.from_rows(("A", "B"), [("a", 1), ("a", 2)])
        restricted = exact_u_repair(
            table, fds, allowed_values={"B": {1, 2}}
        )
        assert table.dist_upd(restricted) == 1.0
