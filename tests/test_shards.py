"""Fault-tolerant sharded execution (``repro.shard``).

The suite pins the PR's acceptance property from both ends:

- **Byte-identity.**  Sharded answers — fault-free, under deterministic
  chaos schedules (kills, dropped RPCs, stalls), and after full
  degradation to local execution — are byte-identical to the serial
  oracle.  Components are independent and solvers pure, so routing,
  retry, failover, and replay can only move *where* work runs.
- **Honesty.**  Every recovery the executor performs is visible in
  ``supervision_stats`` — deaths, respawns, retries, timeouts,
  re-routes, local degradations — so the identity above is evidence of
  healing, not of faults never firing.

Plus the satellite machinery riding this PR: journal rotation with
retention (``OpJournal`` keep/max_bytes), the ``fdrepair recover
--dry-run`` inspection verb, and supervision counters surviving daemon
restarts via the snapshot.
"""

import json

import pytest

from repro.core.fd import FDSet
from repro.core.table import Table
from repro.faults import FaultPlan, FaultRule
from repro.pipeline import clean
from repro.protocol import apply_session_op
from repro.session import RepairSession
from repro.shard import HashRing, ShardedExecutor

SCHEMA = ("A", "B", "C")
FDS = FDSet("A -> B; B -> C")
FDS_TEXT = "A -> B; B -> C"


def _conflict_table(clusters=4, size=10, seed=7):
    """Independent conflict clusters (distinct value spaces → distinct
    components), weights varied so minimum repairs are unique enough to
    make byte-identity a real assertion."""
    import random

    rng = random.Random(seed)
    rows, weights = {}, {}
    tid = 0
    for c in range(clusters):
        for _ in range(size):
            rows[tid] = (
                f"a{c}.{rng.randrange(2)}",
                f"b{c}.{rng.randrange(3)}",
                f"x{c}.{rng.randrange(2)}",
            )
            weights[tid] = 1.0 + (tid % 3)
            tid += 1
    return Table(SCHEMA, rows, weights)


def _executor(shards, **kwargs):
    """Start a sharded executor or skip: platforms that cannot spawn
    the shard subprocesses keep their serial fallback and are not what
    this suite tests."""
    kwargs.setdefault("respawn_backoff_s", 0.01)
    ex = ShardedExecutor(shards, **kwargs)
    if not ex.start():
        ex.close()
        pytest.skip("platform cannot start shard subprocesses")
    return ex


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    KEYS = [f"key-{i}".encode() for i in range(200)]

    def test_deterministic_across_instances(self):
        a = HashRing((0, 1, 2))
        b = HashRing((2, 0, 1))  # construction order must not matter
        assert [a.route(k) for k in self.KEYS] == [
            b.route(k) for k in self.KEYS
        ]

    def test_membership_change_moves_only_the_lost_arc(self):
        full = HashRing((0, 1, 2))
        survivors = HashRing((0, 2))
        moved = 0
        for key in self.KEYS:
            before = full.route(key)
            after = survivors.route(key)
            if before == 1:
                assert after in (0, 2)
            else:
                # The consistent-hashing contract: keys on surviving
                # members' arcs do not move when a member dies.
                assert after == before
                moved += before != after
        assert moved == 0

    def test_empty_ring(self):
        ring = HashRing(())
        assert not ring
        with pytest.raises(IndexError):
            ring.route(b"anything")


# ---------------------------------------------------------------------------
# Byte-identity: fault-free, chaos, and degraded
# ---------------------------------------------------------------------------


class TestShardedIdentity:
    def _serial(self, table):
        return clean(table, FDS).cleaned.to_string()

    def test_fault_free_sharded_clean_matches_serial(self):
        table = _conflict_table()
        expected = self._serial(table)
        with _executor(2) as ex:
            got = clean(table, FDS, executor=ex)
            stats = ex.supervision_stats()
        assert got.cleaned.to_string() == expected
        # The work actually went over the RPC layer.
        assert stats["rpcs"] > 0
        assert stats["shard_deaths"] == 0
        assert stats["degraded_local"] == 0

    def test_shard_kill_mid_run_is_invisible_in_results(self):
        """A shard killed mid-batch: in-flight solves re-dispatch to the
        survivor, the slot respawns (generation-matched kill spares the
        replacement), and the answer is byte-identical."""
        table = _conflict_table()
        expected = self._serial(table)
        plan = FaultPlan([
            FaultRule("shard.kill", "kill", at=2,
                      match={"shard": 0, "generation": 0}),
        ])
        with _executor(2, faults=plan) as ex:
            got = clean(table, FDS, executor=ex)
            stats = ex.supervision_stats()
        assert got.cleaned.to_string() == expected
        assert stats["shard_deaths"] >= 1
        assert stats["rerouted"] >= 1

    def test_dropped_solve_rpcs_recover_via_deadline_and_retry(self):
        """A lost request and a lost reply look identical from the
        parent: the RPC deadline expires, the solve retries with
        backoff, and the answer does not change."""
        table = _conflict_table()
        expected = self._serial(table)
        plan = FaultPlan([
            FaultRule("shard.rpc.send", "drop", times=2,
                      match={"op": "solve"}),
        ])
        with _executor(2, faults=plan, rpc_timeout_s=0.3) as ex:
            got = clean(table, FDS, executor=ex)
            stats = ex.supervision_stats()
        assert got.cleaned.to_string() == expected
        assert stats["timeouts"] >= 2
        assert stats["retries"] >= 2

    def test_all_shards_lost_degrades_to_local_execution(self):
        """The regression the ISSUE names: with every shard dead and no
        respawns allowed, the executor must *degrade*, not fail — solves
        run in the calling thread against the authoritative mirror, the
        answer stays byte-identical, and the counters say so honestly."""
        table = _conflict_table()
        expected = self._serial(table)
        plan = FaultPlan([
            FaultRule("shard.kill", "kill", at=2, match={"shard": 0}),
            FaultRule("shard.kill", "kill", at=2, match={"shard": 1}),
        ])
        with _executor(2, faults=plan, max_respawns=0) as ex:
            got = clean(table, FDS, executor=ex)
            stats = ex.supervision_stats()
            live = ex.live_shards()
            still_alive = ex.alive
        assert got.cleaned.to_string() == expected
        assert live == 0
        assert still_alive  # degraded, not broken: later solves run local
        assert stats["shard_deaths"] == 2
        assert stats["abandoned"] == 2
        assert stats["degraded_local"] > 0

    def test_session_deltas_over_shards_match_serial_oracle(self):
        """The daemon shape: a RepairSession using the executor as its
        shared pool, interleaving appends/deletes/repairs — every ack
        equals the isolated serial session's."""
        script = _session_script(seed=3, batches=4)
        oracle = RepairSession(Table(SCHEMA, {}), FDS)
        expected = [
            apply_session_op(oracle, op, dict(payload))
            for op, payload in script
        ]
        oracle.close()
        with _executor(2) as ex:
            session = RepairSession(Table(SCHEMA, {}), FDS, pool=ex)
            got = [
                apply_session_op(session, op, dict(payload))
                for op, payload in script
            ]
            session.close()
            stats = ex.supervision_stats()
        assert got == expected
        assert stats["rpcs"] > 0


def _session_script(seed, batches):
    """A deterministic interleaved append/delete/repair script over one
    conflict-cluster value space per batch."""
    import random

    rng = random.Random(seed)
    script = []
    live = []
    next_id = [0]

    def rows_for(batch):
        rows = []
        for _ in range(6):
            rows.append([
                f"a{batch}.{rng.randrange(2)}",
                f"b{batch}.{rng.randrange(3)}",
                f"x{batch}.{rng.randrange(2)}",
            ])
        return rows

    for b in range(batches):
        rows = rows_for(b)
        ids = list(range(next_id[0], next_id[0] + len(rows)))
        next_id[0] += len(rows)
        live.extend(ids)
        script.append(("append", {"rows": rows, "ids": ids,
                                  "repair": False}))
        if len(live) > 8 and rng.random() < 0.7:
            victims = rng.sample(live, 2)
            for v in victims:
                live.remove(v)
            script.append(("delete", {"ids": victims, "repair": False}))
        script.append(("repair", {}))
    return script


def test_chaos_identity_under_shard_kills_and_dropped_rpcs():
    """The hypothesis chaos gate: shard kills and dropped solve RPCs at
    hypothesis-chosen coordinates, over hypothesis-chosen workloads,
    never change a single acknowledged byte vs the serial oracle.  Fault
    plans are deterministic, so every failing example replays exactly.
    """
    pytest.importorskip("hypothesis")
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    with _executor(1):
        pass  # probe once; skip the whole test where spawn fails

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**16),
        kill_msg=st.integers(2, 10),
        drops=st.integers(0, 2),
    )
    def run(seed, kill_msg, drops):
        script = _session_script(seed, batches=3)

        oracle = RepairSession(Table(SCHEMA, {}), FDS)
        expected = [
            apply_session_op(oracle, op, dict(payload))
            for op, payload in script
        ]
        oracle.close()

        rules = [
            FaultRule("shard.kill", "kill", at=kill_msg,
                      match={"shard": 0, "generation": 0}),
        ]
        if drops:
            rules.append(FaultRule("shard.rpc.send", "drop", times=drops,
                                   match={"op": "solve"}))
        ex = ShardedExecutor(
            2, faults=FaultPlan(rules),
            rpc_timeout_s=0.5, respawn_backoff_s=0.01,
        )
        if not ex.start():
            ex.close()
            pytest.skip("platform cannot start shard subprocesses")
        try:
            session = RepairSession(Table(SCHEMA, {}), FDS, pool=ex)
            got = [
                apply_session_op(session, op, dict(payload))
                for op, payload in script
            ]
            session.close()
        finally:
            ex.close()
        assert got == expected

    run()


# ---------------------------------------------------------------------------
# Executor failure modes at the pool seam
# ---------------------------------------------------------------------------


class TestExecutorSeam:
    def test_closed_executor_raises_like_the_pool(self):
        ex = _executor(1)
        ex.close()
        with pytest.raises(RuntimeError):
            ex.solve([((0,), "exact")])

    def test_solver_error_surfaces_as_runtime_error(self):
        """A shard-side solver exception is a property of the request,
        not of the transport: it surfaces as RuntimeError (the worker
        pool's contract) so callers fall back serially."""
        with _executor(1) as ex:
            assert ex.attach_table("k", _conflict_table(1, 4), FDS,
                                   node_limit=2000)
            with pytest.raises(RuntimeError):
                # Unknown tuple ids → stale-state requeue would loop, so
                # use a bogus method name: shard replies kind="solve".
                ex.solve([((0, 1), "no-such-method")], key="k")

    def test_clean_falls_back_serially_when_executor_unusable(self):
        """The batch path keeps the serial fallback: an executor whose
        start() fails must leave clean() untouched."""
        table = _conflict_table()
        dead = ShardedExecutor(1)
        dead._broken = True  # simulate a platform that cannot spawn
        dead._started = True
        got = clean(table, FDS, executor=dead)
        assert got.cleaned.to_string() == clean(table, FDS).cleaned.to_string()


# ---------------------------------------------------------------------------
# Journal rotation with retention
# ---------------------------------------------------------------------------


class TestJournalRotation:
    def _fill(self, journal, n, start=0):
        for i in range(n):
            journal.append("append", "t", "s", {"i": start + i})

    def test_compact_rotates_and_chain_replays_everything(self, tmp_path):
        from repro.state import OpJournal

        path = str(tmp_path / "journal.log")
        snap = str(tmp_path / "snapshot.bin")
        journal = OpJournal(path, keep=2)
        self._fill(journal, 3)
        journal.compact(snap, {"journal_seq": journal.seq})
        self._fill(journal, 3, start=3)
        journal.compact(snap, {"journal_seq": journal.seq})
        self._fill(journal, 2, start=6)
        journal.close()

        assert journal.rotations == 2
        chain = OpJournal.chain_paths(path, keep=2)
        assert chain == [f"{path}.2", f"{path}.1", path]
        records, last_seq = OpJournal.load_chain(path, keep=2)
        # The whole retained history replays oldest-first, in seq order.
        assert [r["seq"] for r in records] == list(range(1, 9))
        assert last_seq == 8

    def test_retention_window_drops_the_oldest_segment(self, tmp_path):
        import os

        from repro.state import OpJournal

        path = str(tmp_path / "journal.log")
        snap = str(tmp_path / "snapshot.bin")
        journal = OpJournal(path, keep=1)
        for round_no in range(3):
            self._fill(journal, 2, start=round_no * 2)
            journal.compact(snap, {"journal_seq": journal.seq})
        journal.close()
        assert os.path.exists(f"{path}.1")
        assert not os.path.exists(f"{path}.2")
        records, last_seq = OpJournal.load_chain(path, keep=1)
        # Only the last retained epoch remains: seqs 5..6.
        assert [r["seq"] for r in records] == [5, 6]
        assert last_seq == 6

    def test_oversized_flags_the_size_trigger(self, tmp_path):
        from repro.state import OpJournal

        path = str(tmp_path / "journal.log")
        journal = OpJournal(path, max_bytes=64)
        assert not journal.oversized
        self._fill(journal, 4)
        assert journal.oversized
        journal.compact(str(tmp_path / "snap.bin"),
                        {"journal_seq": journal.seq})
        assert not journal.oversized  # fresh live segment
        journal.close()

    def test_load_chain_monotonic_guard_skips_replayed_seqs(self, tmp_path):
        import shutil

        from repro.state import OpJournal

        path = str(tmp_path / "journal.log")
        journal = OpJournal(path)
        self._fill(journal, 3)
        journal.close()
        # A stale copy of the live segment left behind as ".1" must not
        # replay its ops twice.
        shutil.copy(path, f"{path}.1")
        records, last_seq = OpJournal.load_chain(path, keep=1)
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert last_seq == 3

    def test_daemon_rotates_at_size_trigger_and_recovers(self, tmp_path):
        """End to end on the daemon: a tiny ``journal_max_bytes`` forces
        size-triggered compaction+rotation mid-stream, and a restart on
        the same state dir recovers every session."""
        import os

        from repro.server import ServerConfig, SessionManager
        from repro.state import JOURNAL_NAME

        state = str(tmp_path / "state")
        config = ServerConfig(workers=0, state_dir=state,
                              journal_max_bytes=256, journal_keep=2)
        manager = SessionManager(config)
        manager.open("t", "s", {"schema": list(SCHEMA), "fds": FDS_TEXT})
        entry = manager.entry("t", "s")
        for i in range(6):
            manager.run_op(entry, "append", {
                "rows": [[f"a{i}", f"b{i}", f"x{i}"],
                         [f"a{i}", f"c{i}", f"y{i}"]],
                "repair": False,
            })
            # The daemon's event loop runs this between requests; the
            # size trigger lives there, not inside run_op.
            manager.maybe_compact()
        manager.run_op(entry, "repair", {})
        manager.maybe_compact()
        rotated = manager._journal.rotations
        stats = manager.stats()
        manager.shutdown()
        assert rotated >= 1
        assert os.path.exists(os.path.join(state, JOURNAL_NAME + ".1"))
        assert stats["journal"]["max_bytes"] == 256
        assert stats["journal"]["keep"] == 2

        recovered = SessionManager(ServerConfig(
            workers=0, state_dir=state, journal_keep=2,
        ))
        assert recovered.stats()["sessions"] == 1
        entry = recovered.entry("t", "s")
        result = recovered.run_op(entry, "repair", {})
        assert result["tuples"] > 0
        recovered.shutdown()


# ---------------------------------------------------------------------------
# fdrepair recover --dry-run
# ---------------------------------------------------------------------------


class TestRecoverVerb:
    def _crashed_state(self, tmp_path):
        """A daemon that snapshotted once, then took more ops and
        'crashed' (no clean shutdown → the tail stays in the journal)."""
        from repro.server import ServerConfig, SessionManager

        state = str(tmp_path / "state")
        manager = SessionManager(ServerConfig(workers=0, state_dir=state))
        manager.open("t", "s", {"schema": list(SCHEMA), "fds": FDS_TEXT})
        entry = manager.entry("t", "s")
        manager.run_op(entry, "append", {
            "rows": [["a", "b", "x"], ["a", "c", "y"]], "repair": False,
        })
        manager.compact(force=True)
        manager.run_op(entry, "append", {
            "rows": [["a2", "b2", "x2"]], "repair": False,
        })
        manager.run_op(entry, "repair", {})
        # Crash: abandon without shutdown (shutdown would compact the
        # tail away).
        manager._journal.close()
        return state

    def test_dry_run_reports_tail_without_touching_state(self, tmp_path,
                                                         capsys):
        import os

        from repro.cli import main as cli_main
        from repro.state import JOURNAL_NAME

        state = self._crashed_state(tmp_path)
        journal_path = os.path.join(state, JOURNAL_NAME)
        before = open(journal_path, "rb").read()

        rc = cli_main(["recover", "--state-dir", state, "--dry-run",
                       "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["snapshot"]["sessions"] == 1
        assert report["replay"]["ops"] == 2  # the post-snapshot tail
        assert report["replay"]["by_op"] == {"append": 1, "repair": 1}
        assert report["replay"]["solver_ops"] == 1
        assert report["replay"]["sessions_touched"] == 1
        # Inspection only: the journal is byte-for-byte untouched.
        assert open(journal_path, "rb").read() == before

    def test_recover_executes_the_replay(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        state = self._crashed_state(tmp_path)
        rc = cli_main(["recover", "--state-dir", state])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered" in out

    def test_missing_state_dir_is_an_error(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["recover", "--state-dir",
                       str(tmp_path / "nowhere"), "--dry-run"])
        assert rc == 2


# ---------------------------------------------------------------------------
# Supervision counters survive restarts
# ---------------------------------------------------------------------------


class _WornPool:
    """A stand-in executor that reports supervision wear — lets the
    persistence path be tested without actually killing subprocesses."""

    alive = True
    worker_count = 2
    executor_kind = "fake"

    def __init__(self, counters):
        self._counters = dict(counters)

    def supervision_stats(self):
        return dict(self._counters)

    def close(self):
        pass


class TestSupervisionPersistence:
    def test_counters_accumulate_across_daemon_restarts(self, tmp_path):
        from repro.server import ServerConfig, SessionManager

        state = str(tmp_path / "state")
        wear = {"worker_deaths": 3, "respawns": 2}

        manager = SessionManager(ServerConfig(workers=0, state_dir=state))
        manager.open("t", "s", {"schema": list(SCHEMA), "fds": FDS_TEXT})
        manager._pool = _WornPool(wear)
        manager._pool_started = True
        assert manager.lifetime_supervision() == wear
        manager.shutdown()  # final compaction persists the wear

        # Restart 1: snapshot base + this boot's (worn again) pool.
        manager = SessionManager(ServerConfig(workers=0, state_dir=state))
        assert manager._supervision_base == wear
        manager._pool = _WornPool({"worker_deaths": 1})
        manager._pool_started = True
        stats = manager.stats()
        assert stats["pool_supervision"] == {"worker_deaths": 1}
        assert stats["pool_supervision_lifetime"] == {
            "worker_deaths": 4, "respawns": 2,
        }
        manager.shutdown()

        # Restart 2: lifetime totals kept accumulating.
        manager = SessionManager(ServerConfig(workers=0, state_dir=state))
        assert manager.lifetime_supervision() == {
            "worker_deaths": 4, "respawns": 2,
        }
        manager.shutdown()


# ---------------------------------------------------------------------------
# Daemon over shards
# ---------------------------------------------------------------------------


def test_daemon_shared_pool_can_be_sharded(tmp_path):
    """``ServerConfig(shards=N)`` swaps the daemon's shared executor for
    the sharded one at the same seam; sessions repair identically and
    ``stats`` reports the shard fleet."""
    from repro.server import ServerConfig, SessionManager

    probe = ShardedExecutor(1)
    started = probe.start()
    probe.close()
    if not started:
        pytest.skip("platform cannot start shard subprocesses")

    oracle = RepairSession(Table(SCHEMA, {}), FDS)
    rows = [["a", "b1", "x"], ["a", "b2", "x"], ["c", "d", "y"]]
    expected = [
        apply_session_op(oracle, "append", {"rows": rows, "repair": False}),
        apply_session_op(oracle, "repair", {}),
    ]
    oracle.close()

    manager = SessionManager(ServerConfig(
        workers=0, shards=2, state_dir=str(tmp_path / "state"),
    ))
    try:
        manager.open("t", "s", {"schema": list(SCHEMA), "fds": FDS_TEXT})
        entry = manager.entry("t", "s")
        got = [
            manager.run_op(entry, "append",
                           {"rows": rows, "repair": False}),
            manager.run_op(entry, "repair", {}),
        ]
        stats = manager.stats()
    finally:
        manager.shutdown()
    assert got == expected
    assert stats["pool_kind"] == "shards"
    assert stats["shards"] == {"count": 2, "live": 2}
    assert "pool_supervision_lifetime" in stats
