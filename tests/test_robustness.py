"""Robustness tests: malformed inputs, unusual values, failure injection.

A production-quality library must fail loudly and precisely on bad
inputs and behave correctly on unusual-but-legal ones (unicode attribute
names, mixed value types, huge weights, single-column schemas).
"""

import math

import pytest

from repro.core.dichotomy import classify
from repro.core.fd import FD, FDSet, parse_fd_set
from repro.core.srepair import opt_s_repair
from repro.core.table import FreshValue, Table
from repro.core.urepair import u_repair
from repro.core.violations import satisfies
from repro.io.tables import table_from_csv
from repro.pipeline import assess, clean


class TestMalformedFDStrings:
    @pytest.mark.parametrize(
        "text", ["A B C", "A ->", "->", "A - > B", "A => B"]
    )
    def test_bad_fd_rejected(self, text):
        with pytest.raises(ValueError):
            FD.parse(text)

    def test_empty_segments_ignored(self):
        fds = parse_fd_set("A -> B; ; ;B -> C;")
        assert len(fds) == 2

    def test_whitespace_only_is_empty(self):
        assert len(parse_fd_set("  ")) == 0


class TestUnusualButLegalInputs:
    def test_unicode_attribute_names(self):
        fds = FDSet("Stadt -> Postleitzahl")
        table = Table.from_rows(
            ("Stadt", "Postleitzahl"),
            [("München", "80331"), ("München", "80333")],
        )
        repair = opt_s_repair(fds, table)
        assert satisfies(repair, fds)
        assert len(repair) == 1

    def test_mixed_value_types_in_column(self):
        # Equality across types is well-defined in Python; 1 != "1".
        fds = FDSet("A -> B")
        table = Table.from_rows(("A", "B"), [(1, "x"), ("1", "y"), (1, "z")])
        repair = opt_s_repair(fds, table)
        assert satisfies(repair, fds)
        assert len(repair) == 2  # ("1", y) never conflicts with (1, ·)

    def test_none_as_value(self):
        fds = FDSet("A -> B")
        table = Table.from_rows(("A", "B"), [(None, 1), (None, 2)])
        repair = opt_s_repair(fds, table)
        assert len(repair) == 1

    def test_huge_and_tiny_weights(self):
        fds = FDSet("A -> B")
        table = Table.from_rows(
            ("A", "B"), [("a", 1), ("a", 2)], weights=[1e12, 1e-9]
        )
        repair = opt_s_repair(fds, table)
        assert list(repair.ids()) == [1]  # keep the heavy tuple

    def test_single_column_schema(self):
        fds = FDSet("-> A")
        table = Table.from_rows(("A",), [("x",), ("y",), ("x",)])
        result = u_repair(table, fds)
        assert result.optimal and result.distance == 1.0

    def test_fresh_values_in_input_table(self):
        """Labelled nulls may already appear in the input (e.g. the
        output of a previous repair is re-repaired)."""
        null = FreshValue()
        fds = FDSet("A -> B")
        table = Table.from_rows(("A", "B"), [(null, 1), (null, 2), ("a", 1)])
        repair = opt_s_repair(fds, table)
        assert satisfies(repair, fds)
        assert len(repair) == 2

    def test_wide_schema(self):
        schema = tuple(f"C{i}" for i in range(30))
        fds = FDSet("C0 -> C29")
        rows = [tuple(f"v{i % 3}" for i in range(30)) for _ in range(5)]
        table = Table.from_rows(schema, rows)
        assert satisfies(table, fds)
        assert assess(table, fds).consistent

    def test_idempotent_repair(self):
        """Repairing a repair changes nothing."""
        from repro.datagen.office import office_fds, office_table

        first = opt_s_repair(office_fds(), office_table())
        second = opt_s_repair(office_fds(), first)
        assert first == second

    def test_re_repairing_an_update_is_free(self):
        from repro.datagen.office import office_fds, office_table

        result = u_repair(office_table(), office_fds())
        again = u_repair(result.update, office_fds())
        assert again.distance == 0.0


class TestMalformedCsv:
    def test_missing_weight_column(self):
        with pytest.raises(ValueError):
            table_from_csv("x", text="id,A\n1,foo\n")

    def test_missing_id_column(self):
        with pytest.raises(ValueError):
            table_from_csv("x", text="A,weight\nfoo,1\n")

    def test_non_numeric_weight(self):
        with pytest.raises(ValueError):
            table_from_csv("x", text="id,A,weight\n1,foo,heavy\n")

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            table_from_csv("x", text="id,A,weight\n1,foo,0\n")

    def test_blank_lines_tolerated(self):
        table = table_from_csv("x", text="id,A,weight\n1,foo,1\n\n2,bar,2\n")
        assert len(table) == 2


class TestPipelineEdgeCases:
    def test_empty_table(self):
        report = assess(Table(("A", "B"), {}), FDSet("A -> B"))
        assert report.consistent and report.bracket_is_tight

    def test_trivial_fd_set(self):
        from repro.datagen.office import office_table

        result = clean(office_table(), FDSet())
        assert result.distance == 0.0 and result.optimal

    def test_all_tuples_identical(self):
        fds = FDSet("A -> B; B -> A; -> A")
        table = Table.from_rows(("A", "B"), [("x", 1)] * 6)
        report = assess(table, fds)
        assert report.consistent
        result = clean(table, fds, strategy="updates")
        assert result.distance == 0.0

    def test_every_tuple_conflicts(self):
        fds = FDSet("-> A")
        table = Table.from_rows(("A",), [(f"v{i}",) for i in range(6)])
        report = assess(table, fds)
        assert report.conflicting_tuples == 6
        result = clean(table, fds)
        assert result.distance == 5.0  # keep exactly one


# ---------------------------------------------------------------------------
# Chaos identity: worker kills + daemon restarts never change results
# ---------------------------------------------------------------------------

def _chaos_workload(seed, batches=3, rows_per_batch=5):
    """Deterministic mixed append/delete script from one seed."""
    import random

    rng = random.Random(seed)
    script = []
    live = []
    next_id = 1
    for _ in range(batches):
        rows = [
            [rng.choice("ab"), rng.choice("xy"), rng.choice("pq")]
            for _ in range(rows_per_batch)
        ]
        ids = list(range(next_id, next_id + len(rows)))
        next_id += len(rows)
        live.extend(ids)
        batch = [("append", {"rows": rows, "ids": ids})]
        if len(live) > 6 and rng.random() < 0.6:
            victims = rng.sample(live, 2)
            for v in victims:
                live.remove(v)
            batch.append(("delete", {"ids": victims, "repair": False}))
        batch.append(("repair", {}))
        script.append(batch)
    return script


def test_chaos_identity_under_worker_kills_and_daemon_restarts(tmp_path):
    """The tentpole acceptance property, end to end: a pooled daemon
    whose workers are killed mid-run (``repro.faults``) and whose
    process is hard-restarted between batches (crash-safe journal
    recovery) acknowledges op for op exactly what an isolated serial
    session computes — fault tolerance is invisible in the results.

    Hypothesis drives the chaos coordinates (workload seed, which solve
    kills which worker, where the restarts land); every failing example
    replays deterministically because the faults are plan-driven, not
    scheduler races.
    """
    pytest.importorskip("hypothesis")
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    from repro.core.table import Table as _Table
    from repro.faults import FaultPlan
    from repro.protocol import apply_session_op
    from repro.server import ServerConfig, SessionManager
    from repro.session import RepairSession
    from repro.exec import PersistentWorkerPool

    probe = PersistentWorkerPool(1, ("A", "B", "C"), FDSet("A -> B"))
    try:
        if not probe.start():
            pytest.skip("subprocess support unavailable")
    finally:
        probe.close()

    fds_text = "A -> B"
    state_root = [0]

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**16),
        kill_solve=st.integers(1, 5),
        restarts=st.sets(st.integers(0, 2), max_size=2),
    )
    def run(seed, kill_solve, restarts):
        script = _chaos_workload(seed)

        # Oracle: one isolated serial session, no pool, no faults.
        oracle = RepairSession(
            _Table(("A", "B", "C"), {}), FDSet(fds_text)
        )
        expected = [
            apply_session_op(oracle, op, dict(payload))
            for batch in script
            for op, payload in batch
        ]

        state_root[0] += 1
        state = str(tmp_path / f"state-{state_root[0]}")
        spec = [{"site": "worker.solve", "action": "kill",
                 "at": kill_solve,
                 "match": {"worker": 0, "generation": 0}}]

        def fresh_manager():
            return SessionManager(
                ServerConfig(workers=2, state_dir=state),
                faults=FaultPlan.from_spec(spec),
            )

        manager = fresh_manager()
        manager.open(
            "t", "s", {"schema": ["A", "B", "C"], "fds": fds_text}
        )
        got = []
        try:
            for bi, batch in enumerate(script):
                if bi in restarts and bi > 0:
                    # Hard crash: abandon the journal mid-stream (the
                    # pool is closed only to reap subprocesses), then
                    # recover on the same state dir.
                    if manager._pool is not None:
                        manager._pool.close()
                    manager = fresh_manager()
                entry = manager.entry("t", "s")
                for op, payload in batch:
                    got.append(manager.run_op(entry, op, dict(payload)))
        finally:
            manager.shutdown()
        assert got == expected
        oracle.close()

    run()
