"""Robustness tests: malformed inputs, unusual values, failure injection.

A production-quality library must fail loudly and precisely on bad
inputs and behave correctly on unusual-but-legal ones (unicode attribute
names, mixed value types, huge weights, single-column schemas).
"""

import math

import pytest

from repro.core.dichotomy import classify
from repro.core.fd import FD, FDSet, parse_fd_set
from repro.core.srepair import opt_s_repair
from repro.core.table import FreshValue, Table
from repro.core.urepair import u_repair
from repro.core.violations import satisfies
from repro.io.tables import table_from_csv
from repro.pipeline import assess, clean


class TestMalformedFDStrings:
    @pytest.mark.parametrize(
        "text", ["A B C", "A ->", "->", "A - > B", "A => B"]
    )
    def test_bad_fd_rejected(self, text):
        with pytest.raises(ValueError):
            FD.parse(text)

    def test_empty_segments_ignored(self):
        fds = parse_fd_set("A -> B; ; ;B -> C;")
        assert len(fds) == 2

    def test_whitespace_only_is_empty(self):
        assert len(parse_fd_set("  ")) == 0


class TestUnusualButLegalInputs:
    def test_unicode_attribute_names(self):
        fds = FDSet("Stadt -> Postleitzahl")
        table = Table.from_rows(
            ("Stadt", "Postleitzahl"),
            [("München", "80331"), ("München", "80333")],
        )
        repair = opt_s_repair(fds, table)
        assert satisfies(repair, fds)
        assert len(repair) == 1

    def test_mixed_value_types_in_column(self):
        # Equality across types is well-defined in Python; 1 != "1".
        fds = FDSet("A -> B")
        table = Table.from_rows(("A", "B"), [(1, "x"), ("1", "y"), (1, "z")])
        repair = opt_s_repair(fds, table)
        assert satisfies(repair, fds)
        assert len(repair) == 2  # ("1", y) never conflicts with (1, ·)

    def test_none_as_value(self):
        fds = FDSet("A -> B")
        table = Table.from_rows(("A", "B"), [(None, 1), (None, 2)])
        repair = opt_s_repair(fds, table)
        assert len(repair) == 1

    def test_huge_and_tiny_weights(self):
        fds = FDSet("A -> B")
        table = Table.from_rows(
            ("A", "B"), [("a", 1), ("a", 2)], weights=[1e12, 1e-9]
        )
        repair = opt_s_repair(fds, table)
        assert list(repair.ids()) == [1]  # keep the heavy tuple

    def test_single_column_schema(self):
        fds = FDSet("-> A")
        table = Table.from_rows(("A",), [("x",), ("y",), ("x",)])
        result = u_repair(table, fds)
        assert result.optimal and result.distance == 1.0

    def test_fresh_values_in_input_table(self):
        """Labelled nulls may already appear in the input (e.g. the
        output of a previous repair is re-repaired)."""
        null = FreshValue()
        fds = FDSet("A -> B")
        table = Table.from_rows(("A", "B"), [(null, 1), (null, 2), ("a", 1)])
        repair = opt_s_repair(fds, table)
        assert satisfies(repair, fds)
        assert len(repair) == 2

    def test_wide_schema(self):
        schema = tuple(f"C{i}" for i in range(30))
        fds = FDSet("C0 -> C29")
        rows = [tuple(f"v{i % 3}" for i in range(30)) for _ in range(5)]
        table = Table.from_rows(schema, rows)
        assert satisfies(table, fds)
        assert assess(table, fds).consistent

    def test_idempotent_repair(self):
        """Repairing a repair changes nothing."""
        from repro.datagen.office import office_fds, office_table

        first = opt_s_repair(office_fds(), office_table())
        second = opt_s_repair(office_fds(), first)
        assert first == second

    def test_re_repairing_an_update_is_free(self):
        from repro.datagen.office import office_fds, office_table

        result = u_repair(office_table(), office_fds())
        again = u_repair(result.update, office_fds())
        assert again.distance == 0.0


class TestMalformedCsv:
    def test_missing_weight_column(self):
        with pytest.raises(ValueError):
            table_from_csv("x", text="id,A\n1,foo\n")

    def test_missing_id_column(self):
        with pytest.raises(ValueError):
            table_from_csv("x", text="A,weight\nfoo,1\n")

    def test_non_numeric_weight(self):
        with pytest.raises(ValueError):
            table_from_csv("x", text="id,A,weight\n1,foo,heavy\n")

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            table_from_csv("x", text="id,A,weight\n1,foo,0\n")

    def test_blank_lines_tolerated(self):
        table = table_from_csv("x", text="id,A,weight\n1,foo,1\n\n2,bar,2\n")
        assert len(table) == 2


class TestPipelineEdgeCases:
    def test_empty_table(self):
        report = assess(Table(("A", "B"), {}), FDSet("A -> B"))
        assert report.consistent and report.bracket_is_tight

    def test_trivial_fd_set(self):
        from repro.datagen.office import office_table

        result = clean(office_table(), FDSet())
        assert result.distance == 0.0 and result.optimal

    def test_all_tuples_identical(self):
        fds = FDSet("A -> B; B -> A; -> A")
        table = Table.from_rows(("A", "B"), [("x", 1)] * 6)
        report = assess(table, fds)
        assert report.consistent
        result = clean(table, fds, strategy="updates")
        assert result.distance == 0.0

    def test_every_tuple_conflicts(self):
        fds = FDSet("-> A")
        table = Table.from_rows(("A",), [(f"v{i}",) for i in range(6)])
        report = assess(table, fds)
        assert report.conflicting_tuples == 6
        result = clean(table, fds)
        assert result.distance == 5.0  # keep exactly one
