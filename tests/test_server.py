"""The multi-tenant repair daemon: protocol, manager, and server.

The daemon's load-bearing contract extends the session's: every
``(tenant, session)`` stream served concurrently over one shared worker
pool and one shared solution cache yields repairs byte-identical to an
isolated :class:`~repro.session.RepairSession` replaying the same
deltas alone.  Admission control, LRU eviction + rehydration, and the
solver-free ``status`` bracket are pinned alongside, plus the pool
lifecycle regressions this PR fixes (a dead worker fails fast; shutdown
drains queues and repeated ``close()`` never blocks).
"""

import asyncio
import json
import pickle
import random
import time

import pytest

from repro.core.fd import FDSet
from repro.core.table import Table
from repro.exec import PersistentWorkerPool
from repro.io.tables import table_to_csv
from repro.pipeline import clean
from repro.protocol import (
    ProtocolError,
    Request,
    apply_session_op,
    decode_line,
    encode,
    result_summary,
)
from repro.server import RepairServer, ServerConfig, SessionManager
from repro.session import RepairSession, SolutionCache
from repro.testing import random_small_table

SCHEMA = ("A", "B", "C")


def _pool_available():
    pool = PersistentWorkerPool(1, SCHEMA, FDSet("A -> B"))
    try:
        return pool.start()
    finally:
        pool.close()


def _table(rows, weights=None):
    return Table.from_rows(SCHEMA, rows, weights=weights)


def _assert_identical(result, expected):
    assert result.cleaned == expected.cleaned
    assert result.distance == expected.distance
    assert result.method == expected.method
    assert result.report == expected.report
    assert table_to_csv(result.cleaned) == table_to_csv(expected.cleaned)


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_decode_rejects_bad_json_and_non_objects(self):
        with pytest.raises(ProtocolError):
            decode_line("not json")
        with pytest.raises(ProtocolError):
            decode_line("[1, 2]")
        assert decode_line('{"op": "ping"}') == {"op": "ping"}

    def test_request_envelope_validation(self):
        with pytest.raises(ProtocolError, match="missing op"):
            Request({})
        with pytest.raises(ProtocolError, match="unknown op"):
            Request({"op": "mystery"})
        with pytest.raises(ProtocolError, match="needs a tenant"):
            Request({"op": "repair"})
        with pytest.raises(ProtocolError, match="needs a session"):
            Request({"op": "repair", "tenant": "t"})
        req = Request({"op": "ping"})  # daemon ops need no addressing
        assert req.key is None

    def test_reply_echoes_addressing(self):
        req = Request(
            {"op": "status", "tenant": "t", "session": "s", "seq": 42}
        )
        reply = req.reply(tuples=3)
        assert reply == {
            "ok": True, "op": "status", "tenant": "t", "session": "s",
            "seq": 42, "tuples": 3,
        }
        err = req.error("nope")
        assert err["ok"] is False and err["error"] == "nope"
        # encode() emits exactly one JSON line.
        line = encode(reply)
        assert line.endswith("\n") and json.loads(line) == reply

    def test_apply_session_op_matches_direct_calls(self):
        fds = FDSet("A -> B")
        session = RepairSession(_table([("a", "x", "p")]), fds)
        fields = apply_session_op(
            session, "append", {"rows": [["a", "y", "p"]]}
        )
        assert fields["applied"] == 1 and fields["distance"] == 1.0
        fields = apply_session_op(session, "status", {})
        assert fields["conflicts"] == 1
        fields = apply_session_op(session, "assess", {})
        assert fields["lower_bound"] == fields["upper_bound"] == 1.0
        with pytest.raises(ProtocolError):
            apply_session_op(session, "append", {"rows": 5})
        with pytest.raises(ProtocolError):
            apply_session_op(session, "delete", {"ids": [999]})
        # Payload errors leave the session intact and usable.
        assert apply_session_op(session, "repair", {})["distance"] == 1.0

    def test_result_summary_reports_deleted_ids(self):
        fds = FDSet("A -> B")
        session = RepairSession(
            _table([("a", "x", "p"), ("a", "y", "p")], weights=[2.0, 1.0]),
            fds,
        )
        summary = result_summary(session.repair(), session.table)
        assert summary["deleted_ids"] == [2]  # the lighter tuple


# ---------------------------------------------------------------------------
# SessionManager: admission, accounting, eviction, rehydration
# ---------------------------------------------------------------------------

def _manager(**overrides):
    defaults = dict(workers=0, executor_threads=2)
    defaults.update(overrides)
    return SessionManager(ServerConfig(**defaults))


def _open(manager, tenant, name, **payload):
    payload.setdefault("schema", list(SCHEMA))
    payload.setdefault("fds", "A -> B")
    return manager.open(tenant, name, payload)


class TestSessionManager:
    def test_open_run_close_roundtrip(self):
        manager = _manager()
        try:
            fields = _open(manager, "t1", "s1")
            assert fields["opened"] and fields["tuples"] == 0
            entry = manager.entry("t1", "s1")
            fields = manager.run_op(
                entry, "append", {"rows": [["a", "x", "p"], ["a", "y", "p"]]}
            )
            assert fields["distance"] == 1.0
            assert manager.stats()["tenant_bytes"]["t1"] > 0
            assert manager.close("t1", "s1") == {"closed": True}
            with pytest.raises(ProtocolError, match="no open session"):
                manager.entry("t1", "s1")
            assert manager.stats()["tenant_bytes"] == {}
        finally:
            manager.shutdown()

    def test_admission_limits(self):
        manager = _manager(
            max_sessions=3, max_tenant_sessions=2, max_tenant_bytes=1
        )
        try:
            _open(manager, "t1", "a")
            # t1 now holds ≥ 1 byte, over its (tiny) budget.
            with pytest.raises(ProtocolError, match="memory budget"):
                _open(manager, "t1", "b")
            _open(manager, "t2", "a")
            with pytest.raises(ProtocolError, match="already open"):
                _open(manager, "t2", "a")
            _open(manager, "t3", "a")
            with pytest.raises(ProtocolError, match="session limit"):
                _open(manager, "t4", "a")
        finally:
            manager.shutdown()

    def test_tenant_session_limit(self):
        manager = _manager(max_tenant_sessions=2)
        try:
            _open(manager, "t1", "a")
            _open(manager, "t1", "b")
            with pytest.raises(ProtocolError, match="tenant .* session limit"):
                _open(manager, "t1", "c")
            _open(manager, "t2", "a")  # other tenants unaffected
        finally:
            manager.shutdown()

    def test_open_rejects_bad_payloads(self):
        manager = _manager()
        try:
            with pytest.raises(ProtocolError, match="schema"):
                manager.open("t", "s", {"fds": "A -> B"})
            with pytest.raises(ProtocolError, match="fds"):
                manager.open("t", "s", {"schema": ["A"]})
            with pytest.raises(ProtocolError):
                _open(manager, "t", "s", fds="A -> ")  # unparsable
            # Failed opens release their reserved slot.
            _open(manager, "t", "s")
        finally:
            manager.shutdown()

    def test_eviction_and_rehydration_byte_identical(self):
        rng = random.Random(11)
        table = random_small_table(rng, SCHEMA, 30, domain=2, weighted=True)
        fds = FDSet("A -> B; B -> C")
        manager = _manager(max_resident=1)
        try:
            _open(manager, "t", "a", fds="A -> B; B -> C")
            entry_a = manager.entry("t", "a")
            rows = [list(r) for r in table.rows().values()]
            weights = list(table.weights().values())
            manager.run_op(
                entry_a, "append",
                {"rows": rows, "weights": weights, "repair": False},
            )
            manager.run_op(entry_a, "repair", {})
            _open(manager, "t", "b")
            manager.evict_to_limit()
            stats = manager.stats()
            assert stats["resident"] == 1 and stats["frozen"] == 1
            assert entry_a.live is None and entry_a.frozen is not None
            # Per-tenant rollup mirrors the globals for the lone tenant.
            mine = stats["tenant_sessions"]["t"]
            assert mine["resident"] == 1 and mine["frozen"] == 1
            assert mine["bytes"] == stats["tenant_bytes"]["t"] > 0
            assert mine["evictions"] == 1 and mine["rehydrations"] == 0
            # Rehydration is transparent: the next op rebuilds the
            # session and its repair equals a from-scratch clean.
            fields = manager.run_op(entry_a, "repair", {})
            stats = manager.stats()
            assert stats["rehydrations"] == 1
            assert stats["tenant_sessions"]["t"]["rehydrations"] == 1
            assert stats["cache_evictions"] == manager.solutions.evictions
            fresh = Table(SCHEMA, entry_a.live.table.rows(),
                          entry_a.live.table.weights())
            assert fields["distance"] == clean(fresh, fds).distance
            _assert_identical(entry_a.live.last_result, clean(fresh, fds))
        finally:
            manager.shutdown()

    def test_eviction_skips_locked_sessions(self):
        manager = _manager(max_resident=0)
        try:
            _open(manager, "t", "a")
            entry = manager.entry("t", "a")

            async def check():
                async with entry.lock:
                    assert manager.evict_to_limit() == 0
                assert manager.evict_to_limit() == 1

            asyncio.run(check())
            assert entry.frozen is not None
        finally:
            manager.shutdown()

    def test_shutdown_is_idempotent(self):
        manager = _manager()
        _open(manager, "t", "a")
        manager.shutdown()
        manager.shutdown()
        with pytest.raises(ProtocolError):
            _open(manager, "t", "b")


# ---------------------------------------------------------------------------
# Session serialisation and the solver-free status bracket
# ---------------------------------------------------------------------------

class TestSessionState:
    def test_export_restore_byte_identical(self):
        rng = random.Random(5)
        table = random_small_table(rng, SCHEMA, 40, domain=2, weighted=True)
        fds = FDSet("A -> B; B -> C")
        session = RepairSession(table, fds)
        session.repair()
        session.append([("q", "q", "q"), ("q", "r", "r")], repair=False)
        blob = pickle.dumps(session.export_state())
        restored = RepairSession.restore(pickle.loads(blob))
        _assert_identical(restored.repair(), session.repair())
        # The id allocator survives: no clashes with pre-snapshot ids.
        restored.append([("z", "z", "z")], repair=False)
        assert len(restored) == len(session) + 1

    def test_restore_onto_shared_cache_serves_hits(self):
        table = _table([("a", "x", "p"), ("a", "y", "p")])
        fds = FDSet("A -> B")
        shared = SolutionCache()
        donor = RepairSession(table, fds, solutions=shared)
        donor.repair()
        state = RepairSession(table, fds).export_state()
        restored = RepairSession.restore(state, solutions=shared)
        restored.repair()
        # The restored session's solve was served by the donor's entry.
        assert restored.stats.cache_hits == 1
        assert restored.stats.cache_misses == 0

    def test_status_never_touches_a_solver(self, monkeypatch):
        import repro.exec as exec_mod

        table = _table(
            [("a", "x", "p"), ("a", "y", "p"), ("b", "z", "q"),
             ("b", "w", "q")]
        )
        session = RepairSession(table, FDSet("A -> B"))

        def boom(*_args, **_kwargs):  # pragma: no cover - must not run
            raise AssertionError("status touched a solver")

        monkeypatch.setattr(exec_mod, "_solve_s_kept", boom)
        status = session.status()
        assert status.conflicts == 2 and status.components == 2
        assert status.lower_bound == status.upper_bound == 2.0
        assert not status.consistent

    def test_status_bracket_tracks_deltas(self):
        session = RepairSession(_table([]), FDSet("A -> B"))
        assert session.status().consistent
        session.append([("a", "x", "p"), ("a", "y", "p")], repair=False)
        status = session.status()
        assert status.conflicts == 1
        assert status.lower_bound <= 1.0 <= status.upper_bound
        session.delete([1], repair=False)
        assert session.status().consistent
        # The bracket always contains the realised optimal distance.
        session.append(
            [("c", 1, 1), ("c", 2, 2), ("c", 3, 3)], repair=False
        )
        status = session.status()
        result = session.repair()
        assert status.lower_bound <= result.distance <= status.upper_bound


# ---------------------------------------------------------------------------
# The daemon: ≥ 8 concurrent sessions, byte-identical to isolated runs
# ---------------------------------------------------------------------------

def _tenant_workload(seed, batches=4, rows_per_batch=6):
    """Deterministic per-tenant delta script: mixed appends/deletes."""
    rng = random.Random(seed)
    script = []
    live = []
    next_id = 1
    for _ in range(batches):
        rows = [
            [rng.choice("ab"), rng.choice("xy"), rng.choice("pq")]
            for _ in range(rows_per_batch)
        ]
        ids = list(range(next_id, next_id + len(rows)))
        next_id += len(rows)
        live.extend(ids)
        script.append(("append", {"rows": rows, "ids": ids}))
        if len(live) > 8 and rng.random() < 0.7:
            victims = rng.sample(live, 3)
            for v in victims:
                live.remove(v)
            script.append(("delete", {"ids": victims}))
    script.append(("repair", {}))
    return script


def _isolated_results(fds_text, script):
    """Replay one tenant's script on a private session, no pool."""
    session = RepairSession(_table([]), FDSet(fds_text))
    outcomes = []
    for op, payload in script:
        outcomes.append(apply_session_op(session, op, dict(payload)))
    final = session.last_result
    return outcomes, table_to_csv(final.cleaned), final


@pytest.mark.parametrize("workers", [0, 2])
def test_daemon_sessions_byte_identical_to_isolated(workers):
    if workers and not _pool_available():
        pytest.skip("subprocess support unavailable")
    fds_text = "A -> B; B -> C"
    tenants = [f"tenant-{i}" for i in range(8)]
    scripts = {t: _tenant_workload(seed) for seed, t in enumerate(tenants)}
    expected = {
        t: _isolated_results(fds_text, scripts[t]) for t in tenants
    }

    manager = SessionManager(
        ServerConfig(workers=workers, executor_threads=8, max_resident=4)
    )
    server = RepairServer(manager)

    async def drive():
        port = await server.serve_tcp()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        lock = asyncio.Lock()
        waiters = {}

        async def dispatch():
            # Responses interleave across sessions; one reader task
            # routes each back to its caller by the echoed seq.
            while True:
                line = await reader.readline()
                if not line:
                    return
                reply = json.loads(line)
                waiter = waiters.pop(reply.get("seq"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(reply)

        dispatcher = asyncio.create_task(dispatch())

        async def rpc(obj):
            fut = asyncio.get_running_loop().create_future()
            waiters[obj["seq"]] = fut
            async with lock:
                writer.write((json.dumps(obj) + "\n").encode())
                await writer.drain()
            return await fut

        async def run_tenant(tenant):
            got = []
            await rpc({
                "op": "open", "tenant": tenant, "session": "s",
                "seq": f"{tenant}-open", "schema": list(SCHEMA),
                "fds": fds_text,
            })
            for i, (op, payload) in enumerate(scripts[tenant]):
                reply = await rpc({
                    "op": op, "tenant": tenant, "session": "s",
                    "seq": f"{tenant}-{i}", **payload,
                })
                assert reply["ok"], reply
                got.append(reply)
            return got

        # Interleave all tenants' scripts concurrently (the shared
        # connection serialises writes; the daemon interleaves work).
        results = await asyncio.gather(*(run_tenant(t) for t in tenants))
        stats = await rpc({"op": "stats", "seq": "stats"})
        await rpc({"op": "shutdown", "seq": "bye"})
        writer.close()
        dispatcher.cancel()
        await server.wait_closed()
        return dict(zip(tenants, results)), stats

    got, stats = asyncio.run(drive())
    for tenant in tenants:
        outcomes, _csv, final = expected[tenant]
        for reply, exp in zip(got[tenant], outcomes):
            for field in ("distance", "conflicts", "components", "applied"):
                if field in exp:
                    assert reply[field] == exp[field], (tenant, reply, exp)
        # The daemon's final repair distance equals the isolated run's.
        assert got[tenant][-1]["distance"] == final.distance
    # All eight rode one manager; identical content means shared-cache
    # traffic (every tenant's workload draws from the same tiny domain).
    assert stats["sessions"] == 8
    assert stats["cache_hits"] > 0
    # Per-tenant session rollup and recorder-backed op telemetry: every
    # tenant holds one resident session and shows up in the op counts;
    # the repair latency histogram saw at least one op per tenant.
    for tenant in tenants:
        mine = stats["tenant_sessions"][tenant]
        assert mine["resident"] + mine["frozen"] == 1
        assert stats["tenant_ops"][tenant] >= 1
    repair_hist = stats["op_latency_s"]["op.repair"]
    assert repair_hist["count"] >= len(tenants)
    assert repair_hist["total_s"] > 0
    if workers:
        assert stats["pool_alive"] and stats["pool_workers"] == workers


def test_daemon_error_responses_keep_connection_alive():
    manager = SessionManager(ServerConfig(workers=0, executor_threads=2))
    server = RepairServer(manager)

    async def drive():
        port = await server.serve_tcp()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def rpc(text):
            writer.write((text + "\n").encode())
            await writer.drain()
            return json.loads(await reader.readline())

        assert not (await rpc("garbage"))["ok"]
        assert not (await rpc('{"op": "mystery"}'))["ok"]
        reply = await rpc(
            '{"op": "repair", "tenant": "t", "session": "nope"}'
        )
        assert not reply["ok"] and "no open session" in reply["error"]
        # The connection (and daemon) survive all of the above.
        assert (await rpc('{"op": "ping"}'))["pong"]
        await rpc('{"op": "shutdown"}')
        writer.close()
        await server.wait_closed()

    asyncio.run(drive())


def test_daemon_pipelined_ops_queue_behind_open():
    """A client that pipelines ops without awaiting replies (the stdio
    transport's natural shape) must see them queue behind the in-flight
    ``open`` on the session lock — not race the construction and crash
    on a half-built entry.  Ops stranded behind a *failed* open get a
    clean 'is not open' error, and the connection survives."""
    manager = SessionManager(ServerConfig(workers=0, executor_threads=2))
    server = RepairServer(manager)

    async def drive():
        port = await server.serve_tcp()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        def send(obj):
            writer.write((json.dumps(obj) + "\n").encode())

        # Burst 1: open + append + status written before reading any
        # reply.  Replies may interleave; correlate by seq.
        send({"op": "open", "tenant": "t", "session": "s", "seq": 1,
              "schema": ["A", "B"], "fds": "A -> B"})
        send({"op": "append", "tenant": "t", "session": "s", "seq": 2,
              "rows": [["a", "x"], ["a", "y"], ["b", "z"]]})
        send({"op": "status", "tenant": "t", "session": "s", "seq": 3})
        await writer.drain()
        replies = {}
        for _ in range(3):
            reply = json.loads(await reader.readline())
            replies[reply["seq"]] = reply
        assert replies[1]["ok"] and replies[1]["opened"]
        assert replies[2]["ok"] and replies[2]["distance"] == 1.0
        assert replies[3]["ok"] and replies[3]["conflicts"] == 1

        # Burst 2: ops pipelined behind an open that fails admission-
        # -side construction (bad fds) — each gets a reply, the ops a
        # clean "is not open", and the daemon stays up.
        send({"op": "open", "tenant": "t", "session": "s2", "seq": 4,
              "schema": ["A", "B"], "fds": "not an fd"})
        send({"op": "repair", "tenant": "t", "session": "s2", "seq": 5})
        await writer.drain()
        replies = {}
        for _ in range(2):
            reply = json.loads(await reader.readline())
            replies[reply["seq"]] = reply
        assert not replies[4]["ok"]
        assert not replies[5]["ok"]
        assert (
            "is not open" in replies[5]["error"]
            or "no open session" in replies[5]["error"]
        )
        assert (await _rpc(reader, writer, {"op": "ping"}))["pong"]
        await _rpc(reader, writer, {"op": "shutdown"})
        writer.close()
        await server.wait_closed()

    asyncio.run(drive())


async def _rpc(reader, writer, obj):
    writer.write((json.dumps(obj) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


# ---------------------------------------------------------------------------
# Pool lifecycle regressions
# ---------------------------------------------------------------------------

def test_killed_worker_fails_fast_and_repair_survives():
    """A worker killed mid-stream must not stall ``solve`` for the full
    timeout: the collector reaps the corpses within its poll interval,
    the supervisor respawns them (or the serial fallback kicks in), and
    the session still produces a byte-identical repair — promptly."""
    if not _pool_available():
        pytest.skip("subprocess support unavailable")
    # Disjoint value spaces per group → several conflict components, so
    # the first repair has > 1 miss and actually spins the pool up.
    rows = []
    for g in range(6):
        rows += [
            (f"a{g}", f"x{g}", "p"),
            (f"a{g}", f"y{g}", "p"),
            (f"b{g}", f"y{g}", "q"),
        ]
    table = _table(rows)
    fds = FDSet("A -> B; B -> C")
    session = RepairSession(table, fds, parallel=2, pool_timeout=120.0)
    try:
        session.repair()  # warm the pool
        pool = session._pool
        if pool is None:
            pytest.skip("pool did not start")
        for proc in pool._procs:
            proc.terminate()
        for proc in pool._procs:
            proc.join(timeout=5.0)
        session.append([("z", 1, 1), ("z", 2, 2)], repair=False)
        start = time.monotonic()
        result = session.repair()
        elapsed = time.monotonic() - start
        # Fail-fast: nowhere near the 120 s get-timeout of old.
        assert elapsed < 20.0, f"dead-worker stall: {elapsed:.1f}s"
        fresh = Table(SCHEMA, session.table.rows(), session.table.weights())
        _assert_identical(result, clean(fresh, fds, parallel=2))
    finally:
        session.close()


def test_pool_solve_raises_promptly_when_workers_die_unsupervised():
    """``supervise=False`` keeps the PR-6 fail-fast contract: all
    workers dead → ``solve`` raises within the liveness sweep interval
    and the pool reports broken, so callers can drop to serial."""
    if not _pool_available():
        pytest.skip("subprocess support unavailable")
    fds = FDSet("A -> B")
    pool = PersistentWorkerPool(2, SCHEMA, fds, supervise=False)
    assert pool.start()
    try:
        rows = {i: ("a", str(i), "p") for i in range(1, 11)}
        weights = {i: 1.0 for i in rows}
        assert pool.broadcast(("reset", rows, weights))
        for proc in pool._procs:
            proc.terminate()
        for proc in pool._procs:
            proc.join(timeout=5.0)
        start = time.monotonic()
        with pytest.raises(RuntimeError):
            pool.solve([(tuple(rows), "exact")], timeout=120.0)
        assert time.monotonic() - start < 10.0
        assert not pool.alive
    finally:
        pool.close()


def test_pool_supervisor_heals_worker_death_mid_batch():
    """The acceptance path, driven through ``repro.faults``: a worker
    killed mid-batch no longer raises — the supervisor retries its
    in-flight solves, respawns the slot with the mirror replayed, and
    the batch result is byte-identical to a no-fault run."""
    if not _pool_available():
        pytest.skip("subprocess support unavailable")
    from repro.faults import FaultPlan, FaultRule

    fds = FDSet("A -> B")
    rows = {i: ("a" if i % 2 else "b", str(i), "p") for i in range(1, 13)}
    weights = {i: 1.0 for i in rows}
    tasks = [(tuple(rows), "exact")] * 4

    with PersistentWorkerPool(2, SCHEMA, fds) as baseline:
        if not baseline.alive:
            pytest.skip("pool did not start")
        assert baseline.broadcast(("reset", rows, weights))
        expected = [(kept, method) for kept, method, _secs
                    in baseline.solve(tasks, timeout=60.0)]

    plan = FaultPlan([FaultRule("worker.solve", "kill",
                                match={"worker": 0, "generation": 0})])
    pool = PersistentWorkerPool(2, SCHEMA, fds, faults=plan,
                                respawn_backoff_s=0.01)
    assert pool.start()
    try:
        assert pool.broadcast(("reset", rows, weights))
        got = [(kept, method) for kept, method, _secs
               in pool.solve(tasks, timeout=60.0)]
        assert got == expected
        deadline = time.monotonic() + 10.0
        while (pool.supervision_stats()["respawns"] < 1
               and time.monotonic() < deadline):
            time.sleep(0.05)
        counters = pool.supervision_stats()
        assert counters["worker_deaths"] == 1
        assert counters["retries"] >= 1
        assert counters["respawns"] == 1
        assert counters["degraded"] == 0
        assert pool.live_workers() == 2
        # The replacement's replayed mirror serves solves byte-identically.
        assert ([(kept, method) for kept, method, _secs
                 in pool.solve(tasks, timeout=60.0)] == expected)
    finally:
        pool.close()


def test_pool_shutdown_drains_and_repeated_close_is_nonblocking():
    """Queued solve work left behind by a failed batch must not wedge
    shutdown: ``_shutdown`` drains every queue and cancels feeder
    threads, so ``close()`` — called any number of times, including via
    ``__del__`` — returns promptly."""
    if not _pool_available():
        pytest.skip("subprocess support unavailable")
    fds = FDSet("A -> B")
    pool = PersistentWorkerPool(2, SCHEMA, fds)
    assert pool.start()
    rows = {i: ("a", str(i), "p") for i in range(1, 40)}
    weights = {i: 1.0 for i in rows}
    assert pool.broadcast(("reset", rows, weights))
    # Enqueue a pile of work and close without collecting any of it:
    # items are still queued, results may be mid-flight.
    ids = tuple(rows)
    for inq in pool._inqs:
        for _ in range(10):
            inq.put(("solve", 10_000, "", ids, "approx"))
    start = time.monotonic()
    pool.close()
    first = time.monotonic() - start
    assert first < 10.0, f"close blocked {first:.1f}s"
    for _ in range(3):
        start = time.monotonic()
        pool.close()
        assert time.monotonic() - start < 0.1
    assert not pool.alive
    # __del__ after close must be a no-op, not a hang or a traceback.
    pool.__del__()


def test_pool_namespaces_isolate_sessions():
    """Two sessions with different Δ share one pool; each namespace
    solves under its own FD set and mirrors its own deltas."""
    if not _pool_available():
        pytest.skip("subprocess support unavailable")
    pool = PersistentWorkerPool(1)
    assert pool.start()
    try:
        fds_a = FDSet("A -> B")
        fds_b = FDSet("B -> C")
        assert pool.open_session("one", SCHEMA, fds_a)
        assert pool.open_session("two", SCHEMA, fds_b)
        rows = {1: ("a", "x", "p"), 2: ("a", "y", "p")}
        weights = {1: 2.0, 2: 1.0}
        assert pool.broadcast(("reset", rows, weights), key="one")
        # Same rows violate A -> B but satisfy B -> C.
        assert pool.broadcast(("reset", rows, weights), key="two")
        [(kept_a, _, _)] = pool.solve([((1, 2), "exact")], key="one")
        assert kept_a == (1,)  # heavier tuple wins under A -> B
        [(kept_b, _, _)] = pool.solve([((1, 2), "exact")], key="two")
        assert kept_b == (1, 2)  # consistent under B -> C: keep both
        assert pool.drop_session("two")
        # Namespace "one" is unaffected by dropping "two".
        [(kept_a2, _, _)] = pool.solve([((1, 2), "exact")], key="one")
        assert kept_a2 == (1,)
    finally:
        pool.close()


# ---------------------------------------------------------------------------
# CLI: fdrepair stream survives malformed batches
# ---------------------------------------------------------------------------

MIXED_BATCHES = [
    '{"op": "append", "rows": [["a", "x", "p"], ["a", "y", "p"]]}',
    "this is not JSON",
    '{"op": "frobnicate"}',
    '{"op": "append", "rows": 5}',
    '{"op": "delete", "ids": [999]}',
    '{"op": "append", "rows": [["b", "z", "q"]]}',
    '{"op": "repair"}',
]


def test_cli_stream_survives_malformed_batches(tmp_path, capsys):
    from repro.cli import main as cli_main

    batches = tmp_path / "mix.jsonl"
    batches.write_text("\n".join(MIXED_BATCHES) + "\n", encoding="utf-8")
    out = tmp_path / "final.csv"
    code = cli_main([
        "stream", "A -> B", str(batches),
        "--schema", "A,B,C", "--out", str(out),
    ])
    captured = capsys.readouterr()
    # Rejected batches make the exit nonzero, but the stream survived:
    # later valid batches ran and the final table was written.
    assert code == 1
    assert "batch 2: bad JSON" in captured.err
    assert "batch 3: unknown op 'frobnicate'" in captured.err
    assert "batch 4" in captured.err
    assert "batch 5" in captured.err
    assert "4 batches rejected" in captured.err
    assert "batch 6: append" in captured.out
    assert "batch 7: repair" in captured.out
    text = out.read_text(encoding="utf-8")
    assert text.startswith("id,A,B,C,weight")
    assert "b,z,q" in text  # batch 6 made it in despite 4 rejections

    # A fully-valid stream still exits 0.
    batches.write_text(
        '{"op": "append", "rows": [["a", "x", "p"]]}\n', encoding="utf-8"
    )
    assert cli_main([
        "stream", "A -> B", str(batches), "--schema", "A,B,C",
    ]) == 0


def test_cli_stream_strict_restores_abort(tmp_path, capsys):
    from repro.cli import main as cli_main

    batches = tmp_path / "mix.jsonl"
    batches.write_text("\n".join(MIXED_BATCHES) + "\n", encoding="utf-8")
    out = tmp_path / "final.csv"
    code = cli_main([
        "stream", "A -> B", str(batches),
        "--schema", "A,B,C", "--strict", "--out", str(out),
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "batch 2: bad JSON" in captured.err
    # Strict mode aborts at the first bad batch: nothing later ran.
    assert "batch 6" not in captured.out
    assert not out.exists()


# ---------------------------------------------------------------------------
# Crash-safe state: the op journal, snapshots, and recovery
# ---------------------------------------------------------------------------

def _export_blobs(manager):
    """Canonical per-key serialisation of every session's exported
    state.  Per-key (not whole-dict) pickling is deliberate: whole-dict
    bytes vary with pickle's identity memoisation of interned strings,
    which is not a semantic difference."""
    out = {}
    for key in sorted(manager._entries):
        entry = manager._entries[key]
        state = manager._ensure_live(entry).export_state()
        out[key] = {
            # Sets iterate in insertion-history order, which is not
            # observable (the session only tests membership) — compare
            # them canonically.
            k: pickle.dumps(sorted(v, key=repr) if isinstance(v, set) else v)
            for k, v in state.items()
        }
    return out


def _crash_ops():
    return [
        ("append", {"rows": [["a", "x", "p"], ["a", "y", "p"],
                             ["b", "x", "q"]], "ids": [1, 2, 3]}),
        ("repair", {}),
        ("append", {"rows": [["b", "z", "q"]], "ids": [4],
                    "repair": False}),
        ("delete", {"ids": [2], "repair": False}),
        ("repair", {}),
    ]


def _drive(manager, tenants=("alpha", "beta")):
    for tenant in tenants:
        manager.open(
            tenant, "tbl", {"schema": list(SCHEMA), "fds": "A -> B"}
        )
        entry = manager.entry(tenant, "tbl")
        for op, payload in _crash_ops():
            manager.run_op(entry, op, dict(payload))


def _oracle_from_journal(state_dir):
    """The recovery contract, stated independently: a stateless manager
    replaying the journal records in acknowledged order."""
    import os

    from repro.state import JOURNAL_NAME, OpJournal

    records, _ = OpJournal.load(os.path.join(state_dir, JOURNAL_NAME))
    oracle = SessionManager(ServerConfig(workers=0))
    for record in records:
        op, tenant, name = record["op"], record["tenant"], record["session"]
        payload = record.get("payload") or {}
        if op == "open":
            oracle.open(tenant, name, payload)
        elif op == "close":
            oracle.close(tenant, name)
        else:
            oracle.run_op(oracle.entry(tenant, name), op, payload)
    return oracle


class TestCrashRecovery:
    def test_state_dir_restart_recovers_sessions_byte_identically(
        self, tmp_path
    ):
        """The acceptance path: hard-kill the daemon (journal handle
        simply abandoned, no shutdown), restart on the same state dir,
        and every tenant session is back byte-identically."""
        state = str(tmp_path / "state")
        m1 = SessionManager(ServerConfig(workers=0, state_dir=state))
        _drive(m1)
        expected = _export_blobs(m1)
        assert m1.stats()["journal"]["seq"] == 12  # 2 × (open + 5 ops)
        del m1  # crash: no shutdown, no final snapshot

        m2 = SessionManager(ServerConfig(workers=0, state_dir=state))
        stats = m2.stats()
        assert stats["recovered_sessions"] == 2
        assert stats["replayed_ops"] == 12
        assert _export_blobs(m2) == expected
        # Recovered sessions keep working (and keep journaling).
        entry = m2.entry("alpha", "tbl")
        reply = m2.run_op(entry, "repair", {})
        assert reply["distance"] > 0
        m2.shutdown()

    def test_shutdown_snapshot_makes_restart_replay_free(self, tmp_path):
        """Clean shutdown compacts; the next start recovers from the
        snapshot alone — zero ops replayed, sessions byte-identical,
        and the warm solution cache rides along."""
        state = str(tmp_path / "state")
        m1 = SessionManager(ServerConfig(workers=0, state_dir=state))
        _drive(m1)
        expected = _export_blobs(m1)
        pre_hits = m1.stats()["cache_hits"]
        m1.shutdown()

        m2 = SessionManager(ServerConfig(workers=0, state_dir=state))
        stats = m2.stats()
        assert stats["recovered_sessions"] == 2
        assert stats["replayed_ops"] == 0
        assert _export_blobs(m2) == expected
        # Cache persistence: a recovered daemon's first repair on known
        # content is a hit, not a re-solve.
        base_hits = m2.stats()["cache_hits"]
        entry = m2.entry("alpha", "tbl")
        m2.run_op(entry, "repair", {})
        assert m2.stats()["cache_hits"] > base_hits
        assert pre_hits >= 0  # both managers count hits independently
        m2.shutdown()

    def test_compaction_truncates_journal_and_bounds_replay(self, tmp_path):
        state = str(tmp_path / "state")
        m1 = SessionManager(
            ServerConfig(workers=0, state_dir=state, snapshot_every=4)
        )
        _drive(m1, tenants=("alpha",))
        assert m1.stats()["journal"]["since_snapshot"] >= 4
        m1.maybe_compact()
        stats = m1.stats()
        assert stats["snapshots"] == 1
        assert stats["journal"]["since_snapshot"] == 0
        # Post-snapshot ops land in the (now short) journal tail.
        entry = m1.entry("alpha", "tbl")
        m1.run_op(entry, "append",
                  {"rows": [["c", "c", "c"]], "ids": [99],
                   "repair": False})
        expected = _export_blobs(m1)
        del m1  # crash after the snapshot + one tail record

        m2 = SessionManager(ServerConfig(workers=0, state_dir=state))
        stats = m2.stats()
        assert stats["recovered_sessions"] == 1
        assert stats["replayed_ops"] == 1  # the tail, not the history
        assert _export_blobs(m2) == expected
        m2.shutdown()

    def test_compaction_refuses_while_a_session_is_mid_op(self, tmp_path):
        state = str(tmp_path / "state")
        manager = SessionManager(
            ServerConfig(workers=0, state_dir=state, snapshot_every=1)
        )
        _drive(manager, tenants=("alpha",))

        async def locked_compact():
            entry = manager.entry("alpha", "tbl")
            async with entry.lock:
                manager.maybe_compact()

        asyncio.run(locked_compact())
        assert manager.stats()["snapshots"] == 0  # refused: op in flight
        manager.maybe_compact()
        assert manager.stats()["snapshots"] == 1
        manager.shutdown()

    @pytest.mark.parametrize(
        "site", ["journal.append.before", "journal.append.after"]
    )
    def test_journal_crash_sites_recover_exactly_the_journaled_prefix(
        self, site, tmp_path
    ):
        """Kill the daemon process *at the journal write* — just before
        (op executed, never logged) and just after (logged, never
        acknowledged) — via ``repro.faults``, then recover.  The
        recovered state must equal a stateless replay of exactly the
        records on disk: acknowledged ops are always covered, the
        crashed-out op is covered iff its record reached the log."""
        import json as _json
        import os
        import subprocess
        import sys

        from repro.faults import FAULTS_ENV, KILL_EXIT_CODE
        from repro.state import JOURNAL_NAME, OpJournal

        state = str(tmp_path / "state")
        child = (
            "import sys\n"
            "from repro.server import SessionManager, ServerConfig\n"
            "m = SessionManager(ServerConfig(workers=0, state_dir=sys.argv[1]))\n"
            "m.open('t', 's', {'schema': ['A', 'B', 'C'], 'fds': 'A -> B'})\n"
            "print('ack open', flush=True)\n"
            "ops = [\n"
            "    ('append', {'rows': [['a', 'x', 'p'], ['a', 'y', 'p']],\n"
            "                'ids': [1, 2]}),\n"
            "    ('append', {'rows': [['b', 'x', 'q']], 'ids': [3],\n"
            "                'repair': False}),\n"
            "    ('repair', {}),\n"
            "    ('delete', {'ids': [1], 'repair': False}),\n"
            "]\n"
            "e = m.entry('t', 's')\n"
            "for i, (op, payload) in enumerate(ops):\n"
            "    m.run_op(e, op, payload)\n"
            "    print(f'ack {i}', flush=True)\n"
            "print('ack done', flush=True)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath("src")] + sys.path
        )
        # Journal appends: open=1, then one per op; kill at the 4th
        # (the 'repair' record).
        env[FAULTS_ENV] = _json.dumps(
            [{"site": site, "action": "kill", "at": 4}]
        )
        proc = subprocess.run(
            [sys.executable, "-c", child, state],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr
        acked = [l for l in proc.stdout.splitlines() if l.startswith("ack")]
        assert acked == ["ack open", "ack 0", "ack 1"]  # repair never acked

        records, _ = OpJournal.load(os.path.join(state, JOURNAL_NAME))
        journaled = 4 if site.endswith("after") else 3
        assert len(records) == journaled
        # Acknowledged ⇒ journaled (the write precedes the ack).
        assert len(records) >= len(acked)

        oracle = _oracle_from_journal(state)
        recovered = SessionManager(ServerConfig(workers=0, state_dir=state))
        assert recovered.stats()["replayed_ops"] == journaled
        assert _export_blobs(recovered) == _export_blobs(oracle)
        recovered.shutdown()
        oracle.shutdown()


def test_graceful_drain_finishes_inflight_ops_before_closing(tmp_path):
    """``request_shutdown`` (the SIGTERM/SIGINT handler target) drains:
    requests already in flight complete and their responses ship, the
    final snapshot is taken, and a restarted manager sees everything."""
    state = str(tmp_path / "state")
    manager = SessionManager(ServerConfig(workers=0, state_dir=state))
    server = RepairServer(manager)

    async def drive():
        port = await server.serve_tcp()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def send(obj):
            writer.write((json.dumps(obj) + "\n").encode())
            await writer.drain()

        await send({"op": "open", "tenant": "t", "session": "s",
                    "seq": "open", "schema": list(SCHEMA),
                    "fds": "A -> B"})
        replies = [json.loads(await reader.readline())]
        # A conflicted append with repair=True: accepted, then drain is
        # requested while it executes.  ``manager.ops`` ticks when the
        # op *starts* on the executor, so waiting on it pins "in
        # flight" without racing the server's read loop.
        await send({"op": "append", "tenant": "t", "session": "s",
                    "seq": "a1",
                    "rows": [["a", "x", "p"], ["a", "y", "p"]],
                    "ids": [1, 2]})
        deadline = time.monotonic() + 10.0
        while manager.ops < 1 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        assert manager.ops >= 1
        server.request_shutdown()
        closer = asyncio.create_task(server.wait_closed())
        while True:
            line = await reader.readline()
            if not line:
                break
            replies.append(json.loads(line))
        await closer
        writer.close()
        return replies

    replies = asyncio.run(drive())
    by_seq = {r["seq"]: r for r in replies}
    # The in-flight append completed and its response shipped before
    # the connection closed.
    assert set(by_seq) == {"open", "a1"}
    assert all(r["ok"] for r in replies)
    assert by_seq["a1"]["distance"] == 1.0

    # The drain flushed a final snapshot: restart is replay-free and
    # byte-identical (the repair the client saw acknowledged included).
    m2 = SessionManager(ServerConfig(workers=0, state_dir=state))
    stats = m2.stats()
    assert stats["recovered_sessions"] == 1
    assert stats["replayed_ops"] == 0
    entry = m2.entry("t", "s")
    reply = m2.run_op(entry, "status", {})
    assert reply["tuples"] == 2
    m2.shutdown()
