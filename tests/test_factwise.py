"""Tests for the fact-wise reductions (Lemmas A.14–A.18).

Each reduction Π must be (a) injective, (b) consistency-preserving on
tuple pairs, and (c) a *strict* reduction for optimal S-repairs — the
optimal cost is preserved through Π (Lemma 3.7).  We verify all three on
the canonical stuck FD set of each class (Example 3.8) plus the Table 1
sets.
"""

import itertools
import random

import pytest

from repro.core.dichotomy import classify
from repro.core.exact import exact_s_repair
from repro.core.fd import FDSet
from repro.core.table import Table
from repro.core.violations import satisfies
from repro.reductions.factwise import (
    DOT,
    erasure_reduction,
    reduction_for_witness,
)

from repro.testing import EXAMPLE_38

STUCK_SETS = list(EXAMPLE_38.values()) + [
    FDSet("A -> B; B -> C"),
    FDSet("A -> C; B -> C"),
    FDSet("A B -> C; C -> B"),
    FDSet("A -> B; C -> D; E -> F"),
    FDSet("A B -> C D; C -> A"),
]


def witness_reduction(fds: FDSet):
    result = classify(fds)
    assert not result.tractable, f"{fds} unexpectedly tractable"
    schema = tuple(sorted(result.residual.attributes))
    return reduction_for_witness(schema, result.residual, result.witness)


@pytest.mark.parametrize("fds", STUCK_SETS, ids=str)
class TestPerClassProperties:
    def test_injective(self, fds, rng):
        red = witness_reduction(fds)
        seen = {}
        for t in itertools.product(range(3), repeat=3):
            image = red.map_tuple(t)
            assert image not in seen, (t, seen[image])
            seen[image] = t

    def test_preserves_pair_consistency(self, fds, rng):
        red = witness_reduction(fds)
        domain = range(3)
        for t1 in itertools.product(domain, repeat=3):
            for t2 in itertools.product(domain, repeat=3):
                src = Table(("A", "B", "C"), {1: t1, 2: t2})
                tgt = Table(
                    red.target_schema,
                    {1: red.map_tuple(t1), 2: red.map_tuple(t2)},
                )
                assert satisfies(src, red.source_fds) == satisfies(
                    tgt, red.target_fds
                ), (t1, t2)

    def test_strict_reduction_preserves_optimal_cost(self, fds, rng):
        red = witness_reduction(fds)
        for _ in range(5):
            rows = [
                tuple(rng.randrange(2) for _ in range(3)) for _ in range(7)
            ]
            weights = [float(rng.choice((1, 2))) for _ in range(7)]
            src = Table.from_rows(("A", "B", "C"), rows, weights)
            tgt = red.map_table(src)
            src_cost = src.dist_sub(exact_s_repair(src, red.source_fds))
            tgt_cost = tgt.dist_sub(exact_s_repair(tgt, red.target_fds))
            assert src_cost == pytest.approx(tgt_cost)

    def test_pull_back_round_trip(self, fds, rng):
        red = witness_reduction(fds)
        rows = [tuple(rng.randrange(2) for _ in range(3)) for _ in range(6)]
        src = Table.from_rows(("A", "B", "C"), rows)
        tgt = red.map_table(src)
        repaired = exact_s_repair(tgt, red.target_fds)
        pulled = red.pull_back(src, repaired)
        assert satisfies(pulled, red.source_fds)
        assert src.dist_sub(pulled) == pytest.approx(tgt.dist_sub(repaired))


class TestMapTableValidation:
    def test_schema_mismatch_rejected(self):
        red = witness_reduction(FDSet("A -> B; B -> C"))
        with pytest.raises(ValueError):
            red.map_table(Table(("X", "Y"), {}))

    def test_arity_mismatch_rejected(self):
        red = witness_reduction(FDSet("A -> B; B -> C"))
        with pytest.raises(ValueError):
            red.map_tuple((1, 2))

    def test_weights_preserved(self, rng):
        red = witness_reduction(FDSet("A -> B; B -> C"))
        src = Table.from_rows(("A", "B", "C"), [(1, 2, 3)], weights=[7.0])
        tgt = red.map_table(src)
        assert tgt.weight(1) == 7.0


class TestErasure:
    def test_erased_attributes_become_dot(self):
        fds = FDSet("K A -> B")
        red = erasure_reduction(("K", "A", "B"), fds, frozenset("K"))
        assert red.map_tuple(("k", "a", "b")) == (DOT, "a", "b")
        assert red.source_fds == FDSet("A -> B")

    def test_preserves_pair_consistency(self, rng):
        fds = FDSet("K A -> B; K -> C")
        red = erasure_reduction(tuple("KABC"), fds, frozenset("K"))
        for _ in range(200):
            t1 = tuple(rng.randrange(2) for _ in range(4))
            t2 = tuple(rng.randrange(2) for _ in range(4))
            src = Table(tuple("KABC"), {1: t1, 2: t2})
            tgt = Table(
                tuple("KABC"), {1: red.map_tuple(t1), 2: red.map_tuple(t2)}
            )
            assert satisfies(src, red.source_fds) == satisfies(
                tgt, red.target_fds
            ), (t1, t2)

    def test_injective(self, rng):
        red = erasure_reduction(("K", "A"), FDSet("K -> A"), frozenset("K"))
        # Injectivity holds on tuples that agree on the erased attributes
        # (that is how Lemma A.18 applies it: inputs are tables over Δ−X,
        # where the X-columns are irrelevant); here we fix K and vary A.
        images = {red.map_tuple(("⊥", a)) for a in range(10)}
        assert len(images) == 10

    def test_lifts_hardness_cost(self, rng):
        """Composition of Lemma A.18 with a hard core: cost preserved."""
        fds = FDSet("K A -> B; K B -> C")  # common lhs K, residual hard
        red = erasure_reduction(tuple("KABC"), fds, frozenset("K"))
        for _ in range(5):
            rows = [
                ("fix",) + tuple(rng.randrange(2) for _ in range(3))
                for _ in range(6)
            ]
            # Source tables live over Δ−K = {A→B, B→C}; the K column is
            # constant so it does not affect Δ−K consistency.
            src = Table.from_rows(tuple("KABC"), rows)
            tgt = red.map_table(src)
            src_cost = src.dist_sub(exact_s_repair(src, red.source_fds))
            tgt_cost = tgt.dist_sub(exact_s_repair(tgt, red.target_fds))
            assert src_cost == pytest.approx(tgt_cost)
