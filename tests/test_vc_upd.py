"""Tests for the Theorem 4.10 reduction (vertex cover → U-repair)."""

import pytest

from repro.core.exact import exact_u_repair
from repro.core.violations import satisfies
from repro.datagen.graphs import bounded_degree_graph
from repro.graphs.graph import Graph
from repro.graphs.vertex_cover import exact_min_weight_vertex_cover
from repro.reductions.vc_upd import (
    DELTA_A_IFF_B_TO_C,
    cover_to_update,
    expected_optimal_cost,
    graph_to_table,
    update_to_cover,
)


def triangle_graph() -> Graph:
    return Graph.from_edges([("u", "v"), ("v", "w"), ("u", "w")])


def path_graph() -> Graph:
    return Graph.from_edges([("u", "v"), ("v", "w")])


class TestConstruction:
    def test_table_layout(self):
        g = path_graph()
        table = graph_to_table(g)
        # 2 tuples per edge + 1 per vertex: 2·2 + 3 = 7.
        assert len(table) == 7
        assert table[("edge", "u", "v")] == ("u", "v", 0)
        assert table[("edge", "v", "u")] == ("v", "u", 0)
        assert table[("vertex", "v")] == ("v", "v", 1)
        assert table.is_unweighted and table.is_duplicate_free

    def test_table_is_inconsistent(self):
        table = graph_to_table(path_graph())
        assert not satisfies(table, DELTA_A_IFF_B_TO_C)

    def test_edgeless_graph_is_consistent(self):
        g = Graph()
        g.add_node("u")
        table = graph_to_table(g)
        assert satisfies(table, DELTA_A_IFF_B_TO_C)


class TestCoverToUpdate:
    def test_cost_identity_on_path(self):
        g = path_graph()
        table = graph_to_table(g)
        update = cover_to_update(table, g, {"v"})
        assert satisfies(update, DELTA_A_IFF_B_TO_C)
        assert table.dist_upd(update) == expected_optimal_cost(g, 1) == 5

    def test_cost_identity_on_triangle(self):
        g = triangle_graph()
        table = graph_to_table(g)
        update = cover_to_update(table, g, {"u", "v"})
        assert satisfies(update, DELTA_A_IFF_B_TO_C)
        assert table.dist_upd(update) == 2 * 3 + 2

    def test_rejects_non_cover(self):
        g = path_graph()
        table = graph_to_table(g)
        with pytest.raises(ValueError):
            cover_to_update(table, g, {"u"})

    @pytest.mark.parametrize("seed", range(6))
    def test_cost_identity_random(self, seed):
        g = bounded_degree_graph(7, 3, 1.1, seed=seed)
        table = graph_to_table(g)
        cover = set(exact_min_weight_vertex_cover(g))
        update = cover_to_update(table, g, cover)
        assert table.dist_upd(update) == expected_optimal_cost(g, len(cover))


class TestUpdateToCover:
    def test_extracts_cover(self):
        g = path_graph()
        table = graph_to_table(g)
        update = cover_to_update(table, g, {"v"})
        cover = update_to_cover(table, g, update)
        assert g.is_vertex_cover(cover)
        assert cover == {"v"}

    def test_rejects_inconsistent_update(self):
        g = path_graph()
        table = graph_to_table(g)
        with pytest.raises(ValueError):
            update_to_cover(table, g, table)


class TestTheorem410Identity:
    """The headline identity: optimal U-repair distance = 2|E| + τ(G)."""

    def test_exact_on_single_edge(self):
        g = Graph.from_edges([("u", "v")])
        table = graph_to_table(g)
        optimum = exact_u_repair(table, DELTA_A_IFF_B_TO_C)
        assert table.dist_upd(optimum) == expected_optimal_cost(g, 1) == 3

    def test_exact_on_path(self):
        g = path_graph()
        table = graph_to_table(g)
        tau = len(exact_min_weight_vertex_cover(g))
        optimum = exact_u_repair(
            table, DELTA_A_IFF_B_TO_C, upper_bound=expected_optimal_cost(g, tau) + 0.5
        )
        assert table.dist_upd(optimum) == expected_optimal_cost(g, tau) == 5

    def test_never_cheaper_than_construction(self):
        """The cover construction upper-bounds the optimum: on small
        graphs the exhaustive search must match it exactly."""
        g = Graph.from_edges([("u", "v"), ("u", "w")])  # star, τ = 1
        table = graph_to_table(g)
        tau = len(exact_min_weight_vertex_cover(g))
        expected = expected_optimal_cost(g, tau)
        optimum = exact_u_repair(table, DELTA_A_IFF_B_TO_C, upper_bound=expected + 0.5)
        assert table.dist_upd(optimum) == expected == 5
