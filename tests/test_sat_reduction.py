"""Tests for the MAX-non-mixed-SAT reduction (Lemma A.13)."""

import pytest

from repro.core.exact import exact_s_repair
from repro.core.violations import satisfies
from repro.datagen.cnf import random_non_mixed_formula
from repro.reductions.sat import (
    SAT_FDS,
    Clause,
    NonMixedFormula,
    assignment_to_subset,
    brute_force_max_sat,
    formula_to_table,
    subset_to_assignment,
)


def tiny_formula() -> NonMixedFormula:
    return NonMixedFormula(
        (
            Clause(True, frozenset({"x1", "x2"})),
            Clause(False, frozenset({"x1"})),
            Clause(True, frozenset({"x2", "x3"})),
        )
    )


class TestFormula:
    def test_clause_satisfaction(self):
        pos = Clause(True, frozenset({"x"}))
        neg = Clause(False, frozenset({"x"}))
        assert pos.satisfied_by({"x": True})
        assert not pos.satisfied_by({"x": False})
        assert neg.satisfied_by({"x": False})
        assert not neg.satisfied_by({"x": True})

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            Clause(True, frozenset())

    def test_satisfied_count(self):
        f = tiny_formula()
        assert f.satisfied_count({"x1": True, "x2": True, "x3": False}) == 2
        assert f.satisfied_count({"x1": False, "x2": True, "x3": False}) == 3

    def test_brute_force_optimum(self):
        _tau, best = brute_force_max_sat(tiny_formula())
        assert best == 3

    def test_brute_force_guard(self):
        f = NonMixedFormula(
            tuple(Clause(True, frozenset({f"x{i}"})) for i in range(25))
        )
        with pytest.raises(ValueError):
            brute_force_max_sat(f, max_vars=20)

    def test_variables(self):
        assert tiny_formula().variables == frozenset({"x1", "x2", "x3"})

    def test_str_renders(self):
        assert "∨" in str(tiny_formula().clauses[0])
        assert "∧" in str(tiny_formula())


class TestConstruction:
    def test_table_layout(self):
        table = formula_to_table(tiny_formula())
        # One tuple per (clause, literal): 2 + 1 + 2 = 5.
        assert len(table) == 5
        assert table[(0, "x1")] == ("c0", 1, "x1")
        assert table[(1, "x1")] == ("c1", 0, "x1")
        assert table.is_unweighted and table.is_duplicate_free

    def test_assignment_to_subset_is_consistent(self):
        f = tiny_formula()
        table = formula_to_table(f)
        tau = {"x1": False, "x2": True, "x3": False}
        subset = assignment_to_subset(f, table, tau)
        assert satisfies(subset, SAT_FDS)
        assert len(subset) == f.satisfied_count(tau)

    def test_subset_to_assignment_rejects_mixed_signs(self):
        f = tiny_formula()
        table = formula_to_table(f)
        bad = table.subset([(0, "x1"), (1, "x1")])  # x1 with both signs
        with pytest.raises(ValueError):
            subset_to_assignment(bad)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_optimum_equality(self, seed):
        """Lemma A.13: max satisfiable clauses == max consistent-subset
        size (and the complement equality: min unsatisfied == min
        deletions)."""
        f = random_non_mixed_formula(4, 7, 2, seed=seed)
        table = formula_to_table(f)
        _tau, best_sat = brute_force_max_sat(f)
        repair = exact_s_repair(table, SAT_FDS)
        assert len(repair) == best_sat

    @pytest.mark.parametrize("seed", range(5))
    def test_extracted_assignment_achieves_subset_size(self, seed):
        f = random_non_mixed_formula(5, 8, 3, seed=seed)
        table = formula_to_table(f)
        repair = exact_s_repair(table, SAT_FDS)
        tau = subset_to_assignment(repair)
        # Every kept tuple witnesses one distinct satisfied clause.
        assert f.satisfied_count(tau) >= len(repair)

    def test_unsatisfied_equals_deleted(self):
        f = tiny_formula()
        table = formula_to_table(f)
        repair = exact_s_repair(table, SAT_FDS)
        deleted = len(table) - len(repair)
        _tau, best = brute_force_max_sat(f)
        # Strictness of the complement reduction: deletions count the
        # non-witnessing tuples; with one witness per satisfied clause,
        # deleted = |tuples| − satisfied.
        assert deleted == len(table) - best
