"""Property-based tests for the pipeline bracket (hypothesis).

The assessment bracket must contain the true optimal S-repair distance
for *every* FD set and table, with the upper bound within a factor 2 —
this combines the admissibility of the matching bound with
Proposition 3.3 and is checked end-to-end here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_s_repair
from repro.core.fd import FD, FDSet
from repro.core.table import Table
from repro.core.violations import satisfies
from repro.pipeline import assess, clean

ATTRS = list("ABC")

nonempty = st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2).map(frozenset)
maybe_empty = st.sets(st.sampled_from(ATTRS), max_size=2).map(frozenset)
fd_strategy = st.builds(FD, maybe_empty, nonempty)
fdset_strategy = st.lists(fd_strategy, min_size=1, max_size=3).map(FDSet)


def tables(max_size=8):
    value = st.integers(min_value=0, max_value=2)
    row = st.tuples(value, value, value)
    weight = st.sampled_from((1.0, 2.0, 3.0))
    return st.lists(st.tuples(row, weight), max_size=max_size).map(
        lambda pairs: Table.from_rows(
            ("A", "B", "C"), [p[0] for p in pairs], [p[1] for p in pairs]
        )
    )


@settings(max_examples=50, deadline=None)
@given(fdset_strategy, tables())
def test_bracket_contains_optimum(fds, table):
    report = assess(table, fds)
    optimum = table.dist_sub(exact_s_repair(table, fds))
    assert report.lower_bound <= optimum + 1e-9
    assert optimum <= report.upper_bound + 1e-9
    assert report.upper_bound <= 2 * optimum + 1e-9
    if report.bracket_is_tight:
        assert abs(optimum - report.lower_bound) < 1e-9


@settings(max_examples=30, deadline=None)
@given(fdset_strategy, tables(max_size=6))
def test_clean_outputs_are_consistent(fds, table):
    for strategy in ("deletions", "updates"):
        result = clean(table, fds, strategy=strategy)
        assert satisfies(result.cleaned, fds)
        if strategy == "deletions":
            assert result.cleaned.is_subset_of(table)
        else:
            assert result.cleaned.is_update_of(table)


@settings(max_examples=30, deadline=None)
@given(fdset_strategy, tables())
def test_decomposed_bracket_nested_in_global(fds, table):
    """The per-component bracket refines the global one: never looser,
    and still a valid bracket around the optimum."""
    decomposed = assess(table, fds)
    global_report = assess(table, fds, decomposed=False)
    assert decomposed.lower_bound >= global_report.lower_bound - 1e-9
    assert decomposed.upper_bound <= global_report.upper_bound + 1e-9
    optimum = table.dist_sub(exact_s_repair(table, fds))
    assert decomposed.lower_bound <= optimum + 1e-9 <= decomposed.upper_bound + 2e-9
    # Small tables decompose into small components, all solved exactly.
    if not decomposed.consistent and len(table) <= 8:
        assert decomposed.bracket_is_tight
        assert abs(decomposed.lower_bound - optimum) < 1e-9


@settings(max_examples=20, deadline=None)
@given(fdset_strategy, tables(max_size=6))
def test_decomposed_clean_matches_global_distance(fds, table):
    """On instances small enough that the portfolio is all-exact, the
    decomposed pipeline reproduces the global optimal distance for both
    strategies."""
    for strategy in ("deletions", "updates"):
        dec = clean(table, fds, strategy=strategy)
        glob = clean(table, fds, strategy=strategy, decomposed=False)
        assert satisfies(dec.cleaned, fds)
        assert abs(dec.distance - glob.distance) < 1e-9


@settings(max_examples=30, deadline=None)
@given(fdset_strategy, tables())
def test_consistency_iff_zero_bracket(fds, table):
    report = assess(table, fds)
    assert report.consistent == satisfies(table, fds)
    if report.consistent:
        assert report.lower_bound == report.upper_bound == 0.0
    else:
        assert report.lower_bound > 0.0
