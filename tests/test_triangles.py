"""Tests for the triangle-packing reduction (Lemma A.11, Figure 5)."""

import pytest

from repro.core.exact import exact_s_repair
from repro.core.violations import satisfies
from repro.datagen.graphs import random_tripartite_graph
from repro.reductions.triangles import (
    TRIANGLE_FDS,
    TripartiteGraph,
    _edges_of,
    amini_gadget,
    max_edge_disjoint_triangles,
    packing_to_subset,
    subset_to_packing,
    triangles_to_table,
)


class TestTripartiteGraph:
    def test_parts_must_be_disjoint(self):
        with pytest.raises(ValueError):
            TripartiteGraph(("x",), ("x",), ("z",))

    def test_intra_part_edge_rejected(self):
        g = TripartiteGraph(("a1", "a2"), ("b1",), ("c1",))
        with pytest.raises(ValueError):
            g.add_edge("a1", "a2")

    def test_triangle_enumeration(self):
        g = TripartiteGraph(("a",), ("b",), ("c",))
        assert g.triangles() == []
        g.add_triangle("a", "b", "c")
        assert g.triangles() == [("a", "b", "c")]

    def test_max_degree(self):
        g = TripartiteGraph(("a",), ("b", "b2"), ("c",))
        g.add_edge("a", "b")
        g.add_edge("a", "b2")
        assert g.max_degree() == 2


class TestPackingSolver:
    def test_disjoint_triangles_all_packed(self):
        tris = [("a1", "b1", "c1"), ("a2", "b2", "c2")]
        assert len(max_edge_disjoint_triangles(tris)) == 2

    def test_edge_sharing_triangles_conflict(self):
        tris = [("a1", "b1", "c1"), ("a1", "b1", "c2")]  # share edge a1-b1
        assert len(max_edge_disjoint_triangles(tris)) == 1

    def test_vertex_sharing_is_allowed(self):
        tris = [("a1", "b1", "c1"), ("a1", "b2", "c2")]  # share only a1
        assert len(max_edge_disjoint_triangles(tris)) == 2

    def test_limit_guard(self):
        tris = [(f"a{i}", f"b{i}", f"c{i}") for i in range(50)]
        with pytest.raises(ValueError):
            max_edge_disjoint_triangles(tris, limit=40)


class TestLemmaA11:
    def test_table_construction(self):
        tris = [("a1", "b1", "c1"), ("a1", "b1", "c2")]
        table = triangles_to_table(tris)
        assert len(table) == 2
        assert table.is_unweighted and table.is_duplicate_free

    def test_duplicate_triangles_rejected(self):
        with pytest.raises(ValueError):
            triangles_to_table([("a", "b", "c"), ("a", "b", "c")])

    def test_consistency_iff_edge_disjoint(self):
        """The heart of Lemma A.11: a subset is consistent under
        ``Δ_{AB↔AC↔BC}`` iff its triangles are pairwise edge-disjoint."""
        share_ab = [("a", "b", "c1"), ("a", "b", "c2")]
        share_ac = [("a", "b1", "c"), ("a", "b2", "c")]
        share_bc = [("a1", "b", "c"), ("a2", "b", "c")]
        for tris in (share_ab, share_ac, share_bc):
            table = triangles_to_table(tris)
            assert not satisfies(table, TRIANGLE_FDS)
        disjoint = triangles_to_table([("a", "b", "c"), ("a", "b2", "c2")])
        assert satisfies(disjoint, TRIANGLE_FDS)

    @pytest.mark.parametrize("seed", range(6))
    def test_round_trip_optimum(self, seed):
        g = random_tripartite_graph(4, 0.5, seed=seed)
        tris = g.triangles()[:22]
        if not tris:
            pytest.skip("no triangles in this draw")
        table = triangles_to_table(tris)
        packing = max_edge_disjoint_triangles(tris)
        repair = exact_s_repair(table, TRIANGLE_FDS)
        assert len(repair) == len(packing)
        extracted = subset_to_packing(repair)
        assert len(extracted) == len(packing)

    def test_packing_to_subset(self):
        tris = [("a", "b", "c"), ("a", "b2", "c2")]
        table = triangles_to_table(tris)
        subset = packing_to_subset(table, tris)
        assert len(subset) == 2

    def test_subset_to_packing_rejects_sharing(self):
        tris = [("a", "b", "c1"), ("a", "b", "c2")]
        table = triangles_to_table(tris)
        with pytest.raises(ValueError):
            subset_to_packing(table)  # both tuples share edge (a, b)


class TestAminiGadget:
    def test_thirteen_triangles(self):
        gadget = amini_gadget(("x0", "x1"), ("y0", "y1"), ("z0", "z1"))
        assert len(gadget) == 13

    def test_consecutive_share_exactly_one_edge(self):
        gadget = amini_gadget(("x0", "x1"), ("y0", "y1"), ("z0", "z1"))
        for t1, t2 in zip(gadget, gadget[1:]):
            assert len(_edges_of(t1) & _edges_of(t2)) == 1

    def test_even_triangles_edge_disjoint(self):
        """The 6/13 property the hardness amplification relies on."""
        gadget = amini_gadget(("x0", "x1"), ("y0", "y1"), ("z0", "z1"))
        evens = gadget[1::2]
        assert len(evens) == 6
        used = set()
        for tri in evens:
            edges = _edges_of(tri)
            assert not (edges & used)
            used |= edges

    def test_endpoint_embedding(self):
        gadget = amini_gadget(("x0", "x1"), ("y0", "y1"), ("z0", "z1"))
        assert {"x0", "x1"} <= set(gadget[0])
        assert {"y0", "y1"} <= set(gadget[6])
        assert {"z0", "z1"} <= set(gadget[12])

    def test_odd_selection_covers_endpoints(self):
        """Selecting the 7 odd triangles is also edge-disjoint and covers
        the x/y/z pairs (the 'set selected' branch of the reduction)."""
        gadget = amini_gadget(("x0", "x1"), ("y0", "y1"), ("z0", "z1"))
        odds = gadget[0::2]
        assert len(odds) == 7
        used = set()
        for tri in odds:
            edges = _edges_of(tri)
            assert not (edges & used)
            used |= edges

    def test_optimal_packing_size(self):
        """Max packing of the chain alternates triangles: exactly 7."""
        gadget = amini_gadget(("x0", "x1"), ("y0", "y1"), ("z0", "z1"))
        assert len(max_edge_disjoint_triangles(list(gadget))) == 7
        # ≥ 6/13 of all triangles, as required.
        assert 7 / 13 >= 6 / 13
