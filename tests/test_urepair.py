"""Tests for the U-repair dispatcher (Section 4)."""

import pytest

from repro.core.exact import exact_u_repair
from repro.core.fd import FDSet
from repro.core.srepair import opt_s_repair
from repro.core.table import Table
from repro.core.urepair import (
    UnknownURepairComplexity,
    optimal_u_repair,
    u_repair,
)
from repro.core.violations import satisfies

from repro.testing import random_small_table


class TestTractableCases:
    def test_single_fd(self, rng):
        """Example after Cor 4.6: a single FD is tractable for U-repairs."""
        fds = FDSet("A -> B")
        for _ in range(10):
            table = random_small_table(rng, ("A", "B"), rng.randrange(1, 6), domain=2)
            result = u_repair(table, fds)
            assert result.optimal
            assert satisfies(result.update, fds)
            opt = table.dist_upd(exact_u_repair(table, fds))
            assert result.distance == pytest.approx(opt)

    def test_running_example(self, office, office_delta):
        """Figure 1: the optimal U-repair distance is 2 (U1)."""
        result = u_repair(office, office_delta)
        assert result.optimal
        assert result.distance == 2.0
        assert satisfies(result.update, office_delta)

    def test_common_lhs_distance_equals_s_repair(self, rng):
        """Corollary 4.6: with a common lhs, dist_upd(U*) = dist_sub(S*)."""
        fds = FDSet("A -> B; A C -> D")
        for _ in range(8):
            table = random_small_table(rng, ("A", "B", "C", "D"), 7, domain=2, weighted=True)
            s_star = opt_s_repair(fds, table)
            result = u_repair(table, fds)
            assert result.optimal
            assert result.distance == pytest.approx(table.dist_sub(s_star))

    def test_chain_fd_set(self, rng):
        """Corollary 4.8: chain FD sets are tractable for U-repairs."""
        fds = FDSet("A -> B; A B -> C")
        assert fds.is_chain
        for _ in range(8):
            table = random_small_table(rng, ("A", "B", "C"), 6, domain=2)
            result = u_repair(table, fds)
            assert result.optimal
            assert satisfies(result.update, fds)

    def test_chain_with_consensus(self):
        """Corollary 4.8 via Theorem 4.3: {∅→D, AD→B, B→CD} reduces to
        {A→B, B→C} — wait, that one is hard; use a tractable chain."""
        fds = FDSet("-> A; A B -> C")
        table = Table.from_rows(
            ("A", "B", "C"),
            [("x", "b", 1), ("y", "b", 2), ("x", "b", 3)],
        )
        result = u_repair(table, fds)
        assert result.optimal
        assert satisfies(result.update, fds)
        opt = table.dist_upd(exact_u_repair(table, fds))
        assert result.distance == pytest.approx(opt)

    def test_two_cycle_proposition_49(self, rng):
        """Prop 4.9: {A→B, B→A} — dist_upd(U*) = dist_sub(S*)."""
        fds = FDSet("A -> B; B -> A")
        for _ in range(12):
            table = random_small_table(rng, ("A", "B"), rng.randrange(1, 7), domain=3, weighted=True)
            s_star = opt_s_repair(fds, table)
            result = u_repair(table, fds)
            assert result.optimal
            if satisfies(table, fds):
                assert result.method == "already consistent"
            else:
                assert "Prop 4.9" in result.method
            assert satisfies(result.update, fds)
            assert result.distance == pytest.approx(table.dist_sub(s_star))

    def test_attribute_disjoint_decomposition(self, rng):
        """Theorem 4.1 / Example 4.2: Δ0 = {product→price, buyer→email}
        is tractable, and the distance is the sum of the component
        distances (Proposition B.1)."""
        fds = FDSet("product -> price; buyer -> email")
        schema = ("product", "price", "buyer", "email")
        for _ in range(8):
            table = random_small_table(rng, schema, 6, domain=2)
            result = u_repair(table, fds)
            assert result.optimal
            d1 = u_repair(table, FDSet("product -> price")).distance
            d2 = u_repair(table, FDSet("buyer -> email")).distance
            assert result.distance == pytest.approx(d1 + d2)

    def test_consensus_only(self):
        fds = FDSet("-> A")
        table = Table.from_rows(("A",), [("x",), ("x",), ("y",), ("z",)])
        result = u_repair(table, fds)
        assert result.optimal
        assert result.distance == 2.0  # rewrite y and z to the majority x

    def test_trivial_fds(self, office):
        result = u_repair(office, FDSet("facility -> facility"))
        assert result.optimal and result.distance == 0.0


class TestHardCasesFallBack:
    def test_small_hard_instance_solved_exactly(self):
        """``Δ_{A↔B→C}`` is APX-complete (Thm 4.10) but tiny instances go
        through exhaustive search."""
        fds = FDSet("A -> B; B -> A; B -> C")
        table = Table.from_rows(
            ("A", "B", "C"), [("u", "v", 0), ("v", "u", 0), ("u", "u", 1)]
        )
        result = u_repair(table, fds)
        assert result.optimal
        assert "exact search" in result.method
        opt = table.dist_upd(exact_u_repair(table, fds))
        assert result.distance == pytest.approx(opt)

    def test_large_hard_instance_returns_bounded_approx(self, rng):
        fds = FDSet("A -> B; B -> C")
        table = random_small_table(rng, ("A", "B", "C"), 14, domain=2)
        result = u_repair(table, fds, exact_budget=50)
        if not result.optimal:
            assert result.ratio_bound == 4.0  # 2·mlc, mlc = 2
            assert satisfies(result.update, fds)

    def test_disallow_exact_search(self, rng):
        fds = FDSet("A -> B; B -> C")
        table = random_small_table(rng, ("A", "B", "C"), 6, domain=2)
        result = u_repair(table, fds, allow_exact_search=False)
        assert satisfies(result.update, fds)
        if table.dist_upd(result.update) > 0:
            assert not result.optimal

    def test_optimal_u_repair_raises_when_not_provable(self, rng):
        fds = FDSet("A -> B; B -> C")
        table = random_small_table(rng, ("A", "B", "C"), 14, domain=2)
        try:
            result = optimal_u_repair(table, fds, exact_budget=50)
            assert result.optimal  # small instance may still finish
        except UnknownURepairComplexity:
            pass

    def test_optimal_u_repair_on_tractable(self, office, office_delta):
        result = optimal_u_repair(office, office_delta)
        assert result.optimal and result.distance == 2.0


class TestInvariants:
    @pytest.mark.parametrize(
        "fds",
        [
            FDSet("A -> B"),
            FDSet("A -> B; B -> A"),
            FDSet("-> A; B -> C"),
            FDSet("A -> B; C -> D"),
            FDSet("A -> B; B -> C"),
            FDSet("A -> B; B -> A; B -> C"),
        ],
        ids=str,
    )
    def test_update_is_always_consistent_and_id_preserving(self, fds, rng):
        schema = sorted(fds.attributes)
        for _ in range(6):
            table = random_small_table(rng, schema, rng.randrange(0, 7), domain=2, weighted=True)
            result = u_repair(table, fds)
            assert satisfies(result.update, fds)
            assert result.update.is_update_of(table)
            assert result.distance == pytest.approx(table.dist_upd(result.update))

    def test_corollary_45_sandwich(self, rng):
        """Corollary 4.5 on the dispatcher's optimal outputs."""
        fds = FDSet("A -> B; B -> A")
        for _ in range(8):
            table = random_small_table(rng, ("A", "B"), rng.randrange(1, 6), domain=2)
            s_star = opt_s_repair(fds, table)
            result = u_repair(table, fds)
            ds = table.dist_sub(s_star)
            assert ds <= result.distance + 1e-9
            assert result.distance <= fds.mlc() * ds + 1e-9
