"""Unit tests for the table model (Section 2.1) and distances (§2.3)."""

import pytest

from repro.core.table import FreshValue, Table, fresh_value_factory, hamming_distance


def small_table() -> Table:
    return Table(
        ("A", "B"),
        {1: ("x", 1), 2: ("x", 2), 3: ("y", 1)},
        {1: 2.0, 2: 1.0, 3: 1.0},
    )


class TestConstruction:
    def test_basic(self):
        t = small_table()
        assert len(t) == 3
        assert t.schema == ("A", "B")
        assert t[1] == ("x", 1)
        assert t.weight(1) == 2.0

    def test_default_weights_are_one(self):
        t = Table(("A",), {1: ("x",), 2: ("y",)})
        assert t.weight(1) == 1.0 and t.weight(2) == 1.0
        assert t.is_unweighted

    def test_duplicate_schema_rejected(self):
        with pytest.raises(ValueError):
            Table(("A", "A"), {})

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Table(("A", "B"), {1: ("x",)})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Table(("A",), {1: ("x",)}, {1: 0.0})

    def test_unknown_weight_id_rejected(self):
        with pytest.raises(ValueError):
            Table(("A",), {1: ("x",)}, {2: 1.0})

    def test_from_rows_sequential_ids(self):
        t = Table.from_rows(("A",), [("x",), ("y",)])
        assert t.ids() == (1, 2)

    def test_from_dicts(self):
        t = Table.from_dicts(("A", "B"), [{"A": 1, "B": 2}, {"B": 4, "A": 3}])
        assert t[1] == (1, 2) and t[2] == (3, 4)

    def test_from_rows_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            Table.from_rows(("A",), [("x",)], weights=[1.0, 2.0])


class TestProperties:
    def test_duplicate_free(self):
        assert small_table().is_duplicate_free
        dup = Table(("A",), {1: ("x",), 2: ("x",)})
        assert not dup.is_duplicate_free

    def test_unweighted(self):
        assert not small_table().is_unweighted
        assert Table(("A",), {1: ("x",)}, {1: 5.0}).is_unweighted

    def test_total_weight(self):
        assert small_table().total_weight() == 4.0
        assert small_table().total_weight([1, 3]) == 3.0

    def test_active_domain(self):
        assert small_table().active_domain("A") == {"x", "y"}
        assert small_table().active_domain("B") == {1, 2}

    def test_figure1_flags(self):
        """Example 2.1: S2 duplicate-free & unweighted; S1 duplicate-free
        but weighted; U2 neither."""
        from repro.datagen.office import consistent_subsets, consistent_updates

        subsets = consistent_subsets()
        assert subsets["S2"].is_duplicate_free and subsets["S2"].is_unweighted
        assert subsets["S1"].is_duplicate_free and not subsets["S1"].is_unweighted
        u2 = consistent_updates()["U2"]
        assert not u2.is_duplicate_free and not u2.is_unweighted


class TestRelationalOps:
    def test_project(self):
        t = small_table()
        assert t.project(1, ("B",)) == (1,)
        assert t.project(1, ("B", "A")) == ("x", 1)  # sorted attribute order

    def test_select_eq(self):
        t = small_table()
        sel = t.select_eq({"A": "x"})
        assert set(sel.ids()) == {1, 2}

    def test_select_eq_multiple(self):
        t = small_table()
        sel = t.select_eq({"A": "x", "B": 2})
        assert sel.ids() == (2,)

    def test_group_by(self):
        groups = small_table().group_by(("A",))
        assert groups[("x",)] == [1, 2]
        assert groups[("y",)] == [3]

    def test_group_by_empty_attrs(self):
        groups = small_table().group_by(())
        assert groups == {(): [1, 2, 3]}

    def test_distinct_projection_order(self):
        assert small_table().distinct_projection(("A",)) == [("x",), ("y",)]

    def test_subset(self):
        sub = small_table().subset([1, 3])
        assert sub.ids() == (1, 3)
        assert sub.weight(1) == 2.0

    def test_subset_unknown_id(self):
        with pytest.raises(KeyError):
            small_table().subset([9])

    def test_union_disjoint(self):
        t = small_table()
        u = t.subset([1]).union(t.subset([3]))
        assert set(u.ids()) == {1, 3}

    def test_union_overlap_rejected(self):
        t = small_table()
        with pytest.raises(ValueError):
            t.subset([1]).union(t.subset([1, 2]))

    def test_union_schema_mismatch(self):
        with pytest.raises(ValueError):
            small_table().union(Table(("C",), {9: ("z",)}))


class TestUpdates:
    def test_with_updates(self):
        t = small_table().with_updates({(2, "B"): 1})
        assert t[2] == ("x", 1)
        assert t.weight(2) == 1.0  # weights preserved

    def test_with_updates_unknown_id(self):
        with pytest.raises(KeyError):
            small_table().with_updates({(9, "B"): 1})

    def test_is_update_of(self):
        t = small_table()
        assert t.with_updates({(1, "A"): "z"}).is_update_of(t)
        assert not t.subset([1]).is_update_of(t)

    def test_is_subset_of(self):
        t = small_table()
        assert t.subset([1, 2]).is_subset_of(t)
        assert not t.with_updates({(1, "A"): "z"}).is_subset_of(t)

    def test_changed_cells(self):
        t = small_table()
        u = t.with_updates({(1, "A"): "z", (3, "B"): 9})
        assert set(u.changed_cells(t)) == {(1, "A"), (3, "B")}


class TestDistances:
    def test_hamming(self):
        assert hamming_distance(("a", "b"), ("a", "c")) == 1
        assert hamming_distance(("a", "b"), ("a", "b")) == 0

    def test_hamming_arity_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(("a",), ("a", "b"))

    def test_dist_sub_weighted(self):
        t = small_table()
        assert t.dist_sub(t.subset([2, 3])) == 2.0  # dropped tuple 1, w=2
        assert t.dist_sub(t) == 0.0

    def test_dist_sub_rejects_non_subset(self):
        t = small_table()
        with pytest.raises(ValueError):
            t.dist_sub(t.with_updates({(1, "A"): "z"}))

    def test_dist_upd_weighted_hamming(self):
        t = small_table()
        u = t.with_updates({(1, "A"): "z", (1, "B"): 7, (2, "B"): 1})
        # tuple 1 (w=2) changed 2 cells, tuple 2 (w=1) changed 1 cell.
        assert t.dist_upd(u) == 2 * 2 + 1

    def test_dist_upd_rejects_subset(self):
        t = small_table()
        with pytest.raises(ValueError):
            t.dist_upd(t.subset([1]))


class TestFreshValues:
    def test_distinct_from_everything(self):
        f1, f2 = FreshValue(), FreshValue()
        assert f1 != f2
        assert f1 == f1
        assert f1 != "x"

    def test_factory_labels(self):
        gen = fresh_value_factory("n")
        a, b = next(gen), next(gen)
        assert repr(a) == "n0" and repr(b) == "n1"

    def test_usable_as_cell_value(self):
        f = FreshValue()
        t = small_table().with_updates({(1, "A"): f})
        assert t[1][0] is f
        assert t.active_domain("A") == {f, "x", "y"}


class TestDisplay:
    def test_to_string_contains_all_cells(self):
        text = small_table().to_string()
        assert "x" in text and "y" in text and "id" in text

    def test_to_records(self):
        recs = small_table().to_records()
        assert recs[0] == {"id": 1, "A": "x", "B": 1, "weight": 2.0}

    def test_equality_and_hash(self):
        assert small_table() == small_table()
        assert hash(small_table()) == hash(small_table())
        assert small_table() != small_table().subset([1, 2])
