"""Streaming repair sessions: incremental ≡ from-scratch, always.

The session's load-bearing contract: after ANY sequence of appends and
deletes, :meth:`RepairSession.repair` returns a result byte-identical to
``pipeline.clean`` run from scratch on an equivalent fresh table — same
cleaned tuples, distance, dirtiness report, and portfolio label.
Property tests drive random delta sequences through both paths and
compare, including the serialised CSV form.

The supporting machinery is pinned alongside: the content-addressed
component cache (hits on untouched components, correct re-solves after
eviction), the warm worker pool (results identical to serial, graceful
degradation), and the CLI ``stream`` subcommand.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.core.fd import FDSet
from repro.core.table import Table
from repro.core.violations import satisfies
from repro.exec import PersistentWorkerPool
from repro.io.tables import table_to_csv
from repro.pipeline import clean
from repro.session import RepairSession
from repro.testing import random_small_table

SCHEMA = ("A", "B", "C")

FD_SETS = [
    FDSet("A -> B"),                 # tractable (common lhs)
    FDSet("A -> B; B -> C"),         # APX-complete
    FDSet("A -> B; B -> A; B -> C"),  # tractable (marriage)
    FDSet("A B -> C"),               # tractable
]


def _fresh_equivalent(session):
    """A brand-new Table holding the session's current content — its own
    object identity and empty caches, so ``clean`` runs fully from
    scratch."""
    return Table(SCHEMA, session.table.rows(), session.table.weights())


def _assert_identical(result, expected):
    assert result.cleaned == expected.cleaned
    assert result.distance == expected.distance
    assert result.method == expected.method
    assert result.method_counts == expected.method_counts
    assert result.component_count == expected.component_count
    assert result.optimal == expected.optimal
    assert result.ratio_bound == expected.ratio_bound
    assert result.report == expected.report
    assert table_to_csv(result.cleaned) == table_to_csv(expected.cleaned)


# ---------------------------------------------------------------------------
# The tentpole property: session ≡ from-scratch clean under any deltas
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_session_matches_clean_after_any_delta_sequence(data):
    fds = data.draw(st.sampled_from(FD_SETS))
    guarantee = data.draw(st.sampled_from(("best", "fast")))
    value = st.integers(min_value=0, max_value=2)
    row_st = st.tuples(value, value, value)
    start = data.draw(st.lists(st.tuples(row_st, st.sampled_from((1.0, 2.0))),
                               min_size=0, max_size=8))
    table = Table.from_rows(SCHEMA, [r for r, _w in start],
                            [w for _r, w in start])
    session = RepairSession(table, fds, guarantee=guarantee)
    _assert_identical(
        session.repair(),
        clean(_fresh_equivalent(session), fds, guarantee=guarantee),
    )
    for _step in range(data.draw(st.integers(min_value=1, max_value=5))):
        live = list(session.table.ids())
        if live and data.draw(st.booleans()):
            victims = data.draw(
                st.lists(st.sampled_from(live), min_size=1,
                         max_size=min(3, len(live)), unique=True)
            )
            result = session.delete(victims)
        else:
            rows = data.draw(st.lists(row_st, min_size=1, max_size=3))
            weights = data.draw(
                st.lists(st.sampled_from((1.0, 2.0, 3.0)),
                         min_size=len(rows), max_size=len(rows))
            )
            result = session.append(rows, weights=weights)
        _assert_identical(
            result, clean(_fresh_equivalent(session), fds, guarantee=guarantee)
        )
        assert satisfies(result.cleaned, fds)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_session_matches_clean_with_custom_threshold(data):
    """exact_threshold reroutes the portfolio identically on both paths."""
    fds = FDSet("A -> B; B -> C")  # APX-complete: threshold matters
    threshold = data.draw(st.sampled_from((0, 2, 5)))
    rng = random.Random(data.draw(st.integers(0, 1000)))
    table = random_small_table(rng, SCHEMA, 20, domain=2, weighted=True)
    session = RepairSession(table, fds, exact_threshold=threshold)
    session.append([(0, 1, 2), (0, 2, 1)])
    result = session.repair()
    expected = clean(_fresh_equivalent(session), fds, exact_threshold=threshold)
    _assert_identical(result, expected)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_session_keeps_kernel_array_paths_across_deltas(data):
    """The ISSUE-5 streaming contract: the session's kernel view is
    *patched* by every append/delete, never dropped — so the array fast
    paths stay active for the whole stream — while results remain
    byte-identical to from-scratch cleaning."""
    fds = data.draw(st.sampled_from(FD_SETS))
    value = st.integers(min_value=0, max_value=2)
    row_st = st.tuples(value, value, value)
    start = data.draw(st.lists(row_st, min_size=1, max_size=8))
    table = Table.from_rows(SCHEMA, start)
    session = RepairSession(table, fds)
    assert session.index._kernel is not None
    session.repair()
    for _step in range(data.draw(st.integers(min_value=1, max_value=6))):
        live = list(session.table.ids())
        if live and data.draw(st.booleans()):
            result = session.delete([data.draw(st.sampled_from(live))])
        else:
            result = session.append([data.draw(row_st)])
        # Never dropped, never out of sync (compaction may swap in a
        # fresh view object; that still counts as live).
        kern = session.index._kernel
        assert kern is not None
        assert kern.live_count == len(session.index)
        assert kern.live_edges == session.index.num_edges
        _assert_identical(result, clean(_fresh_equivalent(session), fds))


def test_session_exact_budget_knob(monkeypatch):
    """With a zero budget (and the check interval pinned to every node),
    exact components fall back to the 2-approximation — visibly, in the
    method mix — and the fallback is sticky via the component cache."""
    from repro.core import kernel
    from repro.graphs import vertex_cover as vc

    monkeypatch.setattr(kernel, "_BUDGET_CHECK_INTERVAL", 1)
    monkeypatch.setattr(vc, "_BUDGET_CHECK_INTERVAL", 1)
    rng = random.Random(6)
    rows = [(f"a{rng.randrange(6)}", f"b{rng.randrange(6)}", "x")
            for _ in range(30)]
    table = Table.from_rows(SCHEMA, rows)
    fds = FDSet("A -> B; B -> C")  # APX-complete: portfolio plans "exact"
    session = RepairSession(table, fds, exact_budget_s=0.0)
    result = session.repair()
    assert result.method_counts.get("approx", 0) >= 1
    assert not result.optimal
    # A consistent append re-serves the fallback from cache, no re-solve.
    misses = session.stats.cache_misses
    again = session.append([("quiet", "quiet", "quiet")])
    assert session.stats.cache_misses == misses
    assert again.method_counts == result.method_counts
    assert satisfies(again.cleaned, fds)


# ---------------------------------------------------------------------------
# The component cache
# ---------------------------------------------------------------------------

def test_untouched_components_hit_the_cache():
    # Two independent conflict clusters plus consistent filler.
    rows = [
        ("a1", "x", "p"), ("a1", "y", "p"),   # cluster 1
        ("a2", "x", "q"), ("a2", "y", "q"),   # cluster 2
        ("f", "f", "f"),
    ]
    table = Table.from_rows(SCHEMA, rows)
    fds = FDSet("A -> B")
    session = RepairSession(table, fds)
    session.repair()
    assert session.stats.cache_misses == 2
    # A consistent append touches no cluster: all hits, no solves.
    session.append([("zzz", "zzz", "zzz")])
    assert session.stats.cache_misses == 2
    assert session.stats.cache_hits == 2
    # An append into cluster 1 re-solves exactly that component.
    session.append([("a1", "z", "p")])
    assert session.stats.cache_misses == 3
    assert session.stats.cache_hits == 3


def test_cache_is_bounded_by_default():
    """Long-lived streams must not grow the cache without bound: the
    default cap evicts LRU entries (superseded content is never
    invalidated eagerly, so unbounded retention would be O(stream))."""
    session = RepairSession(Table(SCHEMA, {}), FDSet("A -> B"))
    assert session._max_cache_entries == 10_000
    small = RepairSession(Table(SCHEMA, {}), FDSet("A -> B"),
                          max_cache_entries=2)
    for i in range(6):
        small.append([("a", f"x{i}", "p")])
    assert small.cache_size() <= 2


def test_cache_eviction_keeps_results_correct():
    rng = random.Random(5)
    table = random_small_table(rng, SCHEMA, 30, domain=2, weighted=True)
    fds = FDSet("A -> B; B -> C")
    session = RepairSession(table, fds, max_cache_entries=1)
    for rounds in range(3):
        result = session.append([(rounds, rounds + 1, rounds + 2)])
        _assert_identical(result, clean(_fresh_equivalent(session), fds))
    assert session.cache_size() <= 1


def test_clear_cache_forces_resolve():
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 2, 2)])
    session = RepairSession(table, FDSet("A -> B"))
    first = session.repair()
    session.clear_cache()
    assert session.cache_size() == 0
    again = session.repair()
    _assert_identical(again, first)
    assert session.stats.cache_misses == 2  # both repairs solved


def test_delete_then_reappend_row_reuses_content_addressing():
    """The cache is content-addressed: restoring a component's exact
    content (same ids, rows, weights) serves the old solution."""
    rows = {1: ("a", "x", "p"), 2: ("a", "y", "p")}
    table = Table(SCHEMA, rows)
    fds = FDSet("A -> B")
    session = RepairSession(table, fds)
    session.repair()
    misses = session.stats.cache_misses
    session.delete([2])
    session.append([("a", "y", "p")], ids=[2])
    assert session.stats.cache_misses == misses  # same component content
    _assert_identical(session.repair(), clean(_fresh_equivalent(session), fds))


# ---------------------------------------------------------------------------
# Session API edges
# ---------------------------------------------------------------------------

def test_append_validation_leaves_state_untouched():
    table = Table.from_rows(SCHEMA, [(1, 1, 1)])
    session = RepairSession(table, FDSet("A -> B"))
    with pytest.raises(ValueError, match="already live"):
        session.append([(2, 2, 2)], ids=[1])
    with pytest.raises(ValueError, match="different lengths"):
        session.append([(2, 2, 2)], weights=[1.0, 2.0])
    with pytest.raises(ValueError, match="missing attribute"):
        session.append([{"A": 1, "B": 2}])
    assert len(session) == 1


def test_append_is_atomic_on_mid_batch_failure():
    """A bad row after valid ones must leave no trace: validation runs
    for the whole batch before the first mutation, so the session stays
    usable and consistent with from-scratch cleaning."""
    table = Table.from_rows(SCHEMA, [(1, 1, 1), (1, 2, 2)])
    fds = FDSet("A -> B")
    session = RepairSession(table, fds)
    with pytest.raises(ValueError, match="arity"):
        session.append([(5, 5, 5), (9, 9)])          # second row bad
    with pytest.raises(ValueError, match="non-positive"):
        session.append([(5, 5, 5), (6, 6, 6)], weights=[1.0, 0.0])
    assert len(session) == 2
    assert len(session.index) == 2
    _assert_identical(session.repair(), clean(_fresh_equivalent(session), fds))


def test_reappended_id_with_new_content_invalidates_reuse():
    """Deleting an id and re-appending it with *different* content must
    not serve the stale component — even when the ids-tuple of the
    component comes out identical (regression: the reuse map was keyed
    on member ids only)."""
    fds = FDSet("A -> B")
    table = Table(SCHEMA, {1: ("a", "x", "p"), 2: ("a", "y", "p")})
    session = RepairSession(table, fds)
    session.repair()
    session.delete([2], repair=False)
    session.append([("a", "z", "q")], ids=[2], weights=[5.0], repair=False)
    result = session.repair()
    _assert_identical(result, clean(_fresh_equivalent(session), fds))
    assert result.distance == 1.0  # the light tuple goes, not the heavy one


def test_delete_validation():
    table = Table.from_rows(SCHEMA, [(1, 1, 1)])
    session = RepairSession(table, FDSet("A -> B"))
    with pytest.raises(KeyError, match="unknown"):
        session.delete([99])
    with pytest.raises(ValueError, match="duplicate"):
        session.delete([1, 1])
    assert len(session) == 1


def test_append_mappings_and_auto_ids():
    session = RepairSession(Table(SCHEMA, {}), FDSet("A -> B"))
    result = session.append(
        [{"A": "a", "B": "x", "C": "p"}, {"A": "a", "B": "y", "C": "p"}]
    )
    assert sorted(session.table.ids()) == [1, 2]
    assert result.distance == 1.0
    # Auto ids never collide with explicit ones.
    session.append([("q", "q", "q")], ids=[3])
    session.append([("r", "r", "r")])
    assert sorted(session.table.ids()) == [1, 2, 3, 4]


def test_append_without_repair_defers_solving():
    session = RepairSession(Table(SCHEMA, {}), FDSet("A -> B"))
    assert session.append([("a", "x", "p")], repair=False) is None
    assert session.append([("a", "y", "p")], repair=False) is None
    assert session.stats.repairs == 0
    result = session.repair()
    assert result.distance == 1.0
    _assert_identical(result, clean(_fresh_equivalent(session), FDSet("A -> B")))


def test_updates_strategy_is_rejected():
    with pytest.raises(ValueError, match="guarantee"):
        RepairSession(Table(SCHEMA, {}), FDSet("A -> B"), guarantee="nope")


def test_session_repr_and_context_manager():
    with RepairSession(Table.from_rows(SCHEMA, [(1, 1, 1)]), FDSet("A -> B")) as s:
        assert "RepairSession" in repr(s)
        assert len(s) == 1


# ---------------------------------------------------------------------------
# The persistent worker pool
# ---------------------------------------------------------------------------

def _pool_available():
    pool = PersistentWorkerPool(1, SCHEMA, FDSet("A -> B"))
    try:
        return pool.start()
    finally:
        pool.close()


def test_pool_solves_match_serial():
    if not _pool_available():
        pytest.skip("subprocess support unavailable")
    rng = random.Random(77)
    table = random_small_table(rng, SCHEMA, 60, domain=3, weighted=True)
    fds = FDSet("A -> B; B -> C")
    serial = RepairSession(table, fds)
    pooled = RepairSession(table, fds, parallel=2)

    def same_repair(a, b):
        # The portfolio label records the requested parallelism, so only
        # the content must coincide across serial and pooled sessions.
        assert a.cleaned == b.cleaned
        assert a.distance == b.distance
        assert a.report == b.report
        assert a.method_counts == b.method_counts

    try:
        same_repair(pooled.repair(), serial.repair())
        for row in [(0, 1, 2), (1, 1, 1), (2, 0, 1)]:
            same_repair(pooled.append([row]), serial.append([row]))
        same_repair(pooled.delete([1]), serial.delete([1]))
        # Against the batch path with the same parallel flag the result
        # is byte-identical, label included.
        _assert_identical(
            pooled.repair(),
            clean(_fresh_equivalent(pooled), fds, parallel=2),
        )
    finally:
        pooled.close()


def test_pool_failure_falls_back_to_serial():
    if not _pool_available():
        pytest.skip("subprocess support unavailable")
    rng = random.Random(3)
    table = random_small_table(rng, SCHEMA, 40, domain=2, weighted=True)
    fds = FDSet("A -> B; B -> C")
    session = RepairSession(table, fds, parallel=2)
    try:
        session.repair()
        # Kill the pool behind the session's back; the next repair must
        # fall back to in-process solving with identical results.
        if session._pool is not None:
            session._pool.close()
        session.append([(9, 9, 9), (9, 8, 8)])
        result = session.repair()
        _assert_identical(
            result, clean(_fresh_equivalent(session), fds, parallel=2)
        )
    finally:
        session.close()


def test_pool_broadcast_and_solve_roundtrip():
    if not _pool_available():
        pytest.skip("subprocess support unavailable")
    fds = FDSet("A -> B")
    with PersistentWorkerPool(2, SCHEMA, fds) as pool:
        rows = {1: ("a", "x", "p"), 2: ("a", "y", "p"), 3: ("b", "z", "q")}
        weights = {1: 1.0, 2: 2.0, 3: 1.0}
        assert pool.broadcast(("reset", rows, weights))
        [(kept, effective, secs)] = pool.solve([((1, 2), "exact")])
        assert secs >= 0.0
        assert kept == (2,)  # heavier tuple wins
        assert effective == "exact"
        assert pool.broadcast(("delete", (2,)))
        assert pool.broadcast(("append", {4: ("a", "w", "p")}, {4: 5.0}))
        [(kept, effective, _secs)] = pool.solve([((1, 4), "exact")])
        assert kept == (4,)
        assert effective == "exact"
    assert not pool.alive


# ---------------------------------------------------------------------------
# CLI: fdrepair stream
# ---------------------------------------------------------------------------

def test_cli_stream_roundtrip(tmp_path, capsys):
    batches = tmp_path / "ops.jsonl"
    batches.write_text(
        "\n".join(
            [
                json.dumps({"op": "append",
                            "rows": [["a", "x", "p"], ["a", "y", "p"]],
                            "weights": [2, 1]}),
                json.dumps({"op": "append",
                            "rows": [{"A": "b", "B": "z", "C": "q"}]}),
                json.dumps({"op": "delete", "ids": [3]}),
                json.dumps({"op": "repair"}),
            ]
        ),
        encoding="utf-8",
    )
    out = tmp_path / "repaired.csv"
    code = cli_main([
        "stream", "A -> B", str(batches),
        "--schema", "A,B,C", "--out", str(out),
    ])
    assert code == 0
    text = capsys.readouterr().out
    assert "batch 4: repair" in text
    assert "cache" in text
    assert out.read_text(encoding="utf-8").startswith("id,A,B,C,weight")


def test_cli_stream_initial_table(tmp_path, capsys):
    csv_path = tmp_path / "start.csv"
    csv_path.write_text(
        "id,A,B,C,weight\n1,a,x,p,2.0\n2,a,y,p,1.0\n", encoding="utf-8"
    )
    batches = tmp_path / "ops.jsonl"
    batches.write_text(
        json.dumps({"op": "append", "rows": [["a", "z", "p"]]}) + "\n",
        encoding="utf-8",
    )
    code = cli_main([
        "stream", "A -> B", str(batches),
        "--table", str(csv_path), "--exact-threshold", "10",
    ])
    assert code == 0
    assert "deleted weight: 2" in capsys.readouterr().out


def test_cli_stream_rejects_bad_input(tmp_path, capsys):
    batches = tmp_path / "ops.jsonl"
    batches.write_text('{"op": "mystery"}\n', encoding="utf-8")
    code = cli_main(["stream", "A -> B", str(batches), "--schema", "A,B,C"])
    assert code == 1
    assert "unknown op" in capsys.readouterr().err
    assert cli_main(["stream", "A -> B", str(batches)]) == 2
    # Structurally malformed payloads diagnose instead of tracebacking.
    batches.write_text('{"op": "append", "rows": 5}\n', encoding="utf-8")
    code = cli_main(["stream", "A -> B", str(batches), "--schema", "A,B,C"])
    assert code == 1
    assert "batch 1" in capsys.readouterr().err
    # A missing batches file diagnoses up front instead of tracebacking.
    code = cli_main([
        "stream", "A -> B", str(tmp_path / "nope.jsonl"), "--schema", "A,B,C",
    ])
    assert code == 2
    assert "cannot read batches file" in capsys.readouterr().err


def test_cli_exact_threshold_repair(tmp_path, capsys):
    csv_path = tmp_path / "t.csv"
    csv_path.write_text(
        "id,A,B,C,weight\n1,a,x,p,1.0\n2,a,y,p,1.0\n3,b,y,q,1.0\n",
        encoding="utf-8",
    )
    code = cli_main([
        "s-repair", str(csv_path), "A -> B; B -> C",
        "--exact-threshold", "0", "--portfolio",
    ])
    assert code == 0
    text = capsys.readouterr().out
    # Threshold 0 pushes every hard-Δ component to the approximation.
    assert "bar-yehuda-even" in text or "approx" in text
