"""The interned columnar kernel (:mod:`repro.core.kernel`).

Three contracts are pinned here:

1. **Codec round-trip** — ``TableCodec.encode`` followed by
   ``decode_table`` reproduces any table exactly, including duplicate
   rows, weights, and identity-equal ``FreshValue`` cells.
2. **Bitmask mirror** — the single-word branch & bound returns the
   *identical* cover (not merely one of equal weight) as the graph-based
   reference ``exact_min_weight_vertex_cover`` on arbitrary graphs of at
   most 64 vertices.
3. **Byte-identity of the kernel paths** — a kernel-backed pipeline run
   (index build, decomposition, portfolio solves, report) equals the
   dict reference run (``kernel.disabled()`` / ``--no-kernel``) across
   guarantee modes and both repair strategies, on random tables.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernel
from repro.core.conflict_index import ConflictIndex
from repro.core.exact import exact_cover_of_index
from repro.core.fd import FDSet
from repro.core.table import FreshValue, Table
from repro.graphs.graph import Graph
from repro.graphs.vertex_cover import bar_yehuda_even, exact_min_weight_vertex_cover
from repro.pipeline import assess, clean

FD_SETS = (
    FDSet("A -> B"),
    FDSet("A -> B; A B -> C"),
    FDSet("A -> B; B -> A; B -> C"),
    FDSet("A -> B; B -> C"),
    FDSet("A B -> C; C -> A"),
)

SCHEMA = ("A", "B", "C")


def _random_table(rng: random.Random, size: int, with_fresh: bool = True) -> Table:
    """A random table with duplicate rows, mixed weights, and (optionally)
    shared FreshValue cells — the encoder's worst case."""
    fresh_pool = [FreshValue(f"f{i}") for i in range(3)] if with_fresh else []
    values = ["v0", "v1", "v2", 7, ("t", 1), *fresh_pool]
    rows = {}
    weights = {}
    for i in range(size):
        if i and rng.random() < 0.2:
            # Exact duplicate of an earlier row, under a fresh id.
            rows[f"t{i}"] = rows[f"t{rng.randrange(i)}"]
        else:
            rows[f"t{i}"] = tuple(rng.choice(values) for _ in SCHEMA)
        weights[f"t{i}"] = rng.choice([1.0, 0.5, 2.25, 3.0])
    return Table(SCHEMA, rows, weights)


# ---------------------------------------------------------------------------
# 1. Codec round-trip
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_codec_round_trip(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    size = data.draw(st.integers(min_value=0, max_value=25))
    table = _random_table(rng, size)
    codec = kernel.TableCodec.encode(table)
    decoded = codec.decode_table(name=table.name)
    assert decoded == table
    # Identity, not just equality, for every cell: FreshValue equality is
    # identity, so the decoder must return the original objects.
    for i, tid in enumerate(codec.ids):
        assert all(a is b for a, b in zip(codec.decode_row(i), table[tid]))
    # Codes are dense and first-seen ordered per column.
    for j, decoder in enumerate(codec.decoders):
        seen = []
        for row in table.rows().values():
            if row[j] not in seen:
                seen.append(row[j])
        assert decoder == seen


def test_codec_stays_live_under_append():
    table = Table(SCHEMA, {1: ("a", "b", "c")})
    codec = kernel.TableCodec.encode(table)
    codec.append_row(2, ("a", "new", "c"), 2.0)
    assert codec.coded_row(2) == (0, 1, 0)
    assert codec.decode_row(1) == ("a", "new", "c")
    assert codec.weights[1] == 2.0


# ---------------------------------------------------------------------------
# 2. Bitmask branch & bound mirrors the graph reference
# ---------------------------------------------------------------------------

@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_bitmask_cover_identical_to_reference(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    n = data.draw(st.integers(min_value=0, max_value=24))
    p = data.draw(st.sampled_from((0.05, 0.2, 0.45, 0.8)))
    nodes = [f"n{i}" for i in range(n)]
    weights = {v: rng.choice([1.0, 0.5, 2.0, 3.25]) for v in nodes}
    edges = [
        (nodes[i], nodes[j])
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    graph = Graph.from_edges(edges, nodes=nodes, weights=weights)
    reference = exact_min_weight_vertex_cover(graph)

    position = {v: i for i, v in enumerate(nodes)}
    masks = [0] * n
    for u, v in edges:
        masks[position[u]] |= 1 << position[v]
        masks[position[v]] |= 1 << position[u]
    cover_mask = kernel.bitmask_vertex_cover(
        [weights[v] for v in nodes], masks, [str(v) for v in nodes]
    )
    cover = {nodes[i] for i in kernel._bits_ascending(cover_mask)}
    # Identical cover — the strong form; equal weight follows.
    assert cover == reference
    assert graph.is_vertex_cover(cover)


def test_bitmask_rejects_oversized_components():
    with pytest.raises(ValueError, match="65"):
        kernel.bitmask_vertex_cover([1.0] * 65, [0] * 65, ["x"] * 65)


def test_bitmask_at_the_64_vertex_boundary():
    """A 32-edge perfect matching on exactly 64 vertices: optimum takes
    the lighter endpoint of every edge."""
    n = 64
    weights = [1.0 if i % 2 else 3.0 for i in range(n)]
    masks = [0] * n
    for i in range(0, n, 2):
        masks[i] |= 1 << (i + 1)
        masks[i + 1] |= 1 << i
    cover_mask = kernel.bitmask_vertex_cover(
        weights, masks, [str(i) for i in range(n)]
    )
    assert sum(weights[i] for i in kernel._bits_ascending(cover_mask)) == 32.0


# ---------------------------------------------------------------------------
# 3. Kernel-built index ≡ dict-built index
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_kernel_index_equals_dict_index(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    fds = data.draw(st.sampled_from(FD_SETS))
    table = _random_table(rng, data.draw(st.integers(0, 25)), with_fresh=False)
    kernel_index = ConflictIndex(table, fds, use_kernel=True)
    dict_index = ConflictIndex(table, fds, use_kernel=False)
    assert kernel_index.num_edges == dict_index.num_edges
    assert kernel_index.edges() == dict_index.edges()
    assert kernel_index.components() == dict_index.components()
    assert kernel_index.consistent_ids() == dict_index.consistent_ids()
    assert kernel_index.conflicting_tuples() == dict_index.conflicting_tuples()
    assert sorted(map(repr, kernel_index.violating_pairs())) == sorted(
        map(repr, dict_index.violating_pairs())
    )
    assert list(kernel_index.violating_pairs()) == list(dict_index.violating_pairs())
    assert kernel_index.matching_lower_bound() == dict_index.matching_lower_bound()
    assert bar_yehuda_even(kernel_index) == bar_yehuda_even(dict_index)
    assert exact_cover_of_index(kernel_index) == exact_cover_of_index(dict_index)


def test_csr_arrays_shape_and_degree():
    table = Table(
        ("A", "B"),
        {1: ("x", "1"), 2: ("x", "2"), 3: ("x", "3"), 4: ("y", "1")},
    )
    index = ConflictIndex(table, FDSet("A -> B"), use_kernel=True)
    kern = index._kernel
    assert kern is not None
    assert kern.num_edges == 3  # triangle among rows 0, 1, 2
    assert kern.degree == [2, 2, 2, 0]
    assert kern.indptr == [0, 2, 4, 6, 6]
    assert len(kern.indices) == 6
    assert kern.weights[:4] == [1.0, 1.0, 1.0, 1.0]


def test_mutation_drops_csr_but_keeps_codec():
    table = Table(("A", "B"), {1: ("x", "1"), 2: ("x", "2")})
    index = ConflictIndex(table, FDSet("A -> B"), use_kernel=True)
    assert index._kernel is not None
    index.insert(3, ("x", "3"))
    assert index._kernel is None  # CSR snapshot is per-build
    assert index._codec is not None  # codes stay live
    assert index._codec.coded_row(3) == (0, 2)
    index.remove(1)
    # Dict paths still serve everything correctly after mutation.
    assert index.components() == [[2, 3]]


# ---------------------------------------------------------------------------
# 4. Byte-identity of kernel vs dict pipeline runs
# ---------------------------------------------------------------------------

def _canonical_cells(result, original):
    """Changed cells with FreshValues canonicalised by first occurrence.

    Fresh nulls are identity-equal and their *labels* may come from a
    process-global counter (the U-repair global-fallback path), so two
    equal repairs computed in sequence carry different labels.  What is
    observable — and what byte-identity can mean for fresh values — is
    the equality *pattern*: rank each distinct null by first occurrence
    in (deterministic) changed-cell order and compare the ranks.
    """
    out = {}
    ranks = {}
    for cell in result.cleaned.changed_cells(original):
        value = result.cleaned.value(*cell)
        if isinstance(value, FreshValue):
            value = f"⊥#{ranks.setdefault(value, len(ranks))}"
        out[cell] = value
    return out


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_clean_byte_identical_with_and_without_kernel(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    fds = data.draw(st.sampled_from(FD_SETS))
    strategy = data.draw(st.sampled_from(("deletions", "updates")))
    # "optimal" U-repairs may legitimately raise (and are worst-case
    # exponential) on the hard side of the dichotomy — identically so on
    # both arms, but there is nothing kernel-specific to compare there.
    guarantees = (
        ("best", "optimal", "fast") if strategy == "deletions"
        else ("best", "fast")
    )
    guarantee = data.draw(st.sampled_from(guarantees))
    size = data.draw(st.integers(0, 18))
    rows = {
        i: tuple(f"v{rng.randrange(3)}" for _ in SCHEMA) for i in range(size)
    }
    weights = {i: rng.choice([1.0, 2.0, 0.5]) for i in rows}

    with_kernel = clean(
        Table(SCHEMA, rows, weights), fds, strategy=strategy, guarantee=guarantee
    )
    with kernel.disabled():
        without = clean(
            Table(SCHEMA, rows, weights), fds, strategy=strategy,
            guarantee=guarantee,
        )

    original = Table(SCHEMA, rows, weights)
    assert with_kernel.distance == without.distance
    assert with_kernel.report == without.report
    assert with_kernel.method == without.method
    assert with_kernel.method_counts == without.method_counts
    if strategy == "deletions":
        assert with_kernel.cleaned == without.cleaned
    else:
        assert _canonical_cells(with_kernel, original) == _canonical_cells(
            without, original
        )


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_assess_byte_identical_with_and_without_kernel(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    fds = data.draw(st.sampled_from(FD_SETS))
    decomposed = data.draw(st.booleans())
    size = data.draw(st.integers(0, 20))
    rows = {
        i: tuple(f"v{rng.randrange(3)}" for _ in SCHEMA) for i in range(size)
    }
    weights = {i: rng.choice([1.0, 2.0, 0.5]) for i in rows}
    with_kernel = assess(Table(SCHEMA, rows, weights), fds, decomposed=decomposed)
    with kernel.disabled():
        without = assess(Table(SCHEMA, rows, weights), fds, decomposed=decomposed)
    assert with_kernel == without


def test_parallel_coded_shipping_byte_identical():
    """The process pool receives column-code arrays; kept ids (and hence
    the merged repair and its report) match the serial solve."""
    rng = random.Random(5)
    rows = {}
    for cluster in range(6):
        for k in range(8):
            rows[cluster * 8 + k] = (f"a{cluster}", f"b{rng.randrange(3)}", f"c{cluster}")
    table = Table(SCHEMA, rows)
    table2 = Table(SCHEMA, dict(rows))
    fds = FDSet("A -> B")
    serial = clean(table, fds)
    parallel = clean(table2, fds, parallel=2)
    assert serial.cleaned == parallel.cleaned
    assert serial.distance == parallel.distance
    assert serial.report == parallel.report


def test_coded_component_table_round_trip():
    from repro.core.decompose import Component
    from repro.exec import coded_component_table

    table = Table(SCHEMA, {7: ("x", "y", "z"), 9: ("x", "q", "z")},
                  {7: 2.0, 9: 1.5})
    codec = kernel.TableCodec.encode(table)
    component = Component(0, (7, 9), table, ConflictIndex(table, FDSet("A -> B")))
    ids, columns, weights = component.code_payload(codec)
    rebuilt = coded_component_table(SCHEMA, ids, columns, weights)
    assert rebuilt.ids() == (7, 9)
    assert rebuilt[7] == (0, 0, 0)
    assert rebuilt[9] == (0, 1, 0)
    assert rebuilt.weight(7) == 2.0 and rebuilt.weight(9) == 1.5


# ---------------------------------------------------------------------------
# 5. The global switch and the CLI flag
# ---------------------------------------------------------------------------

def test_disabled_context_restores_flag():
    assert kernel.enabled()
    with kernel.disabled():
        assert not kernel.enabled()
        with kernel.disabled():
            assert not kernel.enabled()
        assert not kernel.enabled()
    assert kernel.enabled()


def test_cli_no_kernel_flag(tmp_path, capsys, monkeypatch):
    from repro.cli import main
    from repro.io.tables import table_to_csv

    table = Table(SCHEMA, {1: ("a", "b", "c"), 2: ("a", "x", "c")})
    csv_path = tmp_path / "t.csv"
    table_to_csv(table, str(csv_path))

    assert main(["assess", str(csv_path), "A -> B"]) == 0
    with_kernel = capsys.readouterr().out
    # The flag must actually flip the global switch before any build.
    monkeypatch.setattr(kernel, "_ENABLED", True)
    assert main(["assess", str(csv_path), "A -> B", "--no-kernel"]) == 0
    without = capsys.readouterr().out
    assert not kernel.enabled()
    monkeypatch.setattr(kernel, "_ENABLED", True)
    assert with_kernel == without
