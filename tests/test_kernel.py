"""The interned columnar kernel (:mod:`repro.core.kernel`).

Three contracts are pinned here:

1. **Codec round-trip** — ``TableCodec.encode`` followed by
   ``decode_table`` reproduces any table exactly, including duplicate
   rows, weights, and identity-equal ``FreshValue`` cells.
2. **Bitmask mirror** — the single-word branch & bound returns the
   *identical* cover (not merely one of equal weight) as the graph-based
   reference ``exact_min_weight_vertex_cover`` on arbitrary graphs of at
   most 64 vertices.
3. **Byte-identity of the kernel paths** — a kernel-backed pipeline run
   (index build, decomposition, portfolio solves, report) equals the
   dict reference run (``kernel.disabled()`` / ``--no-kernel``) across
   guarantee modes and both repair strategies, on random tables.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernel
from repro.core.conflict_index import ConflictIndex
from repro.core.exact import exact_cover_of_index
from repro.core.fd import FDSet
from repro.core.table import FreshValue, Table
from repro.graphs.graph import Graph
from repro.graphs.vertex_cover import (
    bar_yehuda_even,
    exact_min_weight_vertex_cover,
    maximalize_independent_set,
)
from repro.pipeline import assess, clean

FD_SETS = (
    FDSet("A -> B"),
    FDSet("A -> B; A B -> C"),
    FDSet("A -> B; B -> A; B -> C"),
    FDSet("A -> B; B -> C"),
    FDSet("A B -> C; C -> A"),
)

SCHEMA = ("A", "B", "C")


def _random_table(rng: random.Random, size: int, with_fresh: bool = True) -> Table:
    """A random table with duplicate rows, mixed weights, and (optionally)
    shared FreshValue cells — the encoder's worst case."""
    fresh_pool = [FreshValue(f"f{i}") for i in range(3)] if with_fresh else []
    values = ["v0", "v1", "v2", 7, ("t", 1), *fresh_pool]
    rows = {}
    weights = {}
    for i in range(size):
        if i and rng.random() < 0.2:
            # Exact duplicate of an earlier row, under a fresh id.
            rows[f"t{i}"] = rows[f"t{rng.randrange(i)}"]
        else:
            rows[f"t{i}"] = tuple(rng.choice(values) for _ in SCHEMA)
        weights[f"t{i}"] = rng.choice([1.0, 0.5, 2.25, 3.0])
    return Table(SCHEMA, rows, weights)


# ---------------------------------------------------------------------------
# 1. Codec round-trip
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_codec_round_trip(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    size = data.draw(st.integers(min_value=0, max_value=25))
    table = _random_table(rng, size)
    codec = kernel.TableCodec.encode(table)
    decoded = codec.decode_table(name=table.name)
    assert decoded == table
    # Identity, not just equality, for every cell: FreshValue equality is
    # identity, so the decoder must return the original objects.
    for i, tid in enumerate(codec.ids):
        assert all(a is b for a, b in zip(codec.decode_row(i), table[tid]))
    # Codes are dense and first-seen ordered per column.
    for j, decoder in enumerate(codec.decoders):
        seen = []
        for row in table.rows().values():
            if row[j] not in seen:
                seen.append(row[j])
        assert decoder == seen


def test_codec_stays_live_under_append():
    table = Table(SCHEMA, {1: ("a", "b", "c")})
    codec = kernel.TableCodec.encode(table)
    codec.append_row(2, ("a", "new", "c"), 2.0)
    assert codec.coded_row(2) == (0, 1, 0)
    assert codec.decode_row(1) == ("a", "new", "c")
    assert codec.weights[1] == 2.0


# ---------------------------------------------------------------------------
# 2. Bitmask branch & bound mirrors the graph reference
# ---------------------------------------------------------------------------

@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_bitmask_cover_identical_to_reference(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    n = data.draw(st.integers(min_value=0, max_value=24))
    p = data.draw(st.sampled_from((0.05, 0.2, 0.45, 0.8)))
    nodes = [f"n{i}" for i in range(n)]
    weights = {v: rng.choice([1.0, 0.5, 2.0, 3.25]) for v in nodes}
    edges = [
        (nodes[i], nodes[j])
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    graph = Graph.from_edges(edges, nodes=nodes, weights=weights)
    reference = exact_min_weight_vertex_cover(graph)

    position = {v: i for i, v in enumerate(nodes)}
    masks = [0] * n
    for u, v in edges:
        masks[position[u]] |= 1 << position[v]
        masks[position[v]] |= 1 << position[u]
    cover_mask = kernel.bitmask_vertex_cover(
        [weights[v] for v in nodes], masks, [str(v) for v in nodes]
    )
    cover = {nodes[i] for i in kernel._bits_ascending(cover_mask)}
    # Identical cover — the strong form; equal weight follows.
    assert cover == reference
    assert graph.is_vertex_cover(cover)


def test_bitmask_rejects_oversized_components():
    n = kernel.MAX_BITMASK_VERTICES + 1
    with pytest.raises(ValueError, match=str(n)):
        kernel.bitmask_vertex_cover([1.0] * n, [0] * n, ["x"] * n)


def test_bitmask_solves_past_64_vertices():
    """A 50-edge perfect matching on 100 vertices — squarely in
    multi-word territory: optimum takes the lighter endpoint per edge."""
    n = 100
    weights = [1.0 if i % 2 else 3.0 for i in range(n)]
    masks = [0] * n
    for i in range(0, n, 2):
        masks[i] |= 1 << (i + 1)
        masks[i + 1] |= 1 << i
    cover_mask = kernel.bitmask_vertex_cover(
        weights, masks, [str(i) for i in range(n)]
    )
    assert sum(weights[i] for i in kernel._bits_ascending(cover_mask)) == 50.0


def test_bitmask_at_the_64_vertex_boundary():
    """A 32-edge perfect matching on exactly 64 vertices: optimum takes
    the lighter endpoint of every edge."""
    n = 64
    weights = [1.0 if i % 2 else 3.0 for i in range(n)]
    masks = [0] * n
    for i in range(0, n, 2):
        masks[i] |= 1 << (i + 1)
        masks[i + 1] |= 1 << i
    cover_mask = kernel.bitmask_vertex_cover(
        weights, masks, [str(i) for i in range(n)]
    )
    assert sum(weights[i] for i in kernel._bits_ascending(cover_mask)) == 32.0


def _sparse_component(rng: random.Random, n: int):
    """A connected sparse weighted graph on *n* vertices: a short-range
    chain plus a handful of chords — enough branching to exercise the
    solver, sparse enough that the branch & bound stays fast at 200
    vertices.  Edges come back in canonical ascending order, so the
    reference ``Graph`` and the bitset masks see the same sequence."""
    nodes = [f"n{i}" for i in range(n)]
    weights = {v: rng.choice([1.0, 0.5, 2.0, 3.25]) for v in nodes}
    edge_set = set()
    for i in range(1, n):
        edge_set.add((rng.randrange(max(0, i - 4), i), i))
    for _ in range(n // 3):
        i = rng.randrange(n)
        j = rng.randrange(n)
        if i != j:
            edge_set.add((min(i, j), max(i, j)))
    edges = [(nodes[i], nodes[j]) for i, j in sorted(edge_set)]
    return nodes, weights, edges


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_multiword_cover_identical_to_reference_65_to_200(data):
    """The multi-word territory of the ISSUE-5 tentpole: components of
    65–200 vertices solved by :class:`BitsetVC` return the *identical*
    cover as the graph-based reference."""
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    n = data.draw(st.integers(min_value=65, max_value=200))
    nodes, weights, edges = _sparse_component(rng, n)
    graph = Graph.from_edges(edges, nodes=nodes, weights=weights)
    reference = exact_min_weight_vertex_cover(graph)

    position = {v: i for i, v in enumerate(nodes)}
    masks = [0] * n
    for u, v in edges:
        masks[position[u]] |= 1 << position[v]
        masks[position[v]] |= 1 << position[u]
    cover_mask = kernel.BitsetVC(
        [weights[v] for v in nodes], masks, [str(v) for v in nodes]
    ).solve()
    cover = {nodes[i] for i in kernel._bits_ascending(cover_mask)}
    assert cover == reference
    assert graph.is_vertex_cover(cover)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_multiword_exact_cover_of_index_matches_reference(data):
    """End-to-end through the portfolio dispatch: a conflict component
    past 64 tuples goes through ``exact_cover_of_index``'s bitset path
    and matches the graph reference run on the same live index."""
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    n = data.draw(st.integers(min_value=65, max_value=140))
    rows = {i: (f"a{i // 3}", f"b{(i + 1) // 3}", "x") for i in range(n)}
    weights = {i: rng.choice([1.0, 2.0, 0.5]) for i in rows}
    fds = FDSet("A -> B; B -> A")
    table = Table(SCHEMA, rows, weights)
    index = ConflictIndex(table, fds, use_kernel=True)
    kept = exact_cover_of_index(index, node_limit=2000)
    reference = exact_min_weight_vertex_cover(index.graph())
    assert kept == [tid for tid in index.ids() if tid in reference]


# ---------------------------------------------------------------------------
# 3. Kernel-built index ≡ dict-built index
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_kernel_index_equals_dict_index(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    fds = data.draw(st.sampled_from(FD_SETS))
    table = _random_table(rng, data.draw(st.integers(0, 25)), with_fresh=False)
    kernel_index = ConflictIndex(table, fds, use_kernel=True)
    dict_index = ConflictIndex(table, fds, use_kernel=False)
    assert kernel_index.num_edges == dict_index.num_edges
    assert kernel_index.edges() == dict_index.edges()
    assert kernel_index.components() == dict_index.components()
    assert kernel_index.consistent_ids() == dict_index.consistent_ids()
    assert kernel_index.conflicting_tuples() == dict_index.conflicting_tuples()
    assert sorted(map(repr, kernel_index.violating_pairs())) == sorted(
        map(repr, dict_index.violating_pairs())
    )
    assert list(kernel_index.violating_pairs()) == list(dict_index.violating_pairs())
    assert kernel_index.matching_lower_bound() == dict_index.matching_lower_bound()
    assert bar_yehuda_even(kernel_index) == bar_yehuda_even(dict_index)
    assert exact_cover_of_index(kernel_index) == exact_cover_of_index(dict_index)


def test_csr_arrays_shape_and_degree():
    table = Table(
        ("A", "B"),
        {1: ("x", "1"), 2: ("x", "2"), 3: ("x", "3"), 4: ("y", "1")},
    )
    index = ConflictIndex(table, FDSet("A -> B"), use_kernel=True)
    kern = index._kernel
    assert kern is not None
    assert kern.num_edges == 3  # triangle among rows 0, 1, 2
    assert kern.degree == [2, 2, 2, 0]
    assert kern.indptr == [0, 2, 4, 6, 6]
    assert len(kern.indices) == 6
    assert kern.weights[:4] == [1.0, 1.0, 1.0, 1.0]


def test_mutation_patches_csr_and_keeps_codec():
    table = Table(("A", "B"), {1: ("x", "1"), 2: ("x", "2")})
    index = ConflictIndex(table, FDSet("A -> B"), use_kernel=True)
    assert index._kernel is not None
    index.insert(3, ("x", "3"))
    assert index._kernel is not None  # the view is patched, not dropped
    assert index._kernel.patched
    assert index._codec is not None  # codes stay live
    assert index._codec.coded_row(3) == (0, 2)
    index.remove(1)
    # Array paths still serve everything correctly after mutation.
    assert index._kernel is not None
    assert index.components() == [[2, 3]]
    assert index._kernel.live_edges == index.num_edges == 1


# ---------------------------------------------------------------------------
# 4. Byte-identity of kernel vs dict pipeline runs
# ---------------------------------------------------------------------------

def _canonical_cells(result, original):
    """Changed cells with FreshValues canonicalised by first occurrence.

    Fresh nulls are identity-equal and their *labels* may come from a
    process-global counter (the U-repair global-fallback path), so two
    equal repairs computed in sequence carry different labels.  What is
    observable — and what byte-identity can mean for fresh values — is
    the equality *pattern*: rank each distinct null by first occurrence
    in (deterministic) changed-cell order and compare the ranks.
    """
    out = {}
    ranks = {}
    for cell in result.cleaned.changed_cells(original):
        value = result.cleaned.value(*cell)
        if isinstance(value, FreshValue):
            value = f"⊥#{ranks.setdefault(value, len(ranks))}"
        out[cell] = value
    return out


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_clean_byte_identical_with_and_without_kernel(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    fds = data.draw(st.sampled_from(FD_SETS))
    strategy = data.draw(st.sampled_from(("deletions", "updates")))
    # "optimal" U-repairs may legitimately raise (and are worst-case
    # exponential) on the hard side of the dichotomy — identically so on
    # both arms, but there is nothing kernel-specific to compare there.
    guarantees = (
        ("best", "optimal", "fast") if strategy == "deletions"
        else ("best", "fast")
    )
    guarantee = data.draw(st.sampled_from(guarantees))
    size = data.draw(st.integers(0, 18))
    rows = {
        i: tuple(f"v{rng.randrange(3)}" for _ in SCHEMA) for i in range(size)
    }
    weights = {i: rng.choice([1.0, 2.0, 0.5]) for i in rows}

    with_kernel = clean(
        Table(SCHEMA, rows, weights), fds, strategy=strategy, guarantee=guarantee
    )
    with kernel.disabled():
        without = clean(
            Table(SCHEMA, rows, weights), fds, strategy=strategy,
            guarantee=guarantee,
        )

    original = Table(SCHEMA, rows, weights)
    assert with_kernel.distance == without.distance
    assert with_kernel.report == without.report
    assert with_kernel.method == without.method
    assert with_kernel.method_counts == without.method_counts
    if strategy == "deletions":
        assert with_kernel.cleaned == without.cleaned
    else:
        assert _canonical_cells(with_kernel, original) == _canonical_cells(
            without, original
        )


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_assess_byte_identical_with_and_without_kernel(data):
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    fds = data.draw(st.sampled_from(FD_SETS))
    decomposed = data.draw(st.booleans())
    size = data.draw(st.integers(0, 20))
    rows = {
        i: tuple(f"v{rng.randrange(3)}" for _ in SCHEMA) for i in range(size)
    }
    weights = {i: rng.choice([1.0, 2.0, 0.5]) for i in rows}
    with_kernel = assess(Table(SCHEMA, rows, weights), fds, decomposed=decomposed)
    with kernel.disabled():
        without = assess(Table(SCHEMA, rows, weights), fds, decomposed=decomposed)
    assert with_kernel == without


def test_parallel_coded_shipping_byte_identical():
    """The process pool receives column-code arrays; kept ids (and hence
    the merged repair and its report) match the serial solve."""
    rng = random.Random(5)
    rows = {}
    for cluster in range(6):
        for k in range(8):
            rows[cluster * 8 + k] = (f"a{cluster}", f"b{rng.randrange(3)}", f"c{cluster}")
    table = Table(SCHEMA, rows)
    table2 = Table(SCHEMA, dict(rows))
    fds = FDSet("A -> B")
    serial = clean(table, fds)
    parallel = clean(table2, fds, parallel=2)
    assert serial.cleaned == parallel.cleaned
    assert serial.distance == parallel.distance
    assert serial.report == parallel.report


def test_coded_component_table_round_trip():
    from repro.core.decompose import Component
    from repro.exec import coded_component_table

    table = Table(SCHEMA, {7: ("x", "y", "z"), 9: ("x", "q", "z")},
                  {7: 2.0, 9: 1.5})
    codec = kernel.TableCodec.encode(table)
    component = Component(0, (7, 9), table, ConflictIndex(table, FDSet("A -> B")))
    ids, columns, weights = component.code_payload(codec)
    rebuilt = coded_component_table(SCHEMA, ids, columns, weights)
    assert rebuilt.ids() == (7, 9)
    assert rebuilt[7] == (0, 0, 0)
    assert rebuilt[9] == (0, 1, 0)
    assert rebuilt.weight(7) == 2.0 and rebuilt.weight(9) == 1.5


# ---------------------------------------------------------------------------
# 5. The wall-clock escape hatch (exact_budget_s)
# ---------------------------------------------------------------------------

def _budget_probe_graph(n=40, seed=4):
    """A component whose branch & bound genuinely branches (so a zero
    budget is observed) — random-ish marriage tangle."""
    rng = random.Random(seed)
    rows = {i: (f"a{rng.randrange(8)}", f"b{rng.randrange(8)}", "x")
            for i in range(n)}
    weights = {i: rng.choice([1.0, 2.0, 0.5]) for i in rows}
    return Table(SCHEMA, rows, weights)


def test_exact_budget_raises_in_both_solvers(monkeypatch):
    from repro.graphs import vertex_cover as vc

    monkeypatch.setattr(kernel, "_BUDGET_CHECK_INTERVAL", 1)
    monkeypatch.setattr(vc, "_BUDGET_CHECK_INTERVAL", 1)
    fds = FDSet("A -> B; B -> A")
    table = _budget_probe_graph()
    index = ConflictIndex(table, fds, use_kernel=True)
    with pytest.raises(kernel.ExactBudgetExceeded):
        exact_cover_of_index(index, budget_s=0.0)
    with pytest.raises(kernel.ExactBudgetExceeded):
        exact_min_weight_vertex_cover(index.graph(), budget_s=0.0)
    # No budget → both still solve, identically.
    kept = exact_cover_of_index(index)
    reference = exact_min_weight_vertex_cover(index.graph())
    assert kept == [tid for tid in index.ids() if tid in reference]


def test_assess_budget_falls_back_to_polynomial_bracket(monkeypatch):
    from repro.graphs import vertex_cover as vc

    monkeypatch.setattr(kernel, "_BUDGET_CHECK_INTERVAL", 1)
    monkeypatch.setattr(vc, "_BUDGET_CHECK_INTERVAL", 1)
    fds = FDSet("A -> B; B -> A")
    table = _budget_probe_graph()
    free = assess(table, fds)
    budgeted = assess(Table(SCHEMA, table.rows(), table.weights()), fds,
                      exact_budget_s=0.0)
    # The polynomial bracket still brackets the certified optimum…
    assert budgeted.lower_bound <= free.lower_bound
    assert budgeted.upper_bound >= free.upper_bound
    # …but no component is certified exactly any more.
    assert free.exact_components >= 1
    assert budgeted.exact_components < free.exact_components
    assert not budgeted.bracket_is_tight


def test_clean_budget_reports_approx_fallback(monkeypatch):
    from repro.graphs import vertex_cover as vc

    monkeypatch.setattr(kernel, "_BUDGET_CHECK_INTERVAL", 1)
    monkeypatch.setattr(vc, "_BUDGET_CHECK_INTERVAL", 1)
    # APX-complete Δ: the portfolio plans "exact" (not the dichotomy
    # recursion) for the under-threshold component, so the budget
    # fallback is observable in the method mix.
    fds = FDSet("A -> B; B -> C")
    table = _budget_probe_graph()
    free = clean(table, fds)
    budgeted = clean(Table(SCHEMA, table.rows(), table.weights()), fds,
                     exact_budget_s=0.0)
    assert free.optimal and free.method_counts == {"exact": free.component_count}
    # The fallback is visible, not silent: the method mix, optimality
    # flag, and ratio bound all say "approximated".
    assert budgeted.method_counts.get("approx", 0) >= 1
    assert not budgeted.optimal
    assert budgeted.ratio_bound == 2.0
    assert budgeted.distance >= free.distance


def test_clean_budget_on_global_path(monkeypatch):
    """decomposed=False honours the budget too: guarantee='best' falls
    back to the 2-approximation, guarantee='optimal' fails loudly."""
    from repro.core.exact import ExactBudgetExceeded
    from repro.graphs import vertex_cover as vc

    monkeypatch.setattr(kernel, "_BUDGET_CHECK_INTERVAL", 1)
    monkeypatch.setattr(vc, "_BUDGET_CHECK_INTERVAL", 1)
    fds = FDSet("A -> B; B -> C")
    table = _budget_probe_graph()
    fallback = clean(table, fds, decomposed=False, exact_budget_s=0.0)
    assert not fallback.optimal
    assert fallback.ratio_bound == 2.0
    with pytest.raises(ExactBudgetExceeded):
        clean(Table(SCHEMA, table.rows(), table.weights()), fds,
              decomposed=False, guarantee="optimal", exact_budget_s=0.0)


# ---------------------------------------------------------------------------
# 6. Incremental CSR: mutation patches the view, never serves stale state
# ---------------------------------------------------------------------------

def test_stale_kernel_view_raises_on_bypassed_mutation():
    table = Table(("A", "B"), {1: ("x", "1"), 2: ("x", "2"), 3: ("y", "3")})
    index = ConflictIndex(table, FDSet("A -> B"), use_kernel=True)
    # A mutation that bypasses insert()/remove() (the dropped-invalidation
    # bug class) must fail loudly at the next kernel read…
    del index._live[3]
    with pytest.raises(RuntimeError, match="out of sync"):
        index.components()
    with pytest.raises(RuntimeError, match="out of sync"):
        index.kernel_bye_cover()
    with pytest.raises(RuntimeError, match="out of sync"):
        index.kernel_greedy_survivors()
    # …and the proper mutation path keeps serving.
    index._live[3] = 1.0
    assert index.components() == [[1, 2]]
    index.remove(3)
    assert index.components() == [[1, 2]]


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_incremental_csr_equals_dict_under_interleaved_mutations(data):
    """After any interleaving of inserts and removes, the patched kernel
    view answers every read — components (both the index route and the
    patched CSR sweep itself), edges, BYE, greedy, maximalisation,
    matching bound — identically to a dict-built index fed the same
    deltas."""
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    fds = data.draw(st.sampled_from(FD_SETS))
    table = _random_table(rng, data.draw(st.integers(2, 22)), with_fresh=False)
    kernel_index = ConflictIndex(table, fds, use_kernel=True)
    dict_table = Table(SCHEMA, table.rows(), table.weights())
    dict_index = ConflictIndex(dict_table, fds, use_kernel=False)
    rows_now = table.rows()
    weights_now = table.weights()
    live = list(kernel_index.ids())
    next_id = 10_000
    for _ in range(data.draw(st.integers(1, 14))):
        if live and rng.random() < 0.45:
            victim = live.pop(rng.randrange(len(live)))
            kernel_index.remove(victim)
            dict_index.remove(victim)
            del rows_now[victim]
            del weights_now[victim]
        else:
            row = tuple(f"v{rng.randrange(3)}" for _ in SCHEMA)
            weight = rng.choice([1.0, 2.0])
            kernel_index.insert(next_id, row, weight)
            dict_index.insert(next_id, row, weight)
            rows_now[next_id] = row
            weights_now[next_id] = weight
            live.append(next_id)
            next_id += 1
    assert kernel_index.components() == dict_index.components()
    assert kernel_index.edges() == dict_index.edges()
    assert kernel_index.num_edges == dict_index.num_edges
    assert bar_yehuda_even(kernel_index) == bar_yehuda_even(dict_index)
    assert kernel_index.matching_lower_bound() == dict_index.matching_lower_bound()
    kern = kernel_index._kernel
    assert kern is not None  # patched or compacted — never dropped
    assert kern.live_edges == kernel_index.num_edges
    if kern.patched:
        # A direct array sweep of a patched view refuses loudly (the
        # index's live sweep is the patched components path)…
        with pytest.raises(RuntimeError, match="patched"):
            kernel.components_csr(kern)
    else:
        # …while a compacted (rebuilt) view serves it directly.
        ids = kern.codec.ids
        assert [
            [ids[i] for i in members]
            for members in kernel.components_csr(kern)
        ] == dict_index.components()
    survivors = kernel_index.kernel_greedy_survivors()
    if survivors is not None and live:
        from repro.core.approx import greedy_s_repair

        snapshot = Table(SCHEMA, rows_now, weights_now)
        with kernel.disabled():
            reference = greedy_s_repair(snapshot, fds)
        kernel_repair = maximalize_independent_set(kernel_index, survivors)
        assert kernel_repair == set(reference.repair.ids())


def test_compaction_rebuilds_the_view():
    rng = random.Random(9)
    rows = {i: (f"a{i % 40}", f"b{rng.randrange(3)}", "x") for i in range(400)}
    table = Table(SCHEMA, rows)
    index = ConflictIndex(table, FDSet("A -> B"), use_kernel=True)
    for tid in range(0, 300):
        index.remove(tid)
    kern = index._kernel
    assert kern is not None
    # 300 removals is far past the churn bound: the view was compacted
    # back to plain CSR over the live rows at least once, resetting the
    # since-build churn counters.
    assert kern.removed_count + kern.appended_count < 64
    dict_index = ConflictIndex(
        table.subset(range(300, 400)), FDSet("A -> B"), use_kernel=False
    )
    assert index.components() == dict_index.components()
    assert bar_yehuda_even(index) == bar_yehuda_even(dict_index)


# ---------------------------------------------------------------------------
# 7. Array-native approximation loops ≡ Graph reference
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_greedy_and_approx_byte_identical_with_and_without_kernel(data):
    """The approximation tier — BYE + maximalisation and the greedy
    lazy-heap loop — returns byte-identical repairs on the array paths
    and the dict reference, including tables whose conflict graph
    exceeds 64 tuples (multi-word masks) and prebuilt mutated indexes."""
    from repro.core.approx import approx_s_repair, greedy_s_repair

    rng = random.Random(data.draw(st.integers(0, 10_000)))
    fds = data.draw(st.sampled_from(FD_SETS))
    size = data.draw(st.integers(0, 90))
    rows = {
        i: tuple(f"v{rng.randrange(4)}" for _ in SCHEMA) for i in range(size)
    }
    weights = {i: rng.choice([1.0, 2.0, 0.5]) for i in rows}

    kernel_greedy = greedy_s_repair(Table(SCHEMA, rows, weights), fds)
    kernel_approx = approx_s_repair(Table(SCHEMA, rows, weights), fds)
    with kernel.disabled():
        dict_greedy = greedy_s_repair(Table(SCHEMA, rows, weights), fds)
        dict_approx = approx_s_repair(Table(SCHEMA, rows, weights), fds)
    assert kernel_greedy.repair == dict_greedy.repair
    assert kernel_greedy.distance == dict_greedy.distance
    assert kernel_approx.repair == dict_approx.repair
    assert kernel_approx.distance == dict_approx.distance


def test_maximalize_fast_path_matches_reference_on_mask_view():
    """A projected component index (mask view, no CSR) grows an
    independent set exactly like the Graph reference."""
    rng = random.Random(2)
    rows = {i: (f"a{i % 5}", f"b{rng.randrange(3)}", "x") for i in range(60)}
    weights = {i: rng.choice([1.0, 2.0, 3.0]) for i in rows}
    table = Table(SCHEMA, rows, weights)
    fds = FDSet("A -> B")
    from repro.core.decompose import decompose

    for component in decompose(table, fds).components:
        cover = bar_yehuda_even(component.index)
        independent = {tid for tid in component.table.ids() if tid not in cover}
        fast = maximalize_independent_set(component.index, independent)
        grown = set(independent)
        for v in sorted(
            (v for v in component.index.nodes() if v not in grown),
            key=lambda v: (-component.index.weight(v), str(v)),
        ):
            if not (component.index.neighbors(v) & grown):
                grown.add(v)
        assert fast == grown


# ---------------------------------------------------------------------------
# 8. The global switch and the CLI flag
# ---------------------------------------------------------------------------

def test_disabled_context_restores_flag():
    assert kernel.enabled()
    with kernel.disabled():
        assert not kernel.enabled()
        with kernel.disabled():
            assert not kernel.enabled()
        assert not kernel.enabled()
    assert kernel.enabled()


def test_cli_no_kernel_flag(tmp_path, capsys, monkeypatch):
    from repro.cli import main
    from repro.io.tables import table_to_csv

    table = Table(SCHEMA, {1: ("a", "b", "c"), 2: ("a", "x", "c")})
    csv_path = tmp_path / "t.csv"
    table_to_csv(table, str(csv_path))

    assert main(["assess", str(csv_path), "A -> B"]) == 0
    with_kernel = capsys.readouterr().out
    # The flag must actually flip the global switch before any build.
    monkeypatch.setattr(kernel, "_ENABLED", True)
    assert main(["assess", str(csv_path), "A -> B", "--no-kernel"]) == 0
    without = capsys.readouterr().out
    assert not kernel.enabled()
    monkeypatch.setattr(kernel, "_ENABLED", True)
    assert with_kernel == without


def test_cli_exact_budget_flag(tmp_path, capsys):
    """--exact-budget threads end-to-end on assess and the repair
    commands; a generous budget changes nothing."""
    from repro.cli import main
    from repro.io.tables import table_to_csv

    table = Table(SCHEMA, {1: ("a", "b", "c"), 2: ("a", "x", "c")})
    csv_path = tmp_path / "t.csv"
    table_to_csv(table, str(csv_path))

    assert main(["assess", str(csv_path), "A -> B"]) == 0
    free = capsys.readouterr().out
    assert main(["assess", str(csv_path), "A -> B", "--exact-budget", "60"]) == 0
    assert capsys.readouterr().out == free
    assert main(["s-repair", str(csv_path), "A -> B",
                 "--exact-budget", "60", "--portfolio"]) == 0
    assert "(optimal)" in capsys.readouterr().out
