"""Unit tests for the graph substrate (graph, vertex cover, matching)."""

import itertools
import random

import pytest

from repro.graphs.bipartite import (
    hungarian_max_weight,
    matching_weight,
    max_weight_bipartite_matching,
)
from repro.graphs.graph import Graph
from repro.graphs.vertex_cover import (
    bar_yehuda_even,
    exact_min_weight_vertex_cover,
    greedy_vertex_cover,
    maximalize_independent_set,
)


def brute_force_min_vc(graph: Graph) -> float:
    """Reference optimum by enumerating all vertex subsets."""
    nodes = graph.nodes()
    best = float("inf")
    for r in range(len(nodes) + 1):
        for subset in itertools.combinations(nodes, r):
            if graph.is_vertex_cover(subset):
                best = min(best, graph.total_weight(subset))
    return best


def random_graph(rng: random.Random, n: int, p: float, weighted: bool) -> Graph:
    g = Graph()
    for i in range(n):
        g.add_node(i, weight=rng.choice((1, 2, 3)) if weighted else 1.0)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestGraph:
    def test_add_and_query(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.has_edge("a", "b") and g.has_edge("b", "a")
        assert g.degree("b") == 2
        assert g.num_edges() == 2
        assert set(g.neighbors("b")) == {"a", "c"}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph().add_edge("a", "a")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Graph().add_node("a", weight=0)

    def test_remove_node(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        g.remove_node("b")
        assert g.num_edges() == 0 and "b" not in g

    def test_copy_is_independent(self):
        g = Graph.from_edges([("a", "b")])
        h = g.copy()
        h.remove_node("a")
        assert g.has_edge("a", "b") and "a" not in h

    def test_edges_listed_once(self):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        assert len(g.edges()) == 3

    def test_independent_set_and_cover(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        assert g.is_independent_set({"a", "c"})
        assert not g.is_independent_set({"a", "b"})
        assert g.is_vertex_cover({"b"})
        assert not g.is_vertex_cover({"a"})

    def test_connected_components(self):
        g = Graph.from_edges([("a", "b")], nodes=["c"])
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [1, 2]

    def test_subgraph(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        sub = g.subgraph({"a", "b"})
        assert sub.num_edges() == 1 and len(sub) == 2

    def test_max_degree(self):
        g = Graph.from_edges([("a", "b"), ("a", "c"), ("a", "d")])
        assert g.max_degree() == 3
        assert Graph().max_degree() == 0


class TestVertexCover:
    def test_exact_matches_brute_force_unweighted(self):
        rng = random.Random(11)
        for _ in range(25):
            g = random_graph(rng, rng.randrange(2, 9), 0.4, weighted=False)
            exact = exact_min_weight_vertex_cover(g)
            assert g.is_vertex_cover(exact)
            assert g.total_weight(exact) == pytest.approx(brute_force_min_vc(g))

    def test_exact_matches_brute_force_weighted(self):
        rng = random.Random(13)
        for _ in range(25):
            g = random_graph(rng, rng.randrange(2, 9), 0.5, weighted=True)
            exact = exact_min_weight_vertex_cover(g)
            assert g.is_vertex_cover(exact)
            assert g.total_weight(exact) == pytest.approx(brute_force_min_vc(g))

    def test_weighted_star_prefers_center(self):
        """Regression: the pendant rule must not grab cheap leaves blindly."""
        g = Graph()
        g.add_node("hub", weight=10)
        for i in range(5):
            g.add_node(i, weight=3)
            g.add_edge("hub", i)
        cover = exact_min_weight_vertex_cover(g)
        assert g.total_weight(cover) == 10

    def test_bye_is_cover_and_2_approximate(self):
        rng = random.Random(17)
        for _ in range(30):
            g = random_graph(rng, rng.randrange(2, 10), 0.4, weighted=True)
            approx = bar_yehuda_even(g)
            assert g.is_vertex_cover(approx)
            opt = g.total_weight(exact_min_weight_vertex_cover(g))
            assert g.total_weight(approx) <= 2 * opt + 1e-9

    def test_greedy_is_cover(self):
        rng = random.Random(19)
        for _ in range(10):
            g = random_graph(rng, 8, 0.4, weighted=True)
            assert g.is_vertex_cover(greedy_vertex_cover(g))

    def test_empty_graph(self):
        g = Graph()
        assert exact_min_weight_vertex_cover(g) == set()
        assert bar_yehuda_even(g) == set()

    def test_node_limit_guard(self):
        g = Graph()
        for i in range(5):
            g.add_node(i)
        with pytest.raises(ValueError):
            exact_min_weight_vertex_cover(g, node_limit=3)

    def test_maximalize_independent_set(self):
        g = Graph.from_edges([("a", "b")], nodes=["c", "d"])
        grown = maximalize_independent_set(g, {"a"})
        assert grown == {"a", "c", "d"}
        assert g.is_independent_set(grown)


class TestHungarian:
    def test_tiny_known_case(self):
        pairs = hungarian_max_weight([[3, 1], [1, 3]])
        assert set(pairs) == {(0, 0), (1, 1)}

    def test_prefers_heavy_single_edge(self):
        # Taking the single heavy edge beats two light ones.
        pairs = hungarian_max_weight([[10, 4], [4, 0]])
        weight = sum([[10, 4], [4, 0]][i][j] for i, j in pairs)
        assert weight == 10 + 0 or weight == 10  # (0,0) alone or with (1,1)=0
        assert (0, 0) in pairs

    def test_rectangular(self):
        pairs = hungarian_max_weight([[5, 1, 1]])
        assert pairs == [(0, 0)]

    def test_empty(self):
        assert hungarian_max_weight([]) == []

    def test_zero_matrix_matches_nothing(self):
        assert hungarian_max_weight([[0, 0], [0, 0]]) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hungarian_max_weight([[-1]])

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            hungarian_max_weight([[1, 2], [3]])

    def test_against_scipy(self):
        import numpy as np
        from scipy.optimize import linear_sum_assignment

        rng = random.Random(23)
        for _ in range(30):
            n, m = rng.randrange(1, 7), rng.randrange(1, 7)
            matrix = [
                [rng.randrange(0, 10) for _ in range(m)] for _ in range(n)
            ]
            pairs = hungarian_max_weight(matrix)
            ours = sum(matrix[i][j] for i, j in pairs)
            # scipy maximises over square-padded matrix.
            size = max(n, m)
            padded = np.zeros((size, size))
            padded[:n, :m] = np.array(matrix)
            rows, cols = linear_sum_assignment(padded, maximize=True)
            theirs = padded[rows, cols].sum()
            assert ours == pytest.approx(theirs)

    def test_against_networkx(self):
        import networkx as nx

        rng = random.Random(29)
        for _ in range(15):
            n, m = rng.randrange(1, 6), rng.randrange(1, 6)
            weights = {}
            for i in range(n):
                for j in range(m):
                    if rng.random() < 0.6:
                        weights[(f"l{i}", f"r{j}")] = rng.randrange(1, 9)
            left = [f"l{i}" for i in range(n)]
            right = [f"r{j}" for j in range(m)]
            pairs = max_weight_bipartite_matching(left, right, weights)
            ours = matching_weight(pairs, weights)
            g = nx.Graph()
            g.add_nodes_from(left + right)
            for (l, r), w in weights.items():
                g.add_edge(l, r, weight=w)
            theirs = sum(
                g[u][v]["weight"] for u, v in nx.max_weight_matching(g)
            )
            assert ours == pytest.approx(theirs)

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            max_weight_bipartite_matching(["l"], ["r"], {("l", "zzz"): 1.0})
