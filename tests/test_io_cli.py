"""Tests for table serialisation and the command-line interface."""

import pytest

from repro.cli import main
from repro.core.fd import FDSet
from repro.datagen.office import office_table
from repro.io import table_from_csv, table_from_json, table_to_csv, table_to_json


class TestCsv:
    def test_round_trip(self, tmp_path):
        t = office_table()
        path = tmp_path / "office.csv"
        table_to_csv(t, path)
        back = table_from_csv(path)
        assert back.schema == t.schema
        assert back.ids() == t.ids()
        assert back.weights() == t.weights()
        # Values come back as strings; equality patterns are preserved.
        assert back[1][0] == "HQ"

    def test_round_trip_via_text(self):
        t = office_table()
        text = table_to_csv(t)
        back = table_from_csv("unused", text=text)
        assert len(back) == 4

    def test_string_ids_preserved(self):
        from repro.core.table import Table

        t = Table(("A",), {"row-1": ("x",)}, {"row-1": 2.0})
        back = table_from_csv("unused", text=table_to_csv(t))
        assert back.ids() == ("row-1",)

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            table_from_csv("unused", text="A,B\nx,y\n")


class TestJson:
    def test_round_trip(self, tmp_path):
        t = office_table()
        path = tmp_path / "office.json"
        table_to_json(t, path)
        back = table_from_json(path)
        assert back.schema == t.schema
        assert back.weights() == t.weights()

    def test_name_preserved(self):
        t = office_table()
        back = table_from_json("unused", text=table_to_json(t))
        assert back.name == "Office"


@pytest.fixture
def office_csv(tmp_path):
    path = tmp_path / "office.csv"
    table_to_csv(office_table(), path)
    return str(path)


OFFICE_FDS = "facility -> city; facility room -> floor"


class TestCli:
    def test_classify_tractable(self, capsys):
        assert main(["classify", OFFICE_FDS]) == 0
        out = capsys.readouterr().out
        assert "PTIME" in out
        assert "common lhs" in out

    def test_classify_hard(self, capsys):
        assert main(["classify", "A -> B; B -> C"]) == 0
        out = capsys.readouterr().out
        assert "APX-complete" in out
        assert "Lemma" in out

    def test_s_repair(self, office_csv, capsys, tmp_path):
        out_path = tmp_path / "repair.csv"
        assert main(["s-repair", office_csv, OFFICE_FDS, "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "deleted weight: 2" in out
        repaired = table_from_csv(out_path)
        assert len(repaired) == 2

    def test_s_repair_approx(self, office_csv, capsys):
        assert main(["s-repair", office_csv, OFFICE_FDS, "--approx"]) == 0
        out = capsys.readouterr().out
        assert "2-approximation" in out

    def test_u_repair(self, office_csv, capsys):
        assert main(["u-repair", office_csv, OFFICE_FDS]) == 0
        out = capsys.readouterr().out
        assert "update distance: 2" in out
        assert "optimal" in out

    def test_mpd(self, tmp_path, capsys):
        from repro.core.table import Table

        t = Table.from_rows(
            ("A", "B"), [("a", "1"), ("a", "2")], weights=[0.9, 0.6]
        )
        path = tmp_path / "prob.csv"
        table_to_csv(t, path)
        assert main(["mpd", str(path), "A -> B"]) == 0
        out = capsys.readouterr().out
        assert "probability:" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_assess(self, office_csv, capsys):
        assert main(["assess", office_csv, OFFICE_FDS]) == 0
        out = capsys.readouterr().out
        assert "conflicting pairs: 2" in out
        assert "conflict components: 1" in out
        assert "bracket" in out
        assert "PTIME" in out

    def test_assess_global(self, office_csv, capsys):
        assert main(["assess", office_csv, OFFICE_FDS, "--global"]) == 0
        out = capsys.readouterr().out
        assert "conflicting pairs: 2" in out

    def test_s_repair_guarantee_fast(self, office_csv, capsys):
        assert main(["s-repair", office_csv, OFFICE_FDS, "--guarantee", "fast"]) == 0
        out = capsys.readouterr().out
        assert "2-approximation" in out

    def test_s_repair_portfolio_parallel(self, office_csv, capsys, tmp_path):
        out_path = tmp_path / "repair.csv"
        assert (
            main(
                [
                    "s-repair", office_csv, OFFICE_FDS,
                    "--portfolio", "--parallel", "2", "--out", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "conflict components: 1" in out
        assert "deleted weight: 2" in out
        assert len(table_from_csv(out_path)) == 2

    def test_s_repair_global_path(self, office_csv, capsys):
        assert main(["s-repair", office_csv, OFFICE_FDS, "--global"]) == 0
        out = capsys.readouterr().out
        assert "deleted weight: 2" in out

    def test_u_repair_guarantee_optimal(self, office_csv, capsys):
        assert main(["u-repair", office_csv, OFFICE_FDS, "--guarantee", "optimal"]) == 0
        out = capsys.readouterr().out
        assert "update distance: 2" in out
        assert "optimal" in out


class TestSerialisationSemantics:
    def test_fresh_values_serialise_as_labels(self):
        """Labelled nulls survive JSON as their labels (plain strings):
        the equality pattern within one file is preserved, but identity
        with other in-memory nulls is intentionally not."""
        from repro.core.table import FreshValue, Table

        null = FreshValue("⊥x")
        t = Table(("A", "B"), {1: (null, 1), 2: (null, 2)})
        back = table_from_json("x", text=table_to_json(t))
        assert back[1][0] == back[2][0] == "⊥x"

    def test_cli_mpd_out_roundtrip(self, tmp_path, capsys):
        from repro.core.table import Table

        t = Table.from_rows(("A", "B"), [("a", "1"), ("a", "2")], weights=[0.9, 0.6])
        src = tmp_path / "prob.csv"
        out = tmp_path / "mpd.csv"
        table_to_csv(t, src)
        assert main(["mpd", str(src), "A -> B", "--out", str(out)]) == 0
        capsys.readouterr()
        result = table_from_csv(out)
        assert len(result) == 1 and result[1] == ("a", "1")

    def test_cli_u_repair_out(self, office_csv, tmp_path, capsys):
        out = tmp_path / "update.csv"
        assert main(["u-repair", office_csv, OFFICE_FDS, "--out", str(out)]) == 0
        capsys.readouterr()
        result = table_from_csv(out)
        assert len(result) == 4  # updates preserve all identifiers
