"""Property-based cross-validation of the exact solvers (hypothesis).

The conflict-driven branch & bound (:func:`exact_u_repair`) is validated
against the subset-enumeration reference
(:func:`exact_u_repair_exhaustive`), and the exact S-repair against full
subset enumeration — the two pairs of independent implementations must
agree on every random instance.  The implicant fixpoint is validated
against subset enumeration likewise.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.approx import minimal_implicants, minimal_implicants_brute
from repro.core.checking import is_u_repair
from repro.core.exact import (
    ExactSearchLimit,
    brute_force_s_repair,
    exact_s_repair,
    exact_u_repair,
    exact_u_repair_exhaustive,
)
from repro.core.fd import FD, FDSet
from repro.core.table import Table
from repro.core.violations import satisfies

ATTRS = list("ABC")

nonempty = st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2).map(frozenset)
maybe_empty = st.sets(st.sampled_from(ATTRS), max_size=2).map(frozenset)
fd_strategy = st.builds(FD, maybe_empty, nonempty)
fdset_strategy = st.lists(fd_strategy, min_size=1, max_size=3).map(FDSet)


def tiny_tables(max_size=4):
    value = st.integers(min_value=0, max_value=1)
    row = st.tuples(value, value, value)
    weight = st.sampled_from((1.0, 2.0))
    return st.lists(st.tuples(row, weight), min_size=1, max_size=max_size).map(
        lambda pairs: Table.from_rows(
            ("A", "B", "C"), [p[0] for p in pairs], [p[1] for p in pairs]
        )
    )


@settings(max_examples=50, deadline=None)
@given(fdset_strategy, tiny_tables())
def test_bb_matches_exhaustive_u_repair(fds, table):
    bb = exact_u_repair(table, fds)
    assert satisfies(bb, fds)
    try:
        reference = exact_u_repair_exhaustive(table, fds)
    except ExactSearchLimit:
        # The enumeration reference blew its assignment budget (rare:
        # consensus-heavy Δ forcing many changed cells); the cross-check
        # is vacuous on such an example, not falsified.
        assume(False)
    assert abs(table.dist_upd(bb) - table.dist_upd(reference)) < 1e-9


@settings(max_examples=50, deadline=None)
@given(fdset_strategy, tiny_tables())
def test_vc_matches_subset_enumeration_s_repair(fds, table):
    vc = exact_s_repair(table, fds)
    reference = brute_force_s_repair(table, fds)
    assert satisfies(vc, fds)
    assert abs(table.dist_sub(vc) - table.dist_sub(reference)) < 1e-9


@settings(max_examples=40, deadline=None)
@given(fdset_strategy, tiny_tables(max_size=3))
def test_optimal_u_repairs_are_local_repairs(fds, table):
    """Optimal U-repairs are U-repairs in the strict local sense: no
    subset of changed cells can be restored (else a cheaper consistent
    update would exist)."""
    optimum = exact_u_repair(table, fds)
    if len(optimum.changed_cells(table)) <= 10:
        assert is_u_repair(table, fds, optimum)


@settings(max_examples=50, deadline=None)
@given(fdset_strategy, st.sampled_from(ATTRS))
def test_implicant_fixpoint_matches_enumeration(fds, attribute):
    fast = set(minimal_implicants(fds, attribute))
    slow = set(minimal_implicants_brute(fds, attribute))
    if attribute not in fds.attributes:
        slow = {x for x in slow if x}  # enumeration includes ∅ only when
        # the attribute is consensus-derivable, which needs it in attr(Δ)
    assert fast == slow or (
        attribute not in fds.attributes and fast == set()
    )


@settings(max_examples=40, deadline=None)
@given(fdset_strategy, tiny_tables())
def test_corollary_45_sandwich_universal(fds, table):
    """Corollary 4.5 on arbitrary consensus-free FD sets: the optimal
    U-repair distance sits between the optimal S-repair distance and
    mlc(Δ) times it."""
    normalised = fds.with_singleton_rhs().without_trivial()
    if normalised.is_trivial or not normalised.is_consensus_free:
        return
    s_dist = table.dist_sub(exact_s_repair(table, normalised))
    u_dist = table.dist_upd(exact_u_repair(table, normalised))
    assert s_dist <= u_dist + 1e-9
    assert u_dist <= normalised.mlc() * s_dist + 1e-9
