"""Property-based tests for the repair algorithms (hypothesis).

Random tables (weighted, with duplicates) are pushed through the full
algorithm stack, asserting the paper's invariants:

* ``OptSRepair`` output is a consistent subset whose distance matches the
  exact vertex-cover optimum (Theorem 3.2) — on FD sets passing
  ``OSRSucceeds``;
* the 2-approximation never exceeds twice the optimum (Proposition 3.3);
* the dispatcher's U-repairs are consistent updates, optimal ones sit in
  the Corollary 4.5 sandwich, and approximate ones respect their ratio.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import approx_s_repair
from repro.core.dichotomy import osr_succeeds
from repro.core.exact import exact_s_repair
from repro.core.fd import FDSet
from repro.core.srepair import opt_s_repair
from repro.core.table import Table
from repro.core.urepair import u_repair
from repro.core.violations import satisfies

TRACTABLE_FDS = [
    FDSet("A -> B"),
    FDSet("A -> B; A -> C"),
    FDSet("A -> B; A B -> C"),
    FDSet("-> A; B -> C"),
    FDSet("A -> B; B -> A"),
    FDSet("A -> B; B -> A; B -> C"),
]

HARD_FDS = [
    FDSet("A -> B; B -> C"),
    FDSet("A -> C; B -> C"),
    FDSet("A B -> C; C -> B"),
]

U_TRACTABLE_FDS = [
    FDSet("A -> B"),
    FDSet("A -> B; A -> C"),
    FDSet("A -> B; B -> A"),
    FDSet("-> A; B -> C"),
]


def tables(max_size=9, domain=3):
    """Random weighted tables over schema (A, B, C), duplicates allowed."""
    value = st.integers(min_value=0, max_value=domain - 1)
    row = st.tuples(value, value, value)
    weight = st.sampled_from((1.0, 1.0, 2.0, 3.0))
    return st.lists(
        st.tuples(row, weight), min_size=0, max_size=max_size
    ).map(
        lambda pairs: Table.from_rows(
            ("A", "B", "C"),
            [p[0] for p in pairs],
            [p[1] for p in pairs],
        )
    )


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(TRACTABLE_FDS), tables())
def test_opt_s_repair_is_optimal_consistent_subset(fds, table):
    assert osr_succeeds(fds)
    repair = opt_s_repair(fds, table)
    assert repair.is_subset_of(table)
    assert satisfies(repair, fds)
    exact = exact_s_repair(table, fds)
    assert abs(table.dist_sub(repair) - table.dist_sub(exact)) < 1e-9


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(TRACTABLE_FDS + HARD_FDS), tables())
def test_two_approximation_invariants(fds, table):
    result = approx_s_repair(table, fds)
    assert satisfies(result.repair, fds)
    opt = table.dist_sub(exact_s_repair(table, fds))
    assert result.distance <= 2 * opt + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(HARD_FDS), tables())
def test_exact_baseline_dominates_any_consistent_subset(fds, table):
    """The exact repair's kept weight is maximal among a sample of greedy
    consistent subsets."""
    exact = exact_s_repair(table, fds)
    assert satisfies(exact, fds)
    # Greedy heaviest-first subset as a competitor.
    kept = []
    for tid in sorted(table.ids(), key=lambda i: -table.weight(i)):
        candidate = table.subset(kept + [tid])
        if satisfies(candidate, fds):
            kept.append(tid)
    assert exact.total_weight() >= table.subset(kept).total_weight() - 1e-9


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(U_TRACTABLE_FDS), tables(max_size=6, domain=2))
def test_u_repair_dispatcher_invariants(fds, table):
    result = u_repair(table, fds)
    assert result.update.is_update_of(table)
    assert satisfies(result.update, fds)
    assert result.optimal  # these FD sets are all in the tractable cases
    # Corollary 4.5 sandwich against the exact S-repair distance.
    s_dist = table.dist_sub(exact_s_repair(table, fds))
    assert s_dist <= result.distance + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(HARD_FDS), tables(max_size=5, domain=2))
def test_u_repair_approx_ratio_bound(fds, table):
    result = u_repair(table, fds, allow_exact_search=False)
    assert satisfies(result.update, fds)
    s_dist = table.dist_sub(exact_s_repair(table, fds))
    # dist_upd(approx) ≤ mlc · dist_sub(2-approx S) ≤ 2·mlc · dist_sub(S*)
    # and dist_sub(S*) ≤ dist_upd(U*), hence the advertised bound.
    assert result.distance <= result.ratio_bound * max(s_dist, 0) + 1e-9 or s_dist == 0


@settings(max_examples=30, deadline=None)
@given(tables(max_size=8))
def test_mpd_reduction_against_brute_force(table):
    from repro.core.mpd import brute_force_mpd, most_probable_database

    # Rescale weights into (0, 1].
    prob = Table(
        table.schema,
        table.rows(),
        {tid: min(table.weight(tid) / 3.0 + 0.05, 1.0) for tid in table.ids()},
    )
    fds = FDSet("A -> B")
    ours = most_probable_database(prob, fds)
    reference = brute_force_mpd(prob, fds)
    assert abs(ours.probability - reference.probability) < 1e-9
