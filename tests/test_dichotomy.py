"""Tests for Algorithm 2 (``OSRSucceeds``) and the dichotomy classifier."""

import pytest

from repro.core.dichotomy import (
    DELTA_A_B_C,
    DELTA_A_C_B,
    DELTA_AB_C_B,
    DELTA_TRIANGLE,
    HARD_FD_SETS,
    classify,
    classify_stuck,
    osr_succeeds,
    simplification_trace,
)
from repro.core.fd import FDSet

from repro.testing import DELTA_A_IFF_B_TO_C, DELTA_SSN, EXAMPLE_38


class TestOSRSucceeds:
    def test_running_example(self, office_delta):
        """Example 3.5: the Office Δ passes."""
        assert osr_succeeds(office_delta)

    def test_a_iff_b_to_c_passes(self):
        """Example 3.5: ``Δ_{A↔B→C}`` passes (marriage then consensus)."""
        assert osr_succeeds(DELTA_A_IFF_B_TO_C)

    def test_ssn_delta_passes(self):
        """Example 3.5: Δ1 over the ssn schema passes."""
        assert osr_succeeds(DELTA_SSN)

    @pytest.mark.parametrize("name,fds", sorted(HARD_FD_SETS.items()), ids=lambda x: str(x))
    def test_table1_all_fail(self, name, fds):
        assert not osr_succeeds(fds)

    def test_example_35_failures(self):
        """Example 3.5: {A→B, B→C} and {A→B, C→D} fail."""
        assert not osr_succeeds(FDSet("A -> B; B -> C"))
        assert not osr_succeeds(FDSet("A -> B; C -> D"))

    def test_example_47_passport(self):
        """Example 4.7: Δ1 (id/country/passport) passes;
        Δ2 (state city→zip, state zip→country) fails."""
        assert osr_succeeds(
            FDSet("id country -> passport; id passport -> country")
        )
        assert not osr_succeeds(
            FDSet("state city -> zip; state zip -> country")
        )

    def test_trivial_and_empty(self):
        assert osr_succeeds(FDSet())
        assert osr_succeeds(FDSet("A B -> A"))

    def test_consensus_only(self):
        assert osr_succeeds(FDSet("-> A; -> B"))

    def test_chain_sets_always_pass(self):
        """Corollary 3.6: chain FD sets are on the tractable side."""
        chains = [
            FDSet("A -> B; A B -> C; A B C -> D"),
            FDSet("facility -> city; facility room -> floor"),
            FDSet("-> A; A -> B"),
            FDSet("A -> B C D"),
        ]
        for fds in chains:
            assert fds.with_singleton_rhs().is_chain or fds.is_chain
            assert osr_succeeds(fds), fds

    def test_success_depends_only_on_fds(self):
        """The verdict is a function of Δ alone (Section 3.2)."""
        fds = FDSet("A -> B; B -> A; B -> C")
        assert osr_succeeds(fds) == osr_succeeds(FDSet(str_fds(fds)))


def str_fds(fds: FDSet) -> str:
    return "; ".join(
        f"{' '.join(sorted(fd.lhs))} -> {' '.join(sorted(fd.rhs))}" for fd in fds
    )


class TestTraces:
    def test_running_example_trace_kinds(self, office_delta):
        """Example 3.5's chain: common lhs ⇛ consensus ⇛ common lhs ⇛
        consensus."""
        steps = simplification_trace(office_delta)
        assert [s.kind for s in steps] == [
            "common lhs",
            "consensus",
            "common lhs",
            "consensus",
        ]
        assert [sorted(s.removed) for s in steps] == [
            ["facility"],
            ["city"],
            ["room"],
            ["floor"],
        ]

    def test_a_iff_b_trace_kinds(self):
        """Example 3.5: lhs marriage ⇛ consensus."""
        steps = simplification_trace(DELTA_A_IFF_B_TO_C)
        assert [s.kind for s in steps] == ["lhs marriage", "consensus"]

    def test_ssn_trace_kinds(self):
        """Example 3.5: marriage ⇛ consensus ⇛ common lhs ⇛ consensus."""
        steps = simplification_trace(DELTA_SSN)
        kinds = [s.kind for s in steps]
        assert kinds[0] == "lhs marriage"
        assert kinds.count("consensus") >= 2
        assert "common lhs" in kinds

    def test_stuck_set_has_no_steps(self):
        assert simplification_trace(FDSet("A -> B; B -> C")) == ()

    def test_steps_are_printable(self, office_delta):
        for step in simplification_trace(office_delta):
            assert "⇛" in str(step)


class TestClassification:
    @pytest.mark.parametrize("class_id", sorted(EXAMPLE_38))
    def test_example_38_classes(self, class_id):
        """Example 3.8: Δ1–Δ5 land in classes 1–5 respectively."""
        result = classify(EXAMPLE_38[class_id])
        assert not result.tractable
        assert result.witness is not None
        assert result.witness.class_id == class_id, (
            f"Δ{class_id} classified as class {result.witness.class_id}"
        )

    def test_table1_sources(self):
        """Each Table 1 set should (at least) classify as hard with a
        sensible witness; the triangle set needs three local minima."""
        triangle = classify(DELTA_TRIANGLE)
        assert triangle.witness.class_id == 4
        assert triangle.witness.x3 is not None
        ab_c_b = classify(DELTA_AB_C_B)
        assert ab_c_b.witness.class_id == 5

    def test_tractable_has_no_witness(self, office_delta):
        result = classify(office_delta)
        assert result.tractable and result.witness is None
        assert result.complexity == "PTIME"

    def test_hard_complexity_string(self):
        assert classify(DELTA_A_B_C).complexity == "APX-complete"

    def test_residual_is_stuck(self):
        result = classify(FDSet("E -> F; A -> B; B -> C"))
        assert not result.tractable
        # E → F simplifies away? No: {E} is not a common lhs of all FDs and
        # no marriage exists, so the whole set is already stuck.
        assert len(result.residual) == 3

    def test_classify_stuck_rejects_simplifiable(self):
        with pytest.raises(ValueError):
            classify_stuck(FDSet("A -> B"))

    def test_trace_lines_render(self, office_delta):
        lines = classify(office_delta).trace_lines()
        assert len(lines) == 5  # initial set + 4 steps
        hard_lines = classify(DELTA_A_B_C).trace_lines()
        assert any("stuck" in line or "no simplification" in line for line in hard_lines)

    def test_witness_str(self):
        witness = classify(DELTA_A_B_C).witness
        text = str(witness)
        assert "class 3" in text and "Lemma" in text


class TestSimplificationLiftsHardness:
    """Hardness classification is stable under prepended simplifications:
    wrapping a hard set with removable structure keeps it hard."""

    def test_common_lhs_wrapper(self):
        fds = FDSet("K A -> B; K B -> C")  # common lhs K, then stuck
        result = classify(fds)
        assert not result.tractable
        assert result.residual == FDSet("A -> B; B -> C")

    def test_consensus_wrapper(self):
        fds = FDSet("-> K; A -> B; B -> C")
        result = classify(fds)
        assert not result.tractable

    def test_marriage_wrapper(self):
        fds = FDSet("M -> N; N -> M; M A -> B; N B -> C")
        result = classify(fds)
        # The marriage ({M},{N}) applies first; the residual {A→B, B→C}
        # is stuck.
        kinds = [s.kind for s in result.steps]
        assert kinds and kinds[0] == "lhs marriage"
        assert not result.tractable
