"""Unit tests for the FD calculus (Section 2.2)."""

import pytest

from repro.core.fd import FD, FDSet, attrset, parse_fd, parse_fd_set


class TestAttrset:
    def test_from_string_with_spaces(self):
        assert attrset("A B C") == frozenset("ABC")

    def test_from_string_with_commas(self):
        assert attrset("A, B,C") == frozenset("ABC")

    def test_from_iterable(self):
        assert attrset(["A", "B"]) == frozenset("AB")

    def test_none_is_empty(self):
        assert attrset(None) == frozenset()

    def test_multicharacter_names(self):
        assert attrset("facility room") == frozenset({"facility", "room"})


class TestFD:
    def test_parse_basic(self):
        fd = FD.parse("A B -> C")
        assert fd.lhs == frozenset("AB")
        assert fd.rhs == frozenset("C")

    def test_parse_unicode_arrow(self):
        assert FD.parse("A → B") == FD("A", "B")

    def test_parse_consensus(self):
        fd = FD.parse("-> C")
        assert fd.is_consensus
        assert fd.lhs == frozenset()

    def test_parse_rejects_missing_arrow(self):
        with pytest.raises(ValueError):
            FD.parse("A B C")

    def test_parse_rejects_empty_rhs(self):
        with pytest.raises(ValueError):
            FD.parse("A ->")

    def test_trivial_when_rhs_subset_of_lhs(self):
        assert FD("A B", "A").is_trivial
        assert not FD("A", "B").is_trivial

    def test_empty_rhs_fd_is_trivial(self):
        assert FD("A", ()).is_trivial

    def test_consensus_trivial_interaction(self):
        fd = FD((), "A")
        assert fd.is_consensus and not fd.is_trivial

    def test_attributes(self):
        assert FD("A B", "C").attributes == frozenset("ABC")

    def test_minus_removes_from_both_sides(self):
        fd = FD("A B", "B C").minus("B")
        assert fd == FD("A", "C")

    def test_minus_can_empty_lhs(self):
        fd = FD("A", "B").minus("A")
        assert fd.is_consensus and fd.rhs == frozenset("B")

    def test_singleton_rhs_decomposition(self):
        pieces = FD("A", "B C").with_singleton_rhs()
        assert set(pieces) == {FD("A", "B"), FD("A", "C")}

    def test_hashable_and_equal(self):
        assert FD("A B", "C") == FD(["B", "A"], "C")
        assert len({FD("A", "B"), FD("A", "B")}) == 1

    def test_str_uses_paper_notation(self):
        assert str(FD("A B", "C")) == "A B → C"
        assert str(FD((), "C")) == "∅ → C"


class TestFDSetBasics:
    def test_parse_semicolon_string(self):
        fds = FDSet("A -> B; B -> C")
        assert len(fds) == 2
        assert FD("A", "B") in fds

    def test_mixed_construction(self):
        fds = FDSet([FD("A", "B"), "B -> C"])
        assert len(fds) == 2

    def test_duplicates_collapse(self):
        assert len(FDSet("A -> B; A->B")) == 1

    def test_equality_is_set_like(self):
        assert FDSet("A -> B; B -> C") == FDSet("B -> C; A -> B")

    def test_attributes(self):
        assert FDSet("A -> B; C D -> E").attributes == frozenset("ABCDE")

    def test_empty_set(self):
        fds = FDSet()
        assert len(fds) == 0
        assert fds.is_trivial


class TestClosure:
    def test_reflexivity(self):
        fds = FDSet("A -> B")
        assert attrset("A C") <= fds.closure("A C")

    def test_transitivity(self):
        fds = FDSet("A -> B; B -> C")
        assert fds.closure("A") == frozenset("ABC")

    def test_compound_lhs_fires_only_when_complete(self):
        fds = FDSet("A B -> C")
        assert "C" not in fds.closure("A")
        assert "C" in fds.closure("A B")

    def test_closure_of_empty_set(self):
        fds = FDSet("-> A; A -> B; C -> D")
        assert fds.closure(()) == frozenset("AB")

    def test_entails(self):
        fds = FDSet("A -> B; B -> C")
        assert fds.entails("A -> C")
        assert fds.entails("A -> B C")
        assert not fds.entails("C -> A")

    def test_entails_trivial(self):
        assert FDSet().entails("A B -> A")

    def test_equivalence(self):
        assert FDSet("A -> B C").is_equivalent(FDSet("A -> B; A -> C"))
        assert not FDSet("A -> B").is_equivalent(FDSet("B -> A"))


class TestTrivialityAndNormalisation:
    def test_is_trivial(self):
        assert FDSet("A B -> A").is_trivial
        assert not FDSet("A -> B").is_trivial

    def test_without_trivial(self):
        fds = FDSet("A B -> A; A -> C").without_trivial()
        assert fds == FDSet("A -> C")

    def test_with_singleton_rhs(self):
        fds = FDSet("A -> B C").with_singleton_rhs()
        assert fds == FDSet("A -> B; A -> C")

    def test_with_singleton_rhs_drops_trivial_fragments(self):
        fds = FDSet("A -> A B").with_singleton_rhs()
        assert fds == FDSet("A -> B")

    def test_consensus_fds(self):
        fds = FDSet("-> A; B -> C")
        assert len(fds.consensus_fds()) == 1

    def test_consensus_attributes_closed(self):
        # ∅ → A and A → B make both A and B consensus attributes.
        fds = FDSet("-> A; A -> B; C -> D")
        assert fds.consensus_attributes() == frozenset("AB")

    def test_is_consensus_free(self):
        assert FDSet("A -> B").is_consensus_free
        assert not FDSet("-> B").is_consensus_free


class TestMinus:
    def test_minus_removes_attribute_everywhere(self):
        fds = FDSet("A B -> C; C -> A").minus("A")
        assert fds == FDSet([FD("B", "C"), FD("C", ())])

    def test_minus_creates_consensus(self):
        fds = FDSet("A -> B").minus("A")
        assert fds.consensus_fds() == (FD((), "B"),)

    def test_minus_multiple(self):
        fds = FDSet("A B -> C D").minus("A C")
        assert fds == FDSet([FD("B", "D")])

    def test_example_35_running_chain(self):
        """The exact ⇛ chain of Example 3.5 for the running example."""
        delta = FDSet("facility -> city; facility room -> floor")
        step1 = delta.minus("facility")
        assert step1 == FDSet([FD((), "city"), FD("room", "floor")])
        step2 = step1.minus("city").without_trivial()
        assert step2 == FDSet([FD("room", "floor")])
        step3 = step2.minus("room")
        assert step3 == FDSet([FD((), "floor")])
        step4 = step3.minus("floor").without_trivial()
        assert step4.is_trivial


class TestStructuralFeatures:
    def test_common_lhs(self):
        fds = FDSet("A B -> C; A -> D")
        assert fds.common_lhs() == frozenset("A")

    def test_no_common_lhs(self):
        assert FDSet("A -> B; B -> C").common_lhs() == frozenset()

    def test_common_lhs_of_running_example(self):
        fds = FDSet("facility -> city; facility room -> floor")
        assert fds.common_lhs() == frozenset({"facility"})

    def test_lhs_marriage_simple(self):
        """Example 3.1: ``Δ_{A↔B→C}`` has the marriage ({A}, {B})."""
        fds = FDSet("A -> B; B -> A; B -> C")
        marriages = fds.lhs_marriages()
        assert (frozenset("A"), frozenset("B")) in marriages or (
            frozenset("B"),
            frozenset("A"),
        ) in marriages

    def test_lhs_marriage_ssn(self):
        """Example 3.1: ({ssn}, {first, last}) is an lhs marriage of Δ1."""
        fds = FDSet(
            "ssn -> first; ssn -> last; first last -> ssn; ssn -> address; "
            "ssn office -> phone; ssn office -> fax"
        )
        pairs = {frozenset((x1, x2)) for x1, x2 in fds.lhs_marriages()}
        assert (
            frozenset(
                (frozenset({"ssn"}), frozenset({"first", "last"}))
            )
            in pairs
        )

    def test_no_marriage_without_equal_closures(self):
        assert FDSet("A -> B; B -> C").lhs_marriages() == ()

    def test_no_marriage_without_coverage(self):
        # cl(A)=cl(B) but C→D's lhs contains neither A nor B.
        fds = FDSet("A -> B; B -> A; C -> D")
        assert fds.lhs_marriages() == ()

    def test_local_minima(self):
        fds = FDSet("A -> B; A C -> D; E -> F")
        assert set(fds.local_minima()) == {frozenset("A"), frozenset("E")}

    def test_local_minima_all_incomparable(self):
        fds = FDSet("A B -> C; A C -> B; B C -> A")
        assert len(fds.local_minima()) == 3

    def test_is_chain(self):
        assert FDSet("facility -> city; facility room -> floor").is_chain
        assert FDSet("A -> B; A B -> C; A B C -> D").is_chain
        assert not FDSet("A -> B; B -> C").is_chain

    def test_empty_is_chain(self):
        assert FDSet().is_chain


class TestLhsCovers:
    def test_mlc_common_lhs_is_one(self):
        fds = FDSet("facility -> city; facility room -> floor")
        assert fds.mlc() == 1

    def test_mlc_disjoint_lhs(self):
        assert FDSet("A -> B; C -> D").mlc() == 2

    def test_mlc_delta_k_formula(self):
        """Section 4.4: ``mlc(Δ_k) = k + 2``."""
        for k in range(1, 5):
            lhs_a = " ".join(f"A{i}" for i in range(k + 1))
            parts = [f"{lhs_a} -> B0", "B0 -> C"]
            parts += [f"B{i} -> A0" for i in range(1, k + 1)]
            fds = FDSet("; ".join(parts))
            assert fds.mlc() == k + 2

    def test_mlc_delta_prime_k_formula(self):
        """Section 4.4: ``mlc(Δ'_k) = ⌈(k+1)/2⌉``."""
        for k in range(1, 6):
            parts = [f"A{i} A{i+1} -> B{i}" for i in range(k + 1)]
            fds = FDSet("; ".join(parts))
            assert fds.mlc() == (k + 2) // 2

    def test_mlc_rejects_consensus(self):
        with pytest.raises(ValueError):
            FDSet("-> A; B -> C").minimum_lhs_cover()

    def test_mlc_empty_fdset(self):
        assert FDSet().mlc() == 0

    def test_minimum_cover_hits_every_lhs(self):
        fds = FDSet("A B -> C; B D -> E; A D -> F")
        cover = fds.minimum_lhs_cover()
        for fd in fds:
            assert fd.lhs & cover


class TestComponents:
    def test_attribute_disjoint_split(self):
        """Example 4.2's ``Δ = {item→cost, buyer→address}`` decomposes."""
        fds = FDSet("item -> cost; buyer -> address")
        components = fds.attribute_disjoint_components()
        assert len(components) == 2

    def test_shared_attribute_joins(self):
        fds = FDSet("A -> B; B -> C")
        assert len(fds.attribute_disjoint_components()) == 1

    def test_transitive_sharing_joins(self):
        fds = FDSet("A -> B; C -> D; B -> C")
        assert len(fds.attribute_disjoint_components()) == 1

    def test_components_partition_fds(self):
        fds = FDSet("A -> B C; C -> D; E -> F; G H -> I")
        components = fds.attribute_disjoint_components()
        total = sum(len(c) for c in components)
        assert total == len(fds)
        seen = set()
        for component in components:
            assert not (component.attributes & seen)
            seen |= component.attributes


class TestMinimalCover:
    def test_removes_redundant_fd(self):
        fds = FDSet("A -> B; B -> C; A -> C")
        cover = fds.minimal_cover()
        assert cover.is_equivalent(fds)
        assert len(cover) == 2

    def test_removes_extraneous_lhs_attribute(self):
        fds = FDSet("A -> B; A C -> B")
        cover = fds.minimal_cover()
        assert cover == FDSet("A -> B")

    def test_is_key(self):
        fds = FDSet("A -> B; B -> C")
        assert fds.is_key("A", "A B C")
        assert not fds.is_key("B", "A B C")
