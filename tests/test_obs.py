"""Tests for :mod:`repro.obs` — the structured telemetry layer.

Covers the tentpole guarantees of ISSUE-8:

* the default no-op recorder changes *nothing* — a clean with
  ``NULL_RECORDER`` attached is byte-identical to one without;
* spans nest (depth/parent) and roll up into the canonical phase
  breakdown;
* per-component ``solve`` records carry the plan's features and the
  measured seconds on both the serial and the pool path;
* one shared :class:`~repro.obs.Recorder` survives concurrent sessions
  (thread-safety);
* ``summarize_trace`` / ``calibrate_trace`` — the engines of the
  ``fdrepair trace summarize`` / ``fdrepair calibrate`` verbs — and the
  verbs themselves end-to-end.
"""

import json
import random
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.core.decompose import DIFFICULTY_UNIT_COST_S
from repro.core.fd import FDSet
from repro.core.table import Table
from repro.datagen.synthetic import portfolio_mix_table
from repro.io.tables import table_to_csv
from repro.pipeline import assess, clean
from repro.session import RepairSession
from repro.testing import random_small_table

SCHEMA = ("A", "B", "C")
HARD = FDSet("A -> B; B -> C")


def _mix_table(seed=11):
    return portfolio_mix_table(
        ("A", "B", "C"),
        easy_components=2,
        easy_size=40,
        hard_components=2,
        hard_size=30,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# No-op recorder: guaranteed absence of observable effect
# ---------------------------------------------------------------------------

class TestNullRecorder:
    def test_null_recorder_is_disabled_and_inert(self):
        rec = obs.NULL_RECORDER
        assert rec.enabled is False
        with rec.span("anything", tag=1):
            rec.count("c")
            rec.observe("h", 0.5)
            rec.gauge("g", 1.0)
            rec.record("solve", foo=1)
        assert rec.snapshot() == {}
        assert rec.phase_breakdown() == {}
        rec.close()  # idempotent no-op

    def test_resolve_maps_none_to_null(self):
        assert obs.resolve(None) is obs.NULL_RECORDER
        rec = obs.Recorder()
        assert obs.resolve(rec) is rec

    def test_clean_byte_identical_with_and_without_recorder(self):
        table = _mix_table()
        plain = clean(table, HARD, exact_budget_s=0.5)
        nulled = clean(
            table, HARD, exact_budget_s=0.5, recorder=obs.NULL_RECORDER
        )
        assert plain.distance == nulled.distance
        assert plain.method == nulled.method
        assert table_to_csv(plain.cleaned) == table_to_csv(nulled.cleaned)

    def test_clean_byte_identical_under_live_recorder(self, tmp_path):
        table = _mix_table()
        plain = clean(table, HARD, exact_budget_s=0.5)
        path = tmp_path / "trace.jsonl"
        with obs.Recorder(sink=obs.JsonlTraceSink(str(path))) as rec:
            traced = clean(table, HARD, exact_budget_s=0.5, recorder=rec)
        assert plain.distance == traced.distance
        assert table_to_csv(plain.cleaned) == table_to_csv(traced.cleaned)
        assert path.exists() and path.stat().st_size > 0


# ---------------------------------------------------------------------------
# Spans, counters, histograms
# ---------------------------------------------------------------------------

class TestRecorder:
    def test_spans_nest_with_depth_and_parent(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with obs.Recorder(sink=obs.JsonlTraceSink(str(path))) as rec:
            with rec.span("outer", kind="test"):
                with rec.span("inner"):
                    pass
        records = obs.read_trace(str(path))
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["inner"]["depth"] == 1
        assert spans["inner"]["parent"] == "outer"
        assert spans["outer"]["depth"] == 0
        assert spans["outer"]["tags"] == {"kind": "test"}
        # Inner closed first, so it appears first in the log; the outer
        # duration covers the inner one.
        assert spans["outer"]["dur_s"] >= spans["inner"]["dur_s"]

    def test_counters_gauges_histograms_roll_up(self):
        rec = obs.Recorder()
        rec.count("hits", 2)
        rec.count("hits", 3, tenant="t1")
        rec.count("hits", 1, tenant="t2")
        rec.gauge("depth", 7.0)
        rec.observe("lat", 0.0005)
        rec.observe("lat", 2.0)
        snap = rec.snapshot()
        assert snap["counters"]["hits"] == 6
        assert snap["gauges"]["depth"] == 7.0
        assert rec.tag_totals("hits", "tenant") == {"t1": 3, "t2": 1}
        hist = rec.histograms()["lat"]
        assert hist["count"] == 2
        assert hist["max_s"] == 2.0
        assert hist["buckets"]["le_0.001"] == 1

    def test_sinkless_recorder_aggregates_without_io(self):
        rec = obs.Recorder()
        with rec.span("phase.solve"):
            pass
        breakdown = rec.phase_breakdown()
        assert "solve" in breakdown
        assert breakdown["solve"]["count"] == 1

    def test_summary_record_written_on_close(self, tmp_path):
        path = tmp_path / "s.jsonl"
        rec = obs.Recorder(sink=obs.JsonlTraceSink(str(path)))
        rec.count("c", 4)
        rec.close()
        rec.close()  # idempotent: no second summary
        records = obs.read_trace(str(path))
        summaries = [r for r in records if r["type"] == "summary"]
        assert len(summaries) == 1
        assert summaries[0]["counters"]["c"] == 4

    def test_shared_recorder_is_thread_safe(self, tmp_path):
        """Concurrent sessions over one recorder: no torn JSONL lines,
        no lost counter increments."""
        path = tmp_path / "threads.jsonl"
        rec = obs.Recorder(sink=obs.JsonlTraceSink(str(path)))
        errors = []

        def worker(seed):
            try:
                rng = random.Random(seed)
                table = random_small_table(
                    rng, SCHEMA, 24, domain=2, weighted=True
                )
                with RepairSession(table, HARD, recorder=rec) as session:
                    session.repair()
                    session.append(
                        [("v0", "v1", "v0"), ("v0", "v2", "v0")]
                    )
                    session.repair()
                rec.count("workers.done")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert rec.snapshot()["counters"]["workers.done"] == 6
        rec.close()
        # Every line parses: the sink's lock kept writers from tearing.
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        for line in lines:
            json.loads(line)
        records = obs.read_trace(str(path))
        assert len(records) == len(lines)
        spans = [r for r in records if r["type"] == "span"]
        # 3 repairs per worker: the explicit repair(), append's implicit
        # re-repair, and the final repair().
        assert sum(1 for s in spans if s["name"] == "session.repair") == 18


# ---------------------------------------------------------------------------
# Solve records: serial and pool paths
# ---------------------------------------------------------------------------

class TestSolveRecords:
    def _solve_records(self, path):
        return [
            r for r in obs.read_trace(str(path)) if r["type"] == "solve"
        ]

    def test_clean_emits_one_record_per_component(self, tmp_path):
        table = _mix_table()
        report = assess(table, HARD)
        path = tmp_path / "clean.jsonl"
        with obs.Recorder(sink=obs.JsonlTraceSink(str(path))) as rec:
            clean(table, HARD, exact_budget_s=0.5, recorder=rec)
        solves = self._solve_records(path)
        assert len(solves) == report.component_count
        for record in solves:
            assert record["context"] == "clean"
            assert record["path"] == "serial"
            assert record["actual_s"] >= 0.0
            assert record["method"] in (
                "exact", "approx", "dichotomy", "lp"
            )
            # Scheduled runs carry the plan's cost-model features.
            assert record["difficulty"] > 0
            assert record["predicted_s"] > 0
            assert "density" in record and "weight_spread" in record

    def test_pool_clean_records_match_serial_shape(self, tmp_path):
        from repro.exec import PersistentWorkerPool

        probe = PersistentWorkerPool(1, SCHEMA, HARD)
        try:
            available = probe.start()
        finally:
            probe.close()
        if not available:
            pytest.skip("subprocess support unavailable")
        table = _mix_table()
        serial_path = tmp_path / "serial.jsonl"
        pool_path = tmp_path / "pool.jsonl"
        with obs.Recorder(sink=obs.JsonlTraceSink(str(serial_path))) as rec:
            serial = clean(table, HARD, exact_budget_s=0.5, recorder=rec)
        with obs.Recorder(sink=obs.JsonlTraceSink(str(pool_path))) as rec:
            pooled = clean(
                table, HARD, exact_budget_s=0.5, parallel=2, recorder=rec
            )
        assert serial.distance == pooled.distance
        s_records = self._solve_records(serial_path)
        p_records = self._solve_records(pool_path)
        assert len(s_records) == len(p_records)
        for s, p in zip(s_records, p_records):
            assert s["ordinal"] == p["ordinal"]
            assert s["size"] == p["size"]
            assert s["method"] == p["method"]
        assert {r["path"] for r in p_records} <= {"pool", "serial"}

    def test_session_solve_records_carry_session_context(self, tmp_path):
        rng = random.Random(3)
        table = random_small_table(rng, SCHEMA, 30, domain=2, weighted=True)
        path = tmp_path / "session.jsonl"
        rec = obs.Recorder(sink=obs.JsonlTraceSink(str(path)))
        with RepairSession(
            table, HARD, session_key="t/s", recorder=rec
        ) as session:
            session.repair()
        rec.close()
        solves = self._solve_records(path)
        assert solves, "session repair produced no solve records"
        for record in solves:
            assert record["context"] == "session"
            assert record["key"] == "t/s"
        counters = rec.snapshot()["counters"]
        assert counters.get("session.cache_miss", 0) == len(solves)

    def test_budget_exhaustion_flag_surfaces(self, tmp_path):
        # A starved global budget downgrades the tangles up front:
        # planned != effective shows up as downgraded plans.
        table = _mix_table()
        path = tmp_path / "starved.jsonl"
        with obs.Recorder(sink=obs.JsonlTraceSink(str(path))) as rec:
            clean(table, HARD, exact_budget_s=1e-9, recorder=rec)
        solves = self._solve_records(path)
        assert solves
        assert any(r.get("downgraded") for r in solves)


# ---------------------------------------------------------------------------
# Trace analysis: summarize + calibrate
# ---------------------------------------------------------------------------

class TestTraceAnalysis:
    def test_read_trace_skips_torn_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"type": "span", "name": "a", "dur_s": 1.0}\n'
            '{"type": "span", "na'  # torn final line
        )
        records = obs.read_trace(str(path))
        assert len(records) == 1

    def test_summarize_trace_rolls_up_all_record_types(self):
        records = [
            {"type": "span", "name": "phase.solve", "dur_s": 3.0},
            {"type": "span", "name": "phase.index", "dur_s": 1.0},
            {"type": "solve", "method": "exact", "actual_s": 0.5,
             "predicted_s": 0.4, "budget_exhausted": True},
            {"type": "solve", "method": "approx", "actual_s": 0.1},
            {"type": "op", "op": "repair", "tenant": "t1", "dur_s": 0.2,
             "ok": True},
            {"type": "op", "op": "repair", "tenant": "t1", "dur_s": 0.3,
             "ok": False},
            {"type": "summary", "counters": {"hits": 2}},
            {"type": "summary", "counters": {"hits": 3}},
        ]
        summary = obs.summarize_trace(records)
        assert summary["phases"]["solve"]["share"] == 0.75
        assert summary["phases"]["index"]["share"] == 0.25
        assert summary["methods"]["exact"]["budget_exhausted"] == 1
        assert summary["methods"]["exact"]["predicted_s"] == 0.4
        assert summary["methods"]["approx"]["solves"] == 1
        assert summary["tenants"]["t1"]["ops"] == 2
        assert summary["ops"]["repair"]["errors"] == 1
        assert summary["counters"]["hits"] == 5
        assert summary["solves"] == 2

    def test_calibrate_exact_fit_recovers_constant(self):
        # Synthetic trace with actual = c * difficulty exactly: the fit
        # must recover c and report zero error.
        c = 3e-5
        records = [
            {"type": "solve", "method": "exact", "difficulty": d,
             "actual_s": c * d}
            for d in (10.0, 100.0, 1000.0, 250.0)
        ]
        report = obs.calibrate_trace(records)
        assert report["pairs"] == 4
        assert report["unit_cost_s"] == pytest.approx(c, rel=1e-9)
        assert report["mean_rel_error"] == pytest.approx(0.0, abs=1e-9)
        assert report["hand_unit_cost_s"] == DIFFICULTY_UNIT_COST_S

    def test_calibrate_fit_exponent_recovers_power_law(self):
        c, gamma = 1e-6, 1.5
        records = [
            {"type": "solve", "method": "exact", "difficulty": d,
             "actual_s": c * d ** gamma}
            for d in (10.0, 50.0, 200.0, 1000.0)
        ]
        report = obs.calibrate_trace(records, fit_exponent=True)
        assert report["exponent"] == pytest.approx(gamma, rel=1e-6)
        assert report["exponent_unit_cost_s"] == pytest.approx(c, rel=1e-4)
        assert report["exponent_mean_rel_error"] == pytest.approx(
            0.0, abs=1e-6
        )

    def test_calibrate_ignores_unusable_records(self):
        records = [
            {"type": "solve", "method": "approx", "difficulty": 5.0,
             "actual_s": 1.0},
            {"type": "solve", "method": "exact", "difficulty": 0.0,
             "actual_s": 1.0},
            {"type": "solve", "method": "exact", "difficulty": 5.0,
             "actual_s": 0.0},
            {"type": "span", "name": "x", "dur_s": 1.0},
        ]
        report = obs.calibrate_trace(records)
        assert report["pairs"] == 0
        assert "unit_cost_s" not in report

    def test_calibration_improves_on_real_trace(self, tmp_path):
        path = tmp_path / "real.jsonl"
        with obs.Recorder(sink=obs.JsonlTraceSink(str(path))) as rec:
            clean(_mix_table(), HARD, exact_budget_s=0.5, recorder=rec)
        report = obs.calibrate_trace(obs.read_trace(str(path)))
        assert report["pairs"] >= 2
        assert report["mean_rel_error"] <= report["hand_mean_rel_error"]


# ---------------------------------------------------------------------------
# CLI: --trace plumbing and the analysis verbs
# ---------------------------------------------------------------------------

class TestCli:
    def _write_csv(self, tmp_path):
        table = _mix_table()
        path = tmp_path / "mix.csv"
        table_to_csv(table, str(path))
        return str(path)

    def test_srepair_trace_then_summarize_and_calibrate(
        self, tmp_path, capsys
    ):
        csv_path = self._write_csv(tmp_path)
        trace = tmp_path / "t.jsonl"
        assert main([
            "s-repair", csv_path, "A -> B; B -> C",
            "--exact-budget", "0.5", "--trace", str(trace),
        ]) == 0
        assert trace.exists()
        capsys.readouterr()

        assert main(["trace", "summarize", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["solves"] > 0
        assert "solve" in summary["phases"]

        assert main(["calibrate", str(trace), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["pairs"] > 0
        assert report["mean_rel_error"] <= report["hand_mean_rel_error"]

    def test_assess_json_reports_budget_totals(self, tmp_path, capsys):
        csv_path = self._write_csv(tmp_path)
        assert main([
            "assess", csv_path, "A -> B; B -> C",
            "--json", "--exact-budget", "0.5",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["granted_budget_s"] == 0.5
        assert payload["predicted_total_s"] == pytest.approx(
            sum(
                c["predicted_s"]
                for c in payload["components"]
                if c["predicted_s"] is not None
            )
        )
        assert payload["components"]

    def test_calibrate_empty_trace_exits_cleanly(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["calibrate", str(trace)]) == 0
        assert "no calibratable" in capsys.readouterr().out

    def test_trace_summarize_missing_file_fails(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["trace", "summarize", str(missing)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_stream_trace_writes_session_records(self, tmp_path):
        batches = tmp_path / "ops.jsonl"
        batches.write_text(
            '{"op": "append", "rows": [["a", "x", "p"], ["a", "y", "p"]]}\n'
            '{"op": "repair"}\n'
        )
        trace = tmp_path / "stream.jsonl"
        assert main([
            "stream", "A -> B", str(batches),
            "--schema", "A,B,C", "--quiet", "--trace", str(trace),
        ]) == 0
        records = obs.read_trace(str(trace))
        assert any(
            r["type"] == "span" and r["name"] == "session.repair"
            for r in records
        )
        assert any(r["type"] == "summary" for r in records)
