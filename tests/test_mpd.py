"""Tests for the Most Probable Database reduction (Theorem 3.10)."""

import pytest

from repro.core.fd import FDSet
from repro.core.mpd import (
    brute_force_mpd,
    most_probable_database,
    s_repair_via_mpd,
    subset_probability,
)
from repro.core.table import Table
from repro.core.violations import satisfies
from repro.datagen.probabilistic import random_probabilistic_table

from repro.testing import DELTA_A_IFF_B_TO_C


def prob_table(rows, weights, schema=("A", "B")):
    return Table.from_rows(schema, rows, weights)


class TestProbability:
    def test_formula(self):
        t = prob_table([("a", 1), ("a", 2)], [0.8, 0.6])
        assert subset_probability(t, [1]) == pytest.approx(0.8 * 0.4)
        assert subset_probability(t, [1, 2]) == pytest.approx(0.8 * 0.6)
        assert subset_probability(t, []) == pytest.approx(0.2 * 0.4)

    def test_rejects_bad_weights(self):
        t = prob_table([("a", 1)], [1.5])
        with pytest.raises(ValueError):
            subset_probability(t, [])


class TestReduction:
    @pytest.mark.parametrize(
        "fds",
        [FDSet("A -> B"), FDSet("-> A"), DELTA_A_IFF_B_TO_C, FDSet("A -> B; B -> C")],
        ids=str,
    )
    def test_matches_brute_force(self, fds, rng):
        schema = sorted(fds.attributes) or ["A", "B"]
        for seed in range(12):
            table = random_probabilistic_table(
                schema, rng.randrange(1, 9), domain=2, seed=seed
            )
            ours = most_probable_database(table, fds)
            reference = brute_force_mpd(table, fds)
            assert ours.probability == pytest.approx(reference.probability)
            assert satisfies(ours.database, fds)

    def test_certain_tuples_retained(self):
        fds = FDSet("A -> B")
        t = prob_table([("a", 1), ("a", 2), ("b", 3)], [1.0, 0.9, 0.7])
        result = most_probable_database(t, fds)
        assert 1 in result.database  # the certain tuple survives
        assert 2 not in result.database  # conflicts with a certain tuple

    def test_inconsistent_certain_tuples_give_probability_zero(self):
        fds = FDSet("A -> B")
        t = prob_table([("a", 1), ("a", 2)], [1.0, 1.0])
        result = most_probable_database(t, fds)
        assert result.probability == 0.0
        assert len(result.database) == 0

    def test_unlikely_tuples_dropped(self):
        """Tuples with w ≤ 0.5 never enter the most probable database."""
        fds = FDSet("A -> B")
        t = prob_table([("a", 1), ("b", 2)], [0.4, 0.9])
        result = most_probable_database(t, fds)
        assert 1 not in result.database
        assert 2 in result.database

    def test_all_unlikely(self):
        fds = FDSet("A -> B")
        t = prob_table([("a", 1), ("a", 2)], [0.3, 0.2])
        result = most_probable_database(t, fds)
        assert len(result.database) == 0
        assert result.probability == pytest.approx(0.7 * 0.8)

    def test_dichotomy_route_reported(self):
        """Comment 3.11: ``Δ_{A↔B→C}`` is PTIME in our dichotomy, so the
        reduction must route through OptSRepair, not the exact solver."""
        t = Table.from_rows(
            ("A", "B", "C"),
            [("u", "v", 0), ("v", "u", 0), ("u", "u", 1)],
            weights=[0.9, 0.8, 0.7],
        )
        result = most_probable_database(t, DELTA_A_IFF_B_TO_C)
        assert "OptSRepair" in result.method
        reference = brute_force_mpd(t, DELTA_A_IFF_B_TO_C)
        assert result.probability == pytest.approx(reference.probability)


class TestReverseReduction:
    def test_s_repair_via_mpd(self, rng):
        """Theorem 3.10, hardness direction: uniform probability 0.9 turns
        MPD into maximum-cardinality consistent subset."""
        fds = FDSet("A -> B")
        table = Table.from_rows(
            ("A", "B"), [("a", 1), ("a", 2), ("a", 2), ("b", 5)]
        )
        repair = s_repair_via_mpd(table, fds)
        assert satisfies(repair, fds)
        assert len(repair) == 3  # keep both (a,2) duplicates and (b,5)

    def test_rejects_weighted_tables(self):
        table = Table.from_rows(("A",), [("x",), ("y",)], weights=[2.0, 1.0])
        with pytest.raises(ValueError):
            s_repair_via_mpd(table, FDSet("-> A"))

    def test_rejects_bad_probability(self):
        table = Table.from_rows(("A",), [("x",)])
        with pytest.raises(ValueError):
            s_repair_via_mpd(table, FDSet("-> A"), probability=0.4)
