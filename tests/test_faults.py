"""The deterministic fault-injection harness (``repro.faults``).

These tests pin the *harness* semantics — hit counting, matching,
activation windows, env-var round-trips — so the chaos tests built on
top of it (supervised pool healing, daemon crash recovery) rest on a
machinery whose behaviour is itself pinned.
"""

import json

import pytest

from repro import faults
from repro.faults import (
    FAULTS_ENV,
    NULL_PLAN,
    FaultInjected,
    FaultPlan,
    FaultRule,
    resolve,
)


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("no.such.site", "raise")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("worker.solve", "explode")

    def test_spec_round_trip(self):
        rule = FaultRule(
            "worker.solve", "raise", at=3, times=2, delay_s=0.5,
            match={"worker": 1},
        )
        clone = FaultRule.from_spec(rule.to_spec())
        assert clone.to_spec() == rule.to_spec()


class TestFaultPlan:
    def test_null_plan_never_fires(self):
        assert not NULL_PLAN.enabled
        assert NULL_PLAN.fire("worker.solve", worker=0) is None

    def test_at_and_times_define_the_activation_window(self):
        plan = FaultPlan([FaultRule("server.op", "raise", at=2, times=2)])
        # Hit 1: before the window.  Hits 2 and 3: inside.  Hit 4: after.
        assert plan.fire("server.op", op="append") is None
        with pytest.raises(FaultInjected):
            plan.fire("server.op", op="append")
        with pytest.raises(FaultInjected):
            plan.fire("server.op", op="append")
        assert plan.fire("server.op", op="append") is None

    def test_match_filters_context_and_counts_only_matches(self):
        plan = FaultPlan(
            [FaultRule("worker.solve", "raise", match={"worker": 1})]
        )
        # Non-matching context never counts toward the rule's window.
        assert plan.fire("worker.solve", worker=0) is None
        assert plan.fire("worker.solve", worker=0) is None
        with pytest.raises(FaultInjected):
            plan.fire("worker.solve", worker=1)

    def test_generation_match_spares_the_respawn(self):
        """The chaos idiom: kill generation 0 only, so the replacement
        (generation 1) of the same worker slot survives."""
        plan = FaultPlan(
            [FaultRule("worker.solve", "raise",
                       match={"worker": 0, "generation": 0})]
        )
        with pytest.raises(FaultInjected):
            plan.fire("worker.solve", worker=0, generation=0)
        assert plan.fire("worker.solve", worker=0, generation=1) is None

    def test_drop_action_returns_the_verdict(self):
        plan = FaultPlan([FaultRule("pool.dispatch", "drop")])
        assert plan.fire("pool.dispatch", worker=0, seq=1) == "drop"
        assert plan.fire("pool.dispatch", worker=0, seq=2) is None

    def test_plan_spec_round_trip_through_env(self, monkeypatch):
        plan = FaultPlan(
            [
                FaultRule("worker.solve", "kill", match={"worker": 0}),
                FaultRule("journal.append.before", "raise", at=2),
            ]
        )
        monkeypatch.setenv(FAULTS_ENV, json.dumps(plan.to_spec()))
        loaded = FaultPlan.from_env()
        assert loaded.to_spec() == plan.to_spec()
        # resolve(None) picks the env plan up; an explicit plan wins.
        assert resolve(None).to_spec() == plan.to_spec()
        assert resolve(NULL_PLAN) is NULL_PLAN

    def test_resolve_without_env_is_the_null_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert resolve(None) is NULL_PLAN

    def test_hits_are_counted_per_rule_not_shared(self):
        plan = FaultPlan(
            [
                FaultRule("server.op", "raise", at=2,
                          match={"op": "append"}),
                FaultRule("server.op", "raise", match={"op": "delete"}),
            ]
        )
        assert plan.fire("server.op", op="append") is None
        with pytest.raises(FaultInjected):
            plan.fire("server.op", op="delete")
        with pytest.raises(FaultInjected):
            plan.fire("server.op", op="append")

    def test_sites_registry_documents_context_keys(self):
        for site, keys in faults.SITES.items():
            assert isinstance(site, str) and site
            assert all(isinstance(k, str) for k in keys)
