"""ISSUE-7 — difficulty-driven solver scheduling and LP-tightened
brackets.

Pins the scheduling layer's contracts:

* the bound chain **matching ≤ LP ≤ exact optimum ≤ BYE** on random
  weighted components, kernel and ``--no-kernel`` alike (and the LP is
  bit-identical between the two substrates);
* global-budget exhaustion produces the *same kept set* serial vs.
  parallel (the plan is computed once and shipped with the tasks);
* plan determinism: a zero global budget downgrades every component,
  and plans stay aligned with their components;
* :func:`resolve_plan_defaults` is the single source of truth for the
  portfolio knobs;
* ``fdrepair assess --json`` emits the per-component schedule;
* the patched (incremental) component computation agrees between the
  kernel CSR path and the dict reference.
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import kernel
from repro.core.conflict_index import ConflictIndex
from repro.core.decompose import (
    DEFAULT_NODE_LIMIT,
    EXACT_COMPONENT_THRESHOLD,
    decompose,
    polynomial_bracket,
    resolve_plan_defaults,
)
from repro.core.exact import exact_cover_of_index
from repro.core.fd import FDSet
from repro.core.table import Table
from repro.datagen.synthetic import portfolio_mix_table
from repro.io.tables import table_to_csv
from repro.pipeline import clean

OVERLAY = FDSet("A -> B; B -> C")

_WEIGHTS = (0.5, 1.0, 1.5, 2.0, 3.0)


def random_conflict_tables():
    """Random weighted tables under the APX-hard overlay Δ: values from
    small domains so conflicts (and odd cycles, where LP > matching) are
    common."""
    value = st.integers(min_value=0, max_value=2)
    row = st.tuples(value, value, value).map(
        lambda t: (f"a{t[0]}", f"b{t[1]}", f"c{t[2]}")
    )
    weight = st.sampled_from(_WEIGHTS)
    return st.lists(
        st.tuples(row, weight), min_size=2, max_size=12
    ).map(
        lambda pairs: Table.from_rows(
            ("A", "B", "C"), [p[0] for p in pairs], [p[1] for p in pairs]
        )
    )


def _bound_chain(table):
    """Per component: (matching, lp, exact optimum, bye upper)."""
    chains = []
    for component in decompose(table, OVERLAY).components:
        index = component.index
        matching = index.matching_lower_bound()
        lp = index.lp_lower_bound()
        cover = exact_cover_of_index(index)
        exact = index.total_weight(cover)
        _, upper = polynomial_bracket(index, component.table)
        chains.append((matching, lp, exact, upper))
    return chains


@settings(max_examples=40, deadline=None)
@given(random_conflict_tables())
def test_matching_le_lp_le_exact_le_bye(table):
    for matching, lp, exact, upper in _bound_chain(table):
        assert lp is not None
        assert matching <= lp + 1e-9
        assert lp <= exact + 1e-9
        assert exact <= upper + 1e-9


@settings(max_examples=20, deadline=None)
@given(random_conflict_tables())
def test_bound_chain_identical_without_kernel(table):
    with_kernel = _bound_chain(table)
    with kernel.disabled():
        # A fresh equivalent table, so no kernel-built index is reused.
        rows = [table[tid] for tid in table.ids()]
        weights = [table.weight(tid) for tid in table.ids()]
        reference = _bound_chain(
            Table.from_rows(table.schema, rows, weights)
        )
    # The LP (and the whole chain) must be bit-identical across
    # substrates — the bound feeds reported brackets, which the
    # kernel-vs-dict identity gates compare exactly.
    assert with_kernel == reference


def _small_mix(seed=5):
    return portfolio_mix_table(
        ("A", "B", "C"),
        easy_components=2,
        easy_size=150,
        hard_components=2,
        hard_size=60,
        hard_values=8,
        seed=seed,
    )


def test_budget_exhaustion_same_kept_set_serial_vs_parallel():
    # A budget that admits the cheap components and exhausts on the
    # tangles: the downgrade decision is made once, in the plan, so the
    # serial and pooled dispatches must delete the same tuples.
    for budget in (0.0, 0.05, 30.0):
        serial = clean(_small_mix(), OVERLAY, exact_budget_s=budget)
        parallel = clean(
            _small_mix(), OVERLAY, exact_budget_s=budget, parallel=4
        )
        assert serial.distance == parallel.distance
        assert table_to_csv(serial.cleaned) == table_to_csv(
            parallel.cleaned
        )


def test_zero_budget_downgrades_every_component():
    decomp = decompose(_small_mix(), OVERLAY)
    plans = decomp.plan_schedule(False, "best", exact_budget_s=0.0)
    assert len(plans) == len(decomp.components)
    assert all(plan.method == "approx" for plan in plans)
    assert all(plan.downgraded for plan in plans)
    # And deterministic: planning is pure arithmetic over features.
    again = decomp.plan_schedule(False, "best", exact_budget_s=0.0)
    assert plans == again


def test_generous_budget_plans_by_difficulty():
    decomp = decompose(_small_mix(), OVERLAY)
    plans = decomp.plan_schedule(False, "best", exact_budget_s=3600.0)
    assert len(plans) == len(decomp.components)
    # A generous budget grants everything eligible; every plan carries
    # its difficulty evidence.
    assert all(plan.method == "exact" for plan in plans)
    assert all(plan.features is not None for plan in plans)
    assert all(plan.difficulty is not None for plan in plans)
    # The easy paths must be rated easier than the dense tangles.
    path_difficulty = max(
        plan.difficulty for plan in plans if plan.features.size == 150
    )
    tangle_difficulty = min(
        plan.difficulty for plan in plans if plan.features.size < 150
    )
    assert path_difficulty < tangle_difficulty


def test_resolve_plan_defaults():
    defaults = resolve_plan_defaults()
    assert defaults.threshold == EXACT_COMPONENT_THRESHOLD
    assert defaults.node_limit == DEFAULT_NODE_LIMIT
    assert defaults.exact_budget_s is None
    assert defaults.per_component_budget_s is None

    explicit = resolve_plan_defaults(
        exact_threshold=32,
        node_limit=500,
        exact_budget_s=1.5,
        per_component_budget_s=0.25,
    )
    assert explicit.threshold == 32
    assert explicit.node_limit == 500
    assert explicit.exact_budget_s == 1.5
    assert explicit.per_component_budget_s == 0.25


def test_assess_json_emits_component_schedule(tmp_path, capsys):
    table = _small_mix()
    csv_path = tmp_path / "mix.csv"
    csv_path.write_text(table_to_csv(table), encoding="utf-8")

    assert main(
        ["assess", str(csv_path), "A -> B; B -> C", "--json",
         "--exact-budget", "0.0"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["component_count"] == len(payload["components"])
    assert payload["lower_bound"] <= payload["upper_bound"]
    for detail in payload["components"]:
        assert detail["method"] in ("exact", "approx", "dichotomy")
        assert detail["bracket_source"] in ("matching", "lp", "exact")
        assert detail["lower_bound"] <= detail["upper_bound"] + 1e-9
    # Zero budget downgrades everything — the JSON shows the schedule.
    assert all(d["downgraded"] for d in payload["components"])
    assert any(d["bracket_source"] == "lp" for d in payload["components"])


def test_patched_components_kernel_matches_dict():
    rng = random.Random(9)
    table = _small_mix(seed=7)
    victims = [tid for tid in table.ids() if rng.random() < 0.15]

    index = ConflictIndex(table, OVERLAY)
    index.components()  # prime, then patch incrementally
    index.remove_many(victims)
    patched = index.components()

    with kernel.disabled():
        rows = [table[tid] for tid in table.ids()]
        weights = [table.weight(tid) for tid in table.ids()]
        fresh = Table.from_rows(table.schema, rows, weights)
        reference = ConflictIndex(fresh, OVERLAY)
        reference.components()
        reference.remove_many(victims)
        assert reference.components() == patched
