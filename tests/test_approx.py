"""Tests for approximations and ratio formulas (Prop 3.3, §4.4)."""

import pytest

from repro.core.approx import (
    approx_s_repair,
    approx_u_repair,
    consensus_majority_update,
    core_implicant_size,
    kl_ratio,
    mci,
    mfs,
    minimal_implicants,
    our_ratio,
    s_repair_from_u_repair,
    u_repair_from_s_repair,
)
from repro.core.dichotomy import HARD_FD_SETS
from repro.core.exact import exact_s_repair, exact_u_repair
from repro.core.fd import FDSet
from repro.core.table import FreshValue, Table
from repro.core.violations import satisfies

from repro.testing import random_small_table


def delta_k(k: int) -> FDSet:
    """``Δ_k = {A0…Ak → B0, B0 → C, B1 → A0, …, Bk → A0}`` (Section 4.4)."""
    lhs = " ".join(f"A{i}" for i in range(k + 1))
    parts = [f"{lhs} -> B0", "B0 -> C"]
    parts += [f"B{i} -> A0" for i in range(1, k + 1)]
    return FDSet("; ".join(parts))


def delta_prime_k(k: int) -> FDSet:
    """``Δ'_k = {A0A1 → B0, …, AkAk+1 → Bk}`` (Section 4.4)."""
    return FDSet("; ".join(f"A{i} A{i+1} -> B{i}" for i in range(k + 1)))


class TestApproxSRepair:
    @pytest.mark.parametrize("name", sorted(HARD_FD_SETS))
    def test_two_approximation_bound(self, name, rng):
        fds = HARD_FD_SETS[name]
        for _ in range(12):
            table = random_small_table(
                rng, ("A", "B", "C"), rng.randrange(1, 10), domain=2, weighted=True
            )
            result = approx_s_repair(table, fds)
            assert satisfies(result.repair, fds)
            assert result.ratio_bound == 2.0
            opt = table.dist_sub(exact_s_repair(table, fds))
            assert result.distance <= 2 * opt + 1e-9

    def test_consistent_input_untouched(self, office, office_delta):
        from repro.datagen.office import consistent_subsets

        s1 = consistent_subsets()["S1"]
        result = approx_s_repair(s1, office_delta)
        assert result.distance == 0.0
        assert set(result.repair.ids()) == set(s1.ids())

    def test_result_is_maximal(self, rng):
        fds = FDSet("A -> B; B -> C")
        for _ in range(10):
            table = random_small_table(rng, ("A", "B", "C"), 8, domain=2)
            result = approx_s_repair(table, fds)
            kept = set(result.repair.ids())
            for tid in table.ids():
                if tid in kept:
                    continue
                grown = table.subset(sorted(kept | {tid}, key=str))
                assert not satisfies(grown, fds)


class TestProposition44:
    def test_u_from_s_construction(self, rng):
        """Prop 4.4(2): the converted update is consistent with
        dist_upd = |C| · dist_sub."""
        fds = FDSet("A -> B; B -> C")  # consensus-free, mlc = 2
        cover = fds.minimum_lhs_cover()
        for _ in range(10):
            table = random_small_table(rng, ("A", "B", "C"), 7, domain=2)
            s = exact_s_repair(table, fds)
            u = u_repair_from_s_repair(table, fds, s)
            assert satisfies(u, fds)
            assert table.dist_upd(u) == pytest.approx(
                len(cover) * table.dist_sub(s)
            )

    def test_u_from_s_rejects_consensus(self, office):
        fds = FDSet("-> A; B -> C")
        with pytest.raises(ValueError):
            u_repair_from_s_repair(
                Table(("A", "B", "C"), {}), fds, Table(("A", "B", "C"), {})
            )

    def test_s_from_u_construction(self, office, office_delta):
        """Prop 4.4(1): keeping intact tuples yields a consistent subset
        with dist_sub ≤ dist_upd."""
        from repro.datagen.office import consistent_updates

        for name, update in consistent_updates().items():
            subset = s_repair_from_u_repair(office, update)
            assert satisfies(subset, office_delta)
            assert office.dist_sub(subset) <= office.dist_upd(update) + 1e-9


class TestConsensusMajority:
    def test_weighted_majority(self):
        table = Table.from_rows(
            ("A", "B"),
            [("x", 0), ("y", 0), ("y", 0)],
            weights=[5.0, 1.0, 1.0],
        )
        updates = consensus_majority_update(table, frozenset("A"))
        # x has weight 5 > 2; rewrite the two y-cells.
        assert set(updates) == {(2, "A"), (3, "A")}
        assert all(v == "x" for v in updates.values())

    def test_per_attribute_decoupling(self):
        table = Table.from_rows(("A", "B"), [("x", 1), ("x", 2), ("y", 2)])
        updates = consensus_majority_update(table, frozenset("AB"))
        updated = table.with_updates(updates)
        assert satisfies(updated, FDSet("-> A B"))
        # Majority per attribute: A → x (2 vs 1), B → 2 (2 vs 1): 2 changes.
        assert table.dist_upd(updated) == 2.0

    def test_empty_table(self):
        assert consensus_majority_update(Table(("A",), {}), frozenset("A")) == {}


class TestApproxURepair:
    @pytest.mark.parametrize(
        "fds",
        [
            FDSet("A -> B; B -> C"),
            FDSet("A B -> C; C -> B"),
            FDSet("-> D; A -> B; B -> C"),
            FDSet("A -> B; C -> D"),
        ],
        ids=str,
    )
    def test_ratio_bound_holds_empirically(self, fds, rng):
        schema = sorted(fds.attributes)
        for _ in range(6):
            table = random_small_table(rng, schema, rng.randrange(1, 5), domain=2)
            result = approx_u_repair(table, fds)
            assert satisfies(result.update, fds)
            opt = table.dist_upd(exact_u_repair(table, fds))
            assert result.distance <= result.ratio_bound * opt + 1e-9

    def test_ratio_bound_value(self):
        # {A→B, B→C}: one component, mlc = 2 → bound 4.
        result_fds = FDSet("A -> B; B -> C")
        table = Table.from_rows(("A", "B", "C"), [("a", 1, 1), ("a", 2, 2)])
        result = approx_u_repair(table, result_fds)
        assert result.ratio_bound == 4.0

    def test_decomposition_tightens_bound(self):
        """Theorem 4.1 note: the bound is 2·max component mlc, not
        2·mlc(Δ)."""
        fds = FDSet("A -> B; C -> D")  # two components, each mlc = 1
        table = Table.from_rows(
            ("A", "B", "C", "D"), [("a", 1, "c", 1), ("a", 2, "c", 2)]
        )
        result = approx_u_repair(table, fds)
        assert result.ratio_bound == 2.0
        assert satisfies(result.update, fds)

    def test_consensus_only_is_exact(self):
        fds = FDSet("-> A")
        table = Table.from_rows(("A",), [("x",), ("x",), ("y",)])
        result = approx_u_repair(table, fds)
        assert result.distance == 1.0  # the true optimum


class TestRatioFormulas:
    def test_mfs(self):
        assert mfs(FDSet("A -> B; B -> C")) == 1
        assert mfs(FDSet("A B -> C; C -> B")) == 2
        assert mfs(FDSet()) == 0

    def test_minimal_implicants_simple(self):
        fds = FDSet("A -> B; C -> B")
        imps = minimal_implicants(fds, "B")
        assert frozenset("A") in imps and frozenset("C") in imps
        assert all(len(x) == 1 for x in imps)

    def test_minimal_implicants_transitive(self):
        fds = FDSet("A -> B; B -> C")
        imps = minimal_implicants(fds, "C")
        assert set(imps) == {frozenset("A"), frozenset("B")}

    def test_core_implicant_no_implicants(self):
        fds = FDSet("A -> B")
        assert core_implicant_size(fds, "A") == 0

    def test_core_implicant_consensus_rejected(self):
        with pytest.raises(ValueError):
            core_implicant_size(FDSet("-> A"), "A")

    def test_paper_delta_k_values(self):
        """Section 4.4: MFS(Δ_k) = k+1, MCI(Δ_k) = k, ours = 2(k+2),
        KL = (k+2)(2k+1).

        Nuance: the paper's ``MCI(Δ_k) = k`` (via A0's core implicant
        {B1…Bk}) holds for k ≥ 2; the exact computation shows attribute C
        has a minimum core implicant of size 2 ({B0, Ai}), so MCI(Δ_1) = 2.
        The Θ(k²) comparison is unaffected.  See EXPERIMENTS.md (E11).
        """
        for k in range(1, 5):
            fds = delta_k(k)
            assert mfs(fds) == k + 1
            assert mci(fds) == max(k, 2)
            assert our_ratio(fds) == 2 * (k + 2)
        for k in range(2, 5):
            assert kl_ratio(delta_k(k)) == (k + 2) * (2 * (k + 1) - 1)

    def test_mci_delta_1_nuance_witness(self):
        """MCI(Δ_1) = 2 because C's minimal implicants {B0}, {A0 A1},
        {A1 B1} need a 2-element hitting set."""
        fds = delta_k(1)
        imps = minimal_implicants(fds, "C")
        assert frozenset(("B0",)) in imps
        assert frozenset(("A0", "A1")) in imps
        assert core_implicant_size(fds, "C") == 2
        assert core_implicant_size(fds, "A0") == 1  # {B1}

    def test_paper_delta_prime_k_values(self):
        """Section 4.4: MFS(Δ'_k) = 2, MCI(Δ'_k) = 1, ours = 2⌈(k+1)/2⌉,
        KL = 9."""
        for k in range(1, 6):
            fds = delta_prime_k(k)
            assert mfs(fds) == 2
            assert mci(fds) == 1
            assert our_ratio(fds) == 2 * ((k + 2) // 2)
            assert kl_ratio(fds) == 9

    def test_ratio_crossover_shapes(self):
        """The paper's headline comparison: on Δ_k ours grows linearly
        while KL grows quadratically; on Δ'_k the roles flip."""
        ours_k = [our_ratio(delta_k(k)) for k in (1, 2, 4, 8)]
        kl_k = [kl_ratio(delta_k(k)) for k in (1, 2, 4, 8)]
        # Doubling k roughly doubles ours but roughly quadruples KL's.
        assert kl_k[-1] / kl_k[0] > (ours_k[-1] / ours_k[0]) * 2
        ours_pk = [our_ratio(delta_prime_k(k)) for k in (1, 2, 4, 8)]
        kl_pk = [kl_ratio(delta_prime_k(k)) for k in (1, 2, 4, 8)]
        assert ours_pk[-1] > ours_pk[0]
        assert kl_pk == [9, 9, 9, 9]

    def test_our_ratio_strips_consensus(self):
        assert our_ratio(FDSet("-> A")) == 1.0
        assert our_ratio(FDSet("-> A; B -> C")) == 2.0
