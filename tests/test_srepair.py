"""Tests for Algorithm 1 (``OptSRepair``) — soundness and optimality.

Soundness and optimality are checked against the exact vertex-cover
baseline on randomly generated weighted tables with duplicates, for a
battery of FD sets covering every simplification path (common lhs,
consensus, lhs marriage, and their compositions).
"""

import random

import pytest

from repro.core.dichotomy import osr_succeeds
from repro.core.exact import exact_s_repair
from repro.core.fd import FDSet
from repro.core.srepair import DichotomyFailure, opt_s_repair, optimal_s_repair
from repro.core.table import Table
from repro.core.violations import satisfies

from repro.testing import DELTA_A_IFF_B_TO_C, DELTA_SSN, random_small_table

TRACTABLE_SETS = [
    FDSet("A -> B"),
    FDSet("A -> B; A -> C"),
    FDSet("A -> B; A B -> C"),  # chain
    FDSet("A -> B C"),
    FDSet("-> A"),
    FDSet("-> A; B -> C"),
    DELTA_A_IFF_B_TO_C,
    FDSet("A -> B; B -> A"),
    FDSet("A B -> C; A -> D"),
]

HARD_SETS = [
    FDSet("A -> B; B -> C"),
    FDSet("A -> B; C -> D"),
    FDSet("A -> C; B -> C"),
]


class TestFigure1:
    def test_running_example_optimal_distance(self, office, office_delta):
        repair = opt_s_repair(office_delta, office)
        assert satisfies(repair, office_delta)
        assert office.dist_sub(repair) == 2.0

    def test_s1_and_s2_are_optimal(self, office, office_delta):
        """Example 2.3: S1 and S2 both achieve the optimal distance 2."""
        from repro.datagen.office import consistent_subsets

        repair = opt_s_repair(office_delta, office)
        optimum = office.dist_sub(repair)
        subsets = consistent_subsets()
        assert office.dist_sub(subsets["S1"]) == optimum == 2.0
        assert office.dist_sub(subsets["S2"]) == optimum

    def test_s3_is_suboptimal_15_optimal(self, office, office_delta):
        """Example 2.3: S3 has distance 3, a 1.5-optimal S-repair."""
        from repro.datagen.office import consistent_subsets

        s3 = consistent_subsets()["S3"]
        assert office.dist_sub(s3) == 3.0
        assert office.dist_sub(s3) / 2.0 == 1.5


class TestTerminationPaths:
    def test_trivial_fdset_returns_table(self, office):
        assert opt_s_repair(FDSet(), office) == office
        assert opt_s_repair(FDSet("facility -> facility"), office) == office

    def test_consensus_keeps_heaviest_group(self):
        table = Table.from_rows(
            ("A", "B"),
            [("x", 1), ("x", 2), ("y", 3)],
            weights=[1.0, 1.0, 5.0],
        )
        repair = opt_s_repair(FDSet("-> A"), table)
        # Group A=y weighs 5 > group A=x weighing 2.
        assert set(repair.ids()) == {3}

    def test_consensus_tie_break_deterministic(self):
        table = Table.from_rows(("A",), [("x",), ("y",)])
        r1 = opt_s_repair(FDSet("-> A"), table)
        r2 = opt_s_repair(FDSet("-> A"), table)
        assert r1.ids() == r2.ids()

    def test_common_lhs_partitions_independently(self):
        fds = FDSet("A -> B")
        table = Table.from_rows(
            ("A", "B"),
            [("x", 1), ("x", 2), ("y", 1), ("y", 1)],
            weights=[3.0, 1.0, 1.0, 1.0],
        )
        repair = opt_s_repair(fds, table)
        assert set(repair.ids()) == {1, 3, 4}

    def test_marriage_case_simple(self):
        """{A→B, B→A}: keep the heaviest consistent pairing."""
        fds = FDSet("A -> B; B -> A")
        table = Table.from_rows(
            ("A", "B"),
            [("a1", "b1"), ("a1", "b2"), ("a2", "b2")],
            weights=[1.0, 5.0, 1.0],
        )
        repair = opt_s_repair(fds, table)
        # Keeping tuple 2 (weight 5) forces dropping tuples 1 and 3.
        assert set(repair.ids()) == {2}

    def test_marriage_matching_combines_blocks(self):
        fds = FDSet("A -> B; B -> A")
        table = Table.from_rows(
            ("A", "B"),
            [("a1", "b1"), ("a2", "b2"), ("a1", "b1")],
        )
        repair = opt_s_repair(fds, table)
        assert set(repair.ids()) == {1, 2, 3}

    def test_failure_raises_dichotomy_failure(self, office):
        with pytest.raises(DichotomyFailure):
            opt_s_repair(FDSet("A -> B; B -> C"), Table(("A", "B", "C"), {}))

    def test_failure_exception_carries_stuck_fds(self):
        try:
            opt_s_repair(FDSet("A -> B; B -> C"), Table(("A", "B", "C"), {}))
        except DichotomyFailure as exc:
            assert exc.fds == FDSet("A -> B; B -> C")
        else:
            pytest.fail("expected DichotomyFailure")

    def test_empty_table(self):
        table = Table(("A", "B"), {})
        repair = opt_s_repair(FDSet("A -> B; -> B"), table)
        assert len(repair) == 0


class TestSsnExample:
    def test_example_31_ssn_delta_succeeds(self, rng):
        """Example 3.5 walks Δ1 (ssn) through marriage → consensus →
        common lhs → consensus; the algorithm must therefore succeed."""
        assert osr_succeeds(DELTA_SSN)
        schema = sorted(DELTA_SSN.attributes)
        table = random_small_table(rng, schema, 10, domain=2, weighted=True)
        repair = opt_s_repair(DELTA_SSN, table)
        assert satisfies(repair, DELTA_SSN)
        exact = exact_s_repair(table, DELTA_SSN)
        assert table.dist_sub(repair) == pytest.approx(table.dist_sub(exact))


class TestRandomCrossValidation:
    @pytest.mark.parametrize("fds", TRACTABLE_SETS, ids=str)
    def test_matches_exact_baseline(self, fds, rng):
        assert osr_succeeds(fds)
        schema = sorted(fds.attributes | {"Z"})  # an extra free attribute
        for _ in range(15):
            table = random_small_table(
                rng, schema, rng.randrange(0, 12), domain=3, weighted=True
            )
            repair = opt_s_repair(fds, table)
            assert satisfies(repair, fds)
            assert repair.is_subset_of(table)
            exact = exact_s_repair(table, fds)
            assert table.dist_sub(repair) == pytest.approx(
                table.dist_sub(exact)
            ), table.to_records()

    @pytest.mark.parametrize("fds", TRACTABLE_SETS, ids=str)
    def test_handles_duplicates(self, fds, rng):
        schema = sorted(fds.attributes)
        base = random_small_table(rng, schema, 5, domain=2)
        rows = list(base.rows().values()) * 2  # duplicate every tuple
        table = Table.from_rows(schema, rows)
        repair = opt_s_repair(fds, table)
        assert satisfies(repair, fds)
        exact = exact_s_repair(table, fds)
        assert table.dist_sub(repair) == pytest.approx(table.dist_sub(exact))

    @pytest.mark.parametrize("fds", HARD_SETS, ids=str)
    def test_hard_sets_fail(self, fds):
        assert not osr_succeeds(fds)
        with pytest.raises(DichotomyFailure):
            opt_s_repair(fds, Table(tuple(sorted(fds.attributes)), {}))


class TestHighLevelAPI:
    def test_auto_uses_dichotomy_when_possible(self, office, office_delta):
        result = optimal_s_repair(office, office_delta)
        assert result.method == "OptSRepair"
        assert result.optimal and result.ratio_bound == 1.0
        assert result.distance == 2.0

    def test_auto_falls_back_to_exact(self, rng):
        fds = FDSet("A -> B; B -> C")
        table = random_small_table(rng, ("A", "B", "C"), 8, domain=2)
        result = optimal_s_repair(table, fds)
        assert result.method == "exact-vertex-cover"
        assert satisfies(result.repair, fds)

    def test_exact_method_forced(self, office, office_delta):
        result = optimal_s_repair(office, office_delta, method="exact")
        assert result.distance == 2.0

    def test_dichotomy_method_raises_on_hard_set(self):
        with pytest.raises(DichotomyFailure):
            optimal_s_repair(
                Table(("A", "B", "C"), {}),
                FDSet("A -> B; B -> C"),
                method="dichotomy",
            )

    def test_unknown_method_rejected(self, office, office_delta):
        with pytest.raises(ValueError):
            optimal_s_repair(office, office_delta, method="magic")
