"""Unit tests for violation detection and conflict graphs."""

import pytest

from repro.core.fd import FD, FDSet
from repro.core.table import Table
from repro.core.violations import (
    conflict_graph,
    conflicting_ids,
    satisfies,
    violating_pairs,
    violating_pairs_of_fd,
)


def t(rows, weights=None, schema=("A", "B", "C")):
    return Table.from_rows(schema, rows, weights)


class TestViolatingPairs:
    def test_simple_violation(self):
        table = t([("a", 1, 0), ("a", 2, 0)])
        pairs = list(violating_pairs_of_fd(table, FD("A", "B")))
        assert pairs == [(1, 2)]

    def test_no_violation_when_rhs_agrees(self):
        table = t([("a", 1, 0), ("a", 1, 9)])
        assert list(violating_pairs_of_fd(table, FD("A", "B"))) == []

    def test_no_violation_across_lhs_groups(self):
        table = t([("a", 1, 0), ("b", 2, 0)])
        assert list(violating_pairs_of_fd(table, FD("A", "B"))) == []

    def test_trivial_fd_never_violated(self):
        table = t([("a", 1, 0), ("a", 2, 0)])
        assert list(violating_pairs_of_fd(table, FD("A B", "A"))) == []

    def test_consensus_fd_violation(self):
        table = t([("a", 1, 0), ("b", 1, 0), ("c", 2, 0)])
        pairs = set(
            frozenset(p) for p in violating_pairs_of_fd(table, FD((), "B"))
        )
        assert pairs == {frozenset((1, 3)), frozenset((2, 3))}

    def test_compound_lhs(self):
        table = t([("a", 1, 0), ("a", 1, 1), ("a", 2, 0)])
        pairs = list(violating_pairs_of_fd(table, FD("A B", "C")))
        assert pairs == [(1, 2)]

    def test_multi_attribute_rhs(self):
        table = t([("a", 1, 0), ("a", 1, 1)])
        pairs = list(violating_pairs_of_fd(table, FD("A", "B C")))
        assert pairs == [(1, 2)]

    def test_pairs_with_fd_annotation(self):
        fds = FDSet("A -> B; A -> C")
        table = t([("a", 1, 0), ("a", 2, 1)])
        annotated = list(violating_pairs(table, fds))
        assert len(annotated) == 2  # both FDs violated by the same pair
        assert {fd for _, _, fd in annotated} == {FD("A", "B"), FD("A", "C")}

    def test_duplicates_never_conflict(self):
        table = t([("a", 1, 0), ("a", 1, 0)])
        assert satisfies(table, FDSet("A -> B; B -> C; -> A"))


class TestSatisfies:
    def test_figure1_tables(self):
        from repro.datagen.office import (
            consistent_subsets,
            consistent_updates,
            office_fds,
            office_table,
        )

        fds = office_fds()
        assert not satisfies(office_table(), fds)
        for sub in consistent_subsets().values():
            assert satisfies(sub, fds)
        for upd in consistent_updates().values():
            assert satisfies(upd, fds)

    def test_empty_table_satisfies_everything(self):
        table = Table(("A", "B", "C"), {})
        assert satisfies(table, FDSet("A -> B; -> C"))

    def test_single_tuple_satisfies_everything(self):
        table = t([("a", 1, 0)])
        assert satisfies(table, FDSet("A -> B; -> C; A B -> C"))


class TestConflictGraph:
    def test_nodes_carry_tuple_weights(self):
        table = t([("a", 1, 0), ("a", 2, 0)], weights=[2.0, 3.0])
        g = conflict_graph(table, FDSet("A -> B"))
        assert g.weight(1) == 2.0 and g.weight(2) == 3.0

    def test_edges_deduplicated_across_fds(self):
        fds = FDSet("A -> B; A -> C")
        table = t([("a", 1, 0), ("a", 2, 1)])
        g = conflict_graph(table, fds)
        assert g.num_edges() == 1

    def test_independent_sets_are_consistent_subsets(self):
        """The core equivalence behind Prop 3.3 and the exact baseline."""
        import itertools
        import random

        rng = random.Random(5)
        fds = FDSet("A -> B; B -> C")
        for _ in range(20):
            rows = [
                tuple(rng.randrange(2) for _ in range(3)) for _ in range(6)
            ]
            table = t(rows)
            g = conflict_graph(table, fds)
            for r in range(len(table) + 1):
                for kept in itertools.combinations(table.ids(), r):
                    assert satisfies(table.subset(kept), fds) == g.is_independent_set(
                        kept
                    )

    def test_conflicting_ids_deduplicated(self):
        fds = FDSet("A -> B; A -> C")
        table = t([("a", 1, 0), ("a", 2, 1)])
        assert conflicting_ids(table, fds) == [(1, 2)]
