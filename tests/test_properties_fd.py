"""Property-based tests for the FD calculus (hypothesis).

Armstrong-axiom consequences, closure algebra, and the Δ − X operator are
checked on randomly generated FD sets over a small attribute universe.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FD, FDSet

ATTRS = list("ABCDEF")

attr_subsets = st.sets(st.sampled_from(ATTRS), max_size=4).map(frozenset)
nonempty_subsets = st.sets(st.sampled_from(ATTRS), min_size=1, max_size=4).map(
    frozenset
)

fd_strategy = st.builds(FD, attr_subsets, nonempty_subsets)
fdset_strategy = st.lists(fd_strategy, max_size=6).map(FDSet)


@given(fdset_strategy, attr_subsets)
def test_closure_is_extensive(fds, attrs):
    """X ⊆ cl(X) (reflexivity)."""
    assert attrs <= fds.closure(attrs)


@given(fdset_strategy, attr_subsets)
def test_closure_is_idempotent(fds, attrs):
    assert fds.closure(fds.closure(attrs)) == fds.closure(attrs)


@given(fdset_strategy, attr_subsets, attr_subsets)
def test_closure_is_monotone(fds, x, y):
    assert fds.closure(x) <= fds.closure(x | y)


@given(fdset_strategy, attr_subsets, nonempty_subsets)
def test_augmentation(fds, x, z):
    """Armstrong augmentation: X → Y entails XZ → YZ."""
    y = fds.closure(x)
    assert fds.entails(FD(x | z, y | z))


@given(fdset_strategy)
def test_every_member_is_entailed(fds):
    for fd in fds:
        assert fds.entails(fd)


@given(fdset_strategy)
def test_singleton_rhs_is_equivalent(fds):
    assert fds.with_singleton_rhs().is_equivalent(fds)


@given(fdset_strategy)
def test_minimal_cover_is_equivalent(fds):
    assert fds.minimal_cover().is_equivalent(fds)


@given(fdset_strategy)
def test_without_trivial_is_equivalent(fds):
    assert fds.without_trivial().is_equivalent(fds)


@given(fdset_strategy, nonempty_subsets)
def test_minus_removes_attributes(fds, attrs):
    reduced = fds.minus(attrs)
    assert not (reduced.attributes & attrs)


@given(fdset_strategy, nonempty_subsets, nonempty_subsets)
def test_minus_is_commutative(fds, x, y):
    assert fds.minus(x).minus(y) == fds.minus(y).minus(x) == fds.minus(x | y)


@given(fdset_strategy)
def test_consensus_attributes_are_closure_of_empty(fds):
    consensus = fds.consensus_attributes()
    assert consensus == fds.closure(())
    # Consensus attributes are consensus-free after removal.
    assert fds.minus(consensus).without_trivial().is_consensus_free


@given(fdset_strategy)
def test_components_are_attribute_disjoint(fds):
    seen = set()
    for component in fds.attribute_disjoint_components():
        assert not (component.attributes & seen)
        seen |= component.attributes


@given(fdset_strategy)
def test_local_minima_are_incomparable(fds):
    minima = fds.local_minima()
    for x in minima:
        for y in minima:
            if x != y:
                assert not (x < y)


@given(fdset_strategy)
def test_common_lhs_is_in_every_lhs(fds):
    for attr in fds.common_lhs():
        assert all(attr in fd.lhs for fd in fds)


@given(fdset_strategy)
def test_marriages_have_equal_closures(fds):
    for x1, x2 in fds.lhs_marriages():
        assert x1 != x2
        assert fds.closure(x1) == fds.closure(x2)
        assert all(x1 <= fd.lhs or x2 <= fd.lhs for fd in fds)


@given(fdset_strategy)
def test_minimum_lhs_cover_hits_every_lhs(fds):
    nontrivial = fds.without_trivial()
    if any(fd.is_consensus for fd in nontrivial):
        return  # cover undefined
    cover = nontrivial.minimum_lhs_cover()
    for fd in nontrivial:
        assert fd.lhs & cover
