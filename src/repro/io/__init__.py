"""I/O helpers: FD-string parsing lives in :mod:`repro.core.fd`
(:func:`repro.core.fd.parse_fd_set`); this package adds table
serialisation."""

from .tables import table_from_csv, table_from_json, table_to_csv, table_to_json

__all__ = [
    "table_from_csv",
    "table_from_json",
    "table_to_csv",
    "table_to_json",
]
