"""CSV and JSON round trips for tables.

The on-disk CSV layout mirrors Figure 1: an ``id`` column, one column per
attribute, and a ``weight`` column.  Values are read back as strings
(numbers are not coerced — FD satisfaction only needs equality), except
that weights are parsed as floats.  JSON uses the analogous record
structure.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..core.table import Table

__all__ = [
    "table_to_csv",
    "table_from_csv",
    "table_to_json",
    "table_from_json",
]

PathLike = Union[str, Path]


def table_to_csv(table: Table, path: Optional[PathLike] = None) -> str:
    """Serialise a table to CSV; write to *path* when given.

    Returns the CSV text either way.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["id", *table.schema, "weight"])
    for tid, row, weight in table.tuples():
        writer.writerow([tid, *row, weight])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def table_from_csv(
    source: PathLike,
    name: str = "R",
    text: Optional[str] = None,
) -> Table:
    """Load a table from a CSV file (or from *text* when provided).

    The header must start with ``id`` and end with ``weight``; everything
    between is the schema.  Identifiers are read as integers when they
    look like integers, so a round trip through
    :func:`table_to_csv` preserves the common integer ids.
    """
    if text is None:
        text = Path(source).read_text(encoding="utf-8")
    reader = csv.reader(io.StringIO(text))
    header = next(reader)
    if len(header) < 3 or header[0] != "id" or header[-1] != "weight":
        raise ValueError(
            "CSV header must be 'id,<attributes...>,weight', got "
            f"{header!r}"
        )
    schema = tuple(header[1:-1])
    rows = {}
    weights = {}
    for record in reader:
        if not record:
            continue
        raw_id, *values, raw_weight = record
        tid = int(raw_id) if raw_id.lstrip("-").isdigit() else raw_id
        rows[tid] = tuple(values)
        weights[tid] = float(raw_weight)
    return Table(schema, rows, weights, name=name)


def table_to_json(table: Table, path: Optional[PathLike] = None) -> str:
    """Serialise a table to a JSON document (schema + records)."""
    doc = {
        "name": table.name,
        "schema": list(table.schema),
        "rows": [
            {"id": tid, "values": list(row), "weight": weight}
            for tid, row, weight in table.tuples()
        ],
    }
    text = json.dumps(doc, indent=2, default=str)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def table_from_json(source: PathLike, text: Optional[str] = None) -> Table:
    """Load a table from a JSON document produced by
    :func:`table_to_json`."""
    if text is None:
        text = Path(source).read_text(encoding="utf-8")
    doc = json.loads(text)
    rows = {}
    weights = {}
    for record in doc["rows"]:
        tid = record["id"]
        rows[tid] = tuple(record["values"])
        weights[tid] = float(record["weight"])
    return Table(tuple(doc["schema"]), rows, weights, name=doc.get("name", "R"))
