"""Fault-tolerant sharded execution: shard host processes + RPC layer.

:class:`~repro.exec.PersistentWorkerPool` keeps warm *worker* processes
behind multiprocessing queues; this module is the next rung on the
ROADMAP's scale-out ladder — **shard hosts**: spawned subprocesses that
speak the :mod:`repro.protocol` JSONL envelope over their stdio pipes,
each holding a delta-mirrored copy of every attached session's table and
owning the arc of a consistent-hash ring that decides *which* components
it solves.  The same executable-module trick a real deployment would use
for TCP shard endpoints (``python -m repro.shard``) runs them here as
local children, so the whole RPC failure matrix — lost requests, lost
replies, stalls, crashes — exists and is deterministically injectable
today, without a network.

Why this is safe: FD conflict components are *independent* and every
solver is a *pure function* of its component's rows (the PR-2/PR-3
determinism contract).  Routing, retries, failover, and even full
degradation to local execution can therefore never change an answer —
they only change where (and how often) it is computed.  Sharded results
are byte-identical to serial ones by construction; the chaos suite
(``tests/test_shards.py``) pins it.

Topology and failure semantics
------------------------------
- **Delta mirrors.**  The executor keeps the authoritative per-session
  mirror (rows/weights) *and* a per-session **delta journal** (the exact
  ``reset``/``append``/``delete`` broadcast history, compacted to one
  ``reset`` once it grows).  Live shards receive every broadcast; a
  replacement shard is re-derived by replaying the journal — the
  journal/replay split PR 9 introduced for the daemon, applied to shard
  failover.
- **Routing.**  Components are routed by consistent hashing of
  ``(session key, component ids)`` over the live membership
  (:class:`HashRing`, virtual nodes).  Membership change — a death, a
  respawn — rebalances only the dead/returning arc; the same component
  always lands on the same shard while membership is stable, and solves
  re-route to survivors the moment it is not.
- **RPC discipline.**  Every solve RPC carries a deadline
  (``rpc_timeout_s``); a timed-out RPC retries with capped exponential
  backoff up to ``rpc_retries`` times (lost request and lost reply look
  identical and both recover), after which the routed shard is presumed
  wedged and is failed over.  Heartbeat pings detect silent deaths;
  any traffic from a shard counts as liveness, so a shard legitimately
  busy with a long exact solve is not shot mid-solve.
- **Failover.**  A dead shard's in-flight solves re-dispatch
  transparently to survivors (or queue for the replacement when it was
  the last shard); the supervisor respawns the slot with capped
  exponential backoff and replays open + journal into it before it
  rejoins the ring.  A slot that keeps dying is abandoned after
  ``max_respawns``; when every slot is exhausted the executor
  **degrades to local execution** — solves run in the calling thread
  against the authoritative mirror, honestly counted in
  ``degraded_local``, and answers stay byte-identical.

Fault sites (see :mod:`repro.faults`): ``shard.rpc.send`` (parent,
before a request/broadcast line is written — ``drop``/``delay``),
``shard.rpc.recv`` (shard, after decoding a request — ``drop``/
``delay``/``raise``/``kill``), ``shard.heartbeat`` (shard, on a ping —
``drop`` swallows the pong), ``shard.kill`` (shard, per message — the
dedicated crash site chaos schedules use).
"""

from __future__ import annotations

import base64
import os
import pickle
import subprocess
import sys
import threading
from bisect import bisect_left
from hashlib import sha1
from time import monotonic as _monotonic
from time import perf_counter as _perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from . import faults as _faults
from . import obs as _obs
from .core import kernel as _kernel
from .protocol import decode_line, encode

__all__ = [
    "HashRing",
    "ShardHost",
    "ShardedExecutor",
    "shard_serve",
    "main",
]

#: Default virtual nodes per shard on the hash ring — enough that one
#: member's arcs interleave every other member's, so a death spreads its
#: load across all survivors instead of dumping it on one neighbour.
DEFAULT_VNODES = 64

#: Mirror-maintenance op names a shard host accepts (one-way, unacked —
#: exactly the :meth:`~repro.exec.PersistentWorkerPool.broadcast`
#: vocabulary; a desynced shard surfaces as a ``state`` solve error and
#: is healed by journal replay).
_MIRROR_OPS = ("open", "drop", "reset", "append", "delete")


def _pack(obj) -> str:
    """Pickle *obj* into a JSON-safe ASCII blob.  The JSONL envelope
    carries op/seq routing; payloads (rows with arbitrary Python values,
    FD sets, kept-id tuples) ride as pickled blobs so shard results are
    *byte*-identical to serial ones — no JSON round-trip of row values."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _unpack(blob: str):
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------


def _hash64(data: bytes) -> int:
    return int.from_bytes(sha1(data).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over integer shard slots.

    Each member contributes *vnodes* points (``sha1("slot#v")``); a key
    routes to the first point clockwise of its own hash.  Membership
    change moves only the keys on the lost/gained arcs — the property
    that makes failover a re-route, not a reshuffle."""

    __slots__ = ("_points", "_members")

    def __init__(self, members: Sequence[int], vnodes: int = DEFAULT_VNODES):
        self._members = tuple(sorted(members))
        points = []
        for member in self._members:
            for v in range(vnodes):
                points.append((_hash64(f"{member}#{v}".encode()), member))
        points.sort()
        self._points = points

    @property
    def members(self) -> Tuple[int, ...]:
        return self._members

    def __bool__(self) -> bool:
        return bool(self._points)

    def route(self, key: bytes) -> int:
        """The member owning *key*; raises :class:`IndexError` when the
        ring is empty."""
        points = self._points
        if not points:
            raise IndexError("empty hash ring")
        i = bisect_left(points, (_hash64(key), -1))
        if i == len(points):
            i = 0
        return points[i][1]


# ---------------------------------------------------------------------------
# Shard host process (child side)
# ---------------------------------------------------------------------------


def shard_serve(stdin, stdout, index: int, generation: int,
                fault_spec=None) -> int:
    """Serve one shard host over JSONL *stdin*/*stdout* until
    ``shutdown`` or EOF.  The loop mirrors
    :func:`repro.exec._session_worker_main` — namespaced mirrors, solves
    by id list, failures shipped rather than fatal — with the
    multiprocessing queues replaced by the :mod:`repro.protocol`
    envelope, which is what lets the same loop sit behind a TCP socket
    unchanged."""
    from .core.table import Table
    from .exec import _solve_s_kept

    plan = _faults.FaultPlan.from_spec(fault_spec)
    # key -> [schema, fds, node_limit, budget_s, rows, weights]
    spaces: Dict = {}
    msg_count = 0
    ping_count = 0

    def reply(obj) -> None:
        stdout.write(encode(obj))
        stdout.flush()

    # Ready greeting: the parent's start()/respawn handshake.
    reply({"ok": True, "ready": True, "shard": index,
           "generation": generation})

    for line in stdin:
        if not line.strip():
            continue
        try:
            msg = decode_line(line)
        except ValueError:
            continue  # torn line (parent died mid-write): skip
        op = msg.get("op")
        seq = msg.get("seq")
        msg_count += 1
        # The dedicated chaos crash site: fires per message so a plan
        # can kill exactly this incarnation at exactly this point.
        plan.fire("shard.kill", shard=index, generation=generation,
                  msg=msg_count, op=op)
        try:
            verdict = plan.fire("shard.rpc.recv", shard=index,
                                generation=generation, op=op,
                                msg=msg_count, seq=seq)
        except _faults.FaultInjected as exc:
            if seq is not None:
                reply({"ok": False, "seq": seq, "kind": "fault",
                       "error": repr(exc)})
            continue
        if verdict == "drop":
            continue  # swallowed request: the parent's deadline recovers
        if op == "shutdown":
            break
        if op == "ping":
            ping_count += 1
            if plan.fire("shard.heartbeat", shard=index,
                         generation=generation, n=ping_count) == "drop":
                continue  # swallowed pong: heartbeat miss on the parent
            reply({"ok": True, "seq": seq, "pong": True})
            continue
        if op in _MIRROR_OPS:
            try:
                payload = _unpack(msg["blob"])
            except Exception:
                continue
            key = payload[0]
            if op == "open":
                _k, schema, fds, node_limit, budget_s = payload
                spaces[key] = [tuple(schema), fds, node_limit, budget_s,
                               {}, {}]
            elif op == "drop":
                spaces.pop(key, None)
            else:
                space = spaces.get(key)
                if space is None:
                    continue
                if op == "reset":
                    space[4] = dict(payload[1])
                    space[5] = dict(payload[2])
                elif op == "append":
                    space[4].update(payload[1])
                    space[5].update(payload[2])
                elif op == "delete":
                    for tid in payload[1]:
                        space[4].pop(tid, None)
                        space[5].pop(tid, None)
            continue
        if op == "solve":
            try:
                key, ids, method, budget = _unpack(msg["blob"])
            except Exception as exc:
                reply({"ok": False, "seq": seq, "kind": "state",
                       "error": repr(exc)})
                continue
            space = spaces.get(key)
            if space is None:
                reply({"ok": False, "seq": seq, "kind": "state",
                       "error": f"unknown session namespace {key!r}"})
                continue
            schema, fds, node_limit, space_budget, rows, weights = space
            try:
                subtable = Table(
                    schema,
                    {tid: rows[tid] for tid in ids},
                    {tid: weights[tid] for tid in ids},
                )
            except KeyError as exc:
                # Stale mirror (a lost delta): a *state* error — the
                # parent heals this shard by journal replay, it is not a
                # property of the component.
                reply({"ok": False, "seq": seq, "kind": "state",
                       "error": f"stale mirror, missing id {exc}"})
                continue
            solve_budget = budget if budget is not None else space_budget
            try:
                start = _perf_counter()
                kept, effective = _solve_s_kept(
                    subtable, fds, method, node_limit,
                    budget_s=solve_budget,
                )
                elapsed = _perf_counter() - start
            except BaseException as exc:  # ship the failure, don't die
                reply({"ok": False, "seq": seq, "kind": "solve",
                       "error": repr(exc)})
            else:
                reply({"ok": True, "seq": seq,
                       "blob": _pack((tuple(kept), effective, elapsed))})
            continue
        # Unknown op: ignore (forward compatibility with newer parents).
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.shard`` — run one shard host over stdio."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.shard")
    parser.add_argument("--index", type=int, default=0)
    parser.add_argument("--generation", type=int, default=0)
    parser.add_argument("--faults", default=None,
                        help="JSON FaultPlan spec (chaos testing)")
    parser.add_argument("--no-kernel", action="store_true")
    args = parser.parse_args(argv)
    _kernel.set_enabled(not args.no_kernel)
    return shard_serve(sys.stdin, sys.stdout, args.index, args.generation,
                       fault_spec=args.faults)


# ---------------------------------------------------------------------------
# Parent-side shard handle
# ---------------------------------------------------------------------------


class ShardHost:
    """Parent handle of one shard subprocess: the write pipe, a reader
    thread draining its JSONL responses, and liveness bookkeeping."""

    def __init__(self, slot: int, generation: int, *, use_kernel: bool,
                 fault_spec=None, on_message=None):
        self.slot = slot
        self.generation = generation
        cmd = [sys.executable, "-u", "-m", "repro.shard",
               "--index", str(slot), "--generation", str(generation)]
        if not use_kernel:
            cmd.append("--no-kernel")
        if fault_spec:
            import json as _json

            cmd += ["--faults", _json.dumps(fault_spec)]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        # The child must not re-resolve the ambient chaos plan: parent
        # and executor decide what each incarnation sees via --faults.
        env.pop(_faults.FAULTS_ENV, None)
        self.proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, env=env,
        )
        self._write_lock = threading.Lock()
        self.last_activity = _monotonic()
        self.ready = threading.Event()
        self._on_message = on_message
        self._reader = threading.Thread(
            target=self._read_loop, name=f"fdrepair-shard-{slot}-reader",
            daemon=True,
        )
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            for line in self.proc.stdout:
                try:
                    msg = decode_line(line)
                except ValueError:
                    continue
                self.last_activity = _monotonic()
                if msg.get("ready"):
                    self.ready.set()
                    continue
                if self._on_message is not None:
                    self._on_message(self, msg)
        except (OSError, ValueError):
            pass  # pipe torn down: the monitor reaps via poll()

    def send(self, obj) -> bool:
        """Write one JSONL request; False when the pipe is gone."""
        line = encode(obj)
        with self._write_lock:
            try:
                self.proc.stdin.write(line)
                self.proc.stdin.flush()
            except (OSError, ValueError):
                return False
        return True

    def alive(self) -> bool:
        return self.proc.poll() is None

    def close(self, kill: bool = False, timeout: float = 2.0) -> None:
        """Tear the subprocess down (graceful ``shutdown`` already sent
        by the executor when applicable)."""
        try:
            if kill:
                self.proc.kill()
            elif self.proc.poll() is None:
                self.proc.terminate()
            self.proc.wait(timeout=timeout)
        except (OSError, ValueError, subprocess.TimeoutExpired):
            try:
                self.proc.kill()
                self.proc.wait(timeout=timeout)
            except (OSError, ValueError, subprocess.TimeoutExpired):
                pass
        for stream in (self.proc.stdin, self.proc.stdout):
            try:
                if stream is not None:
                    stream.close()
            except (OSError, ValueError):
                pass


# ---------------------------------------------------------------------------
# Sharded executor (parent side)
# ---------------------------------------------------------------------------


class _ShardTask:
    """One in-flight sharded solve: routing, retry, and failover state."""

    __slots__ = ("key", "ids", "method", "budget", "route_key", "slot",
                 "seq", "sent_at", "not_before", "attempts", "failovers",
                 "local", "claimed", "done", "result", "error")

    def __init__(self, key, ids, method, budget):
        self.key = key
        self.ids = tuple(ids)
        self.method = method
        self.budget = budget
        self.route_key = repr((key, self.ids)).encode()
        self.slot = None        # routed shard slot (None = unrouted)
        self.seq = None         # current RPC seq (stale seqs are dropped)
        self.sent_at = None     # monotonic dispatch time (RPC deadline)
        self.not_before = 0.0   # backoff gate for the next attempt
        self.attempts = 0       # RPC attempts on the current route
        self.failovers = 0      # shards failed over away from
        self.local = False      # degraded to local execution
        self.claimed = False    # a caller thread is solving it locally
        self.done = False
        self.result = None      # (kept ids, effective method, secs)
        self.error = None


class ShardedExecutor:
    """Drop-in peer of :class:`~repro.exec.PersistentWorkerPool` that
    executes component solves on shard host subprocesses.

    Duck-types the pool seam (``start``/``alive``/``open_session``/
    ``broadcast``/``drop_session``/``solve``/``close``/
    ``supervision_stats``/``worker_count``), so a
    :class:`~repro.session.RepairSession` or the daemon's shared-pool
    slot can run sharded by swapping the object — and
    :func:`repro.exec.solve_components` accepts one directly for the
    batch path.  See the module docstring for topology and failure
    semantics; :meth:`supervision_stats` is the honesty channel
    (``shard_deaths``/``respawns``/``retries``/``timeouts``/
    ``heartbeat_misses``/``rerouted``/``degraded_local``/``abandoned``/
    ``rpcs``).

    Construction never fails; :meth:`start` returns ``False`` (and the
    executor reports dead) on platforms that cannot spawn the shard
    subprocesses, so callers keep their serial fallback.
    """

    executor_kind = "shards"

    def __init__(self, shards: int, schema=None, fds=None,
                 node_limit: int = 2000,
                 use_kernel: Optional[bool] = None,
                 budget_s: Optional[float] = None, *,
                 rpc_timeout_s: float = 30.0,
                 rpc_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 retry_backoff_cap_s: float = 2.0,
                 heartbeat_interval_s: float = 0.5,
                 heartbeat_miss_s: float = 10.0,
                 max_respawns: int = 8,
                 respawn_backoff_s: float = 0.05,
                 respawn_backoff_cap_s: float = 2.0,
                 spawn_timeout_s: float = 20.0,
                 journal_compact_every: int = 64,
                 vnodes: int = DEFAULT_VNODES,
                 faults=None,
                 recorder=None):
        self._shard_count = max(1, int(shards))
        self._schema = None if schema is None else tuple(schema)
        self._fds = fds
        self._node_limit = node_limit
        self._budget_s = budget_s
        self._use_kernel = (
            _kernel.enabled() if use_kernel is None else bool(use_kernel)
        )
        self._rpc_timeout_s = max(0.05, float(rpc_timeout_s))
        self._rpc_retries = max(0, int(rpc_retries))
        self._retry_backoff_s = max(0.0, float(retry_backoff_s))
        self._retry_backoff_cap_s = max(
            self._retry_backoff_s, float(retry_backoff_cap_s)
        )
        self._hb_interval_s = max(0.05, float(heartbeat_interval_s))
        self._hb_miss_s = max(self._hb_interval_s * 2,
                              float(heartbeat_miss_s))
        self._max_respawns = max(0, int(max_respawns))
        self._respawn_backoff_s = max(0.0, float(respawn_backoff_s))
        self._respawn_backoff_cap_s = max(
            self._respawn_backoff_s, float(respawn_backoff_cap_s)
        )
        self._spawn_timeout_s = max(0.5, float(spawn_timeout_s))
        self._journal_compact_every = max(2, int(journal_compact_every))
        self._vnodes = max(1, int(vnodes))
        self._faults = _faults.resolve(faults)
        self._recorder = _obs.resolve(recorder)

        self._started = False
        self._broken = False
        self._closed = False
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._hosts: List[Optional[ShardHost]] = [None] * self._shard_count
        self._gens: List[int] = [0] * self._shard_count
        self._dead: set = set(range(self._shard_count))
        self._abandoned: set = set()
        self._respawn_at: Dict[int, float] = {}
        self._respawning: set = set()
        self._respawn_attempts: Dict[int, int] = {}
        self._ring = HashRing((), self._vnodes)
        # Authoritative parent-side state: mirrors + delta journals,
        # guarded by _state_lock (outer lock; never taken under _cond).
        # key -> [schema, fds, node_limit, budget_s, rows, weights]
        self._spaces: Dict = {}
        self._journal: Dict = {}   # key -> [op tuples since open/compact]
        self._state_lock = threading.Lock()
        self._cond = threading.Condition()
        self._pending: Dict[int, _ShardTask] = {}   # task id -> record
        self._by_seq: Dict[int, int] = {}           # RPC seq -> task id
        self._next_task = 0
        self._next_seq = 0
        self._last_hb = 0.0
        self._counters = {
            "shard_deaths": 0, "respawns": 0, "retries": 0,
            "timeouts": 0, "heartbeat_misses": 0, "rerouted": 0,
            "degraded_local": 0, "abandoned": 0, "rpcs": 0,
        }

    # -- pool-seam surface --------------------------------------------

    @property
    def alive(self) -> bool:
        return self._started and not self._broken and not self._closed

    @property
    def worker_count(self) -> int:
        return self._shard_count

    @property
    def shard_count(self) -> int:
        return self._shard_count

    def live_shards(self) -> int:
        with self._cond:
            return sum(
                1 for i in range(self._shard_count)
                if self._hosts[i] is not None and i not in self._dead
            )

    def supervision_stats(self) -> Dict[str, int]:
        with self._cond:
            return dict(self._counters)

    def start(self) -> bool:
        """Spawn the shard fleet; True once every shard answered the
        ready handshake (idempotent).  False — executor dead, caller
        falls back — when the platform cannot run the subprocesses."""
        if self._started:
            return not self._broken and not self._closed
        self._started = True
        fault_spec = self._faults.to_spec() or None
        try:
            for slot in range(self._shard_count):
                self._hosts[slot] = ShardHost(
                    slot, 0, use_kernel=self._use_kernel,
                    fault_spec=fault_spec, on_message=self._on_message,
                )
        except (OSError, ValueError) as exc:
            self._broken = True
            self._teardown_hosts()
            return False
        deadline = _monotonic() + self._spawn_timeout_s
        for slot in range(self._shard_count):
            host = self._hosts[slot]
            if not host.ready.wait(max(0.0, deadline - _monotonic())):
                self._broken = True
                self._teardown_hosts()
                return False
        with self._cond:
            self._dead.clear()
            self._rebuild_ring_locked()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fdrepair-shard-monitor",
            daemon=True,
        )
        self._monitor.start()
        if self._schema is not None and self._fds is not None:
            from .exec import DEFAULT_SESSION_KEY

            if not self.open_session(DEFAULT_SESSION_KEY, self._schema,
                                     self._fds,
                                     node_limit=self._node_limit,
                                     budget_s=self._budget_s):
                self._broken = True
                self._teardown_hosts()
        return not self._broken

    # -- session namespaces -------------------------------------------

    def open_session(self, key, schema, fds, *,
                     node_limit: Optional[int] = None,
                     budget_s: Optional[float] = None) -> bool:
        """Install session *key* on every live shard (mirror starts
        empty; follow with a ``reset`` broadcast)."""
        limit = self._node_limit if node_limit is None else node_limit
        budget = self._budget_s if budget_s is None else budget_s
        with self._state_lock:
            self._spaces[key] = [tuple(schema), fds, limit, budget, {}, {}]
            self._journal[key] = []
            failed = self._send_mirror_locked(
                "open", _pack((key, tuple(schema), fds, limit, budget))
            )
        self._fail_shards(failed, "open broadcast failed")
        return self.alive

    def drop_session(self, key) -> bool:
        with self._state_lock:
            self._spaces.pop(key, None)
            self._journal.pop(key, None)
            failed = self._send_mirror_locked("drop", _pack((key,)))
        self._fail_shards(failed, "drop broadcast failed")
        return self.alive

    def broadcast(self, op, key=None) -> bool:
        """Apply one mirror-maintenance op — ``("reset", rows, weights)``,
        ``("append", rows, weights)`` or ``("delete", ids)`` — to the
        authoritative mirror, journal it, and fan it out to every live
        shard.  False (executor dead) instead of raising."""
        if key is None:
            from .exec import DEFAULT_SESSION_KEY

            key = DEFAULT_SESSION_KEY
        with self._state_lock:
            space = self._spaces.get(key)
            if space is None:
                return self.alive
            self._apply_mirror(space, op)
            journal = self._journal.setdefault(key, [])
            journal.append(tuple(op))
            if len(journal) > self._journal_compact_every:
                # Compaction: the whole history collapses to one reset of
                # the authoritative mirror — replay cost stays bounded.
                self._journal[key] = [
                    ("reset", dict(space[4]), dict(space[5]))
                ]
            failed = self._send_mirror_locked(
                op[0], _pack((key,) + tuple(op[1:]))
            )
        self._fail_shards(failed, "mirror broadcast failed")
        return self.alive

    @staticmethod
    def _apply_mirror(space, op) -> None:
        kind = op[0]
        if kind == "reset":
            space[4] = dict(op[1])
            space[5] = dict(op[2])
        elif kind == "append":
            space[4].update(op[1])
            space[5].update(op[2])
        elif kind == "delete":
            for tid in op[1]:
                space[4].pop(tid, None)
                space[5].pop(tid, None)

    def _send_mirror_locked(self, op: str, blob: str) -> List[int]:
        """Fan one mirror op out to every live shard (caller holds
        ``_state_lock``); returns the slots whose pipe refused it."""
        with self._cond:
            live = [
                (slot, self._hosts[slot], self._gens[slot])
                for slot in range(self._shard_count)
                if self._hosts[slot] is not None and slot not in self._dead
            ]
        failed = []
        for slot, host, gen in live:
            if self._faults.fire("shard.rpc.send", shard=slot,
                                 generation=gen, op=op,
                                 seq=None) == "drop":
                continue  # lost delta: heals via state error + replay
            if not host.send({"op": op, "blob": blob}):
                failed.append(slot)
        return failed

    def attach_table(self, key, table, fds, *,
                     node_limit: Optional[int] = None,
                     budget_s: Optional[float] = None) -> bool:
        """Batch-path convenience: open *key* and ship *table* as the
        initial mirror in one call (what
        :func:`repro.exec.solve_components` uses)."""
        return (
            self.open_session(key, table.schema, fds,
                              node_limit=node_limit, budget_s=budget_s)
            and self.broadcast(
                ("reset", dict(table.rows()), dict(table.weights())),
                key=key,
            )
        )

    # -- solving -------------------------------------------------------

    def solve(self, tasks: Sequence[Tuple], timeout: float = 120.0,
              key=None) -> List[Tuple[Tuple, str, float]]:
        """Solve ``(component ids, method[, budget_s])`` tasks on the
        shard fleet; returns ``(kept ids, effective method, seconds)``
        per task, in task order.  Thread-safe; concurrent daemon
        sessions interleave.  Shard deaths, dropped RPCs, and stalls are
        survived inside the call (retry → failover → local degradation);
        ``RuntimeError`` is raised only for the pool-seam failure modes
        — executor closed, batch *timeout* expired, or a shard-side
        solver exception — and callers fall back serially as with the
        worker pool."""
        if key is None:
            from .exec import DEFAULT_SESSION_KEY

            key = DEFAULT_SESSION_KEY
        if not self.alive:
            raise RuntimeError("sharded executor is not running")
        if not tasks:
            return []
        deadline = _monotonic() + timeout
        recs: List[_ShardTask] = []
        with self._cond:
            if self._closed:
                raise RuntimeError("sharded executor is not running")
            for task in tasks:
                budget = task[2] if len(task) > 2 else None
                rec = _ShardTask(key, task[0], task[1], budget)
                self._pending[self._next_task] = rec
                self._next_task += 1
                recs.append(rec)
        self._dispatch()
        failure = None
        try:
            while True:
                claimed: List[_ShardTask] = []
                with self._cond:
                    for rec in recs:
                        if rec.local and not rec.done and not rec.claimed:
                            rec.claimed = True
                            claimed.append(rec)
                for rec in claimed:
                    self._solve_local(rec)
                with self._cond:
                    if all(rec.done for rec in recs):
                        break
                    if self._closed:
                        failure = "sharded executor closed"
                    elif _monotonic() >= deadline:
                        failure = (
                            f"sharded solve timed out after {timeout:g}s"
                        )
                    if failure is not None:
                        break
                    self._cond.wait(0.05)
        finally:
            with self._cond:
                for tid in [
                    t for t, rec in self._pending.items() if rec in recs
                ]:
                    rec = self._pending.pop(tid)
                    if rec.seq is not None:
                        self._by_seq.pop(rec.seq, None)
        if failure is not None:
            raise RuntimeError(failure)
        results = []
        for rec in recs:
            if rec.error is not None:
                raise RuntimeError(f"shard solve failed: {rec.error}")
            results.append(rec.result)
        return results

    def _solve_local(self, rec: _ShardTask) -> None:
        """Graceful degradation: run one solve in the calling thread
        against the authoritative mirror — same rows, same pure solver,
        byte-identical answer; only the counters tell the difference."""
        from .core.table import Table
        from .exec import _solve_s_kept

        with self._state_lock:
            space = self._spaces.get(rec.key)
            if space is None:
                error: Optional[str] = f"unknown session namespace {rec.key!r}"
                payload = None
            else:
                schema, fds, node_limit, space_budget, rows, weights = space
                try:
                    payload = (
                        Table(
                            schema,
                            {tid: rows[tid] for tid in rec.ids},
                            {tid: weights[tid] for tid in rec.ids},
                        ),
                        fds, node_limit,
                        rec.budget if rec.budget is not None
                        else space_budget,
                    )
                    error = None
                except KeyError as exc:
                    payload = None
                    error = f"missing id {exc} in parent mirror"
        result = None
        if error is None:
            subtable, fds, node_limit, solve_budget = payload
            try:
                start = _perf_counter()
                kept, effective = _solve_s_kept(
                    subtable, fds, rec.method, node_limit,
                    budget_s=solve_budget,
                )
                result = (tuple(kept), effective,
                          _perf_counter() - start)
            except Exception as exc:
                error = repr(exc)
        with self._cond:
            if rec.done:
                return
            rec.result = result
            rec.error = error
            rec.done = True
            self._counters["degraded_local"] += 1
            self._cond.notify_all()
        if self._recorder.enabled:
            self._recorder.count("shard.degraded_local")

    # -- dispatch / responses -----------------------------------------

    def _dispatch(self) -> None:
        """Route every unrouted pending solve over the current ring and
        ship it.  Called after registration, after failures requeue
        work, after respawns restore capacity, and from the monitor
        tick (backoff gates)."""
        now = _monotonic()
        to_send = []
        with self._cond:
            ring = self._ring
            can_respawn = bool(self._respawn_at or self._respawning)
            for tid, rec in self._pending.items():
                if rec.done or rec.local or rec.slot is not None:
                    continue
                if now < rec.not_before:
                    continue
                if not ring:
                    if not can_respawn:
                        # Shards exhausted: graceful local degradation.
                        rec.local = True
                        self._cond.notify_all()
                    continue
                slot = ring.route(rec.route_key)
                rec.slot = slot
                rec.seq = self._next_seq
                self._next_seq += 1
                rec.sent_at = now
                rec.attempts += 1
                self._by_seq[rec.seq] = tid
                self._counters["rpcs"] += 1
                to_send.append((rec.seq, slot, self._gens[slot],
                                self._hosts[slot], rec))
        failed = set()
        for seq, slot, gen, host, rec in to_send:
            if self._faults.fire("shard.rpc.send", shard=slot,
                                 generation=gen, op="solve",
                                 seq=seq) == "drop":
                continue  # lost request: the RPC deadline recovers it
            ok = host.send({
                "op": "solve", "seq": seq,
                "blob": _pack((rec.key, rec.ids, rec.method, rec.budget)),
            })
            if not ok:
                failed.add(slot)
        self._fail_shards(failed, "solve dispatch failed")

    def _on_message(self, host: ShardHost, msg: Dict) -> None:
        """Reader-thread callback: correlate one shard response."""
        if msg.get("pong"):
            return  # last_activity already refreshed by the reader
        seq = msg.get("seq")
        stale_slot = None
        with self._cond:
            tid = self._by_seq.pop(seq, None) if seq is not None else None
            rec = self._pending.get(tid) if tid is not None else None
            if rec is None or rec.done or rec.seq != seq:
                return  # stale attempt (already retried or abandoned)
            if msg.get("ok"):
                try:
                    rec.result = _unpack(msg["blob"])
                except Exception as exc:
                    rec.error = f"undecodable shard reply: {exc!r}"
                rec.done = True
                self._cond.notify_all()
                return
            if msg.get("kind") in ("solve", "fault"):
                # A solver exception is a property of the component:
                # surface it to the caller exactly like the worker pool.
                rec.error = str(msg.get("error"))
                rec.done = True
                self._cond.notify_all()
                return
            # A *state* error means this shard's mirror is stale (a
            # dropped delta): requeue the solve and heal the shard by
            # respawn + journal replay.
            rec.slot = None
            rec.seq = None
            rec.sent_at = None
            self._counters["rerouted"] += 1
            stale_slot = host.slot if host.generation == self._gens[host.slot] else None
        if stale_slot is not None:
            self._fail_shard(stale_slot, "stale shard mirror")
        self._dispatch()

    # -- supervision ---------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(0.02):
            now = _monotonic()
            # 1. Reap exited shard processes.
            dead = []
            with self._cond:
                live = [
                    (slot, self._hosts[slot])
                    for slot in range(self._shard_count)
                    if self._hosts[slot] is not None
                    and slot not in self._dead
                ]
            for slot, host in live:
                if not host.alive():
                    dead.append(slot)
            for slot in dead:
                self._fail_shard(slot, "shard process died")
            # 2. Heartbeats: ping, and shoot silent shards.
            if now - self._last_hb >= self._hb_interval_s:
                self._last_hb = now
                self._heartbeat(now)
            # 3. RPC deadline sweep.
            self._sweep_rpc_deadlines(now)
            # 4. Due respawns.
            self._service_respawns(now)
            # 5. Backoff gates may have opened.
            self._dispatch()

    def _heartbeat(self, now: float) -> None:
        with self._cond:
            live = [
                (slot, self._hosts[slot], self._gens[slot])
                for slot in range(self._shard_count)
                if self._hosts[slot] is not None and slot not in self._dead
            ]
        silent = []
        for slot, host, gen in live:
            if now - host.last_activity > self._hb_miss_s:
                silent.append(slot)
                continue
            if self._faults.fire("shard.rpc.send", shard=slot,
                                 generation=gen, op="ping",
                                 seq=None) == "drop":
                continue
            host.send({"op": "ping", "seq": -1})
        for slot in silent:
            with self._cond:
                self._counters["heartbeat_misses"] += 1
            self._fail_shard(slot, "missed heartbeats")

    def _sweep_rpc_deadlines(self, now: float) -> None:
        """Retry RPCs past their deadline (capped exponential backoff);
        after ``rpc_retries`` attempts the routed shard is presumed
        wedged and failed over."""
        suspects = set()
        with self._cond:
            for tid, rec in self._pending.items():
                if (rec.done or rec.local or rec.sent_at is None
                        or rec.slot is None):
                    continue
                if now - rec.sent_at < self._rpc_timeout_s:
                    continue
                self._counters["timeouts"] += 1
                if rec.seq is not None:
                    self._by_seq.pop(rec.seq, None)
                slot = rec.slot
                rec.slot = None
                rec.seq = None
                rec.sent_at = None
                if rec.attempts <= self._rpc_retries:
                    self._counters["retries"] += 1
                    backoff = min(
                        self._retry_backoff_s * (2 ** (rec.attempts - 1)),
                        self._retry_backoff_cap_s,
                    )
                    rec.not_before = now + backoff
                else:
                    # Retries exhausted on this route: the shard is
                    # wedged (or the route is cursed).  Fail it over.
                    rec.attempts = 0
                    rec.not_before = now
                    rec.failovers += 1
                    suspects.add(slot)
                    if rec.failovers > self._shard_count:
                        rec.local = True
                        self._cond.notify_all()
        for slot in suspects:
            self._fail_shard(slot, "rpc deadline exhausted")
        if suspects:
            self._dispatch()

    def _fail_shards(self, slots, reason: str) -> None:
        for slot in slots:
            self._fail_shard(slot, reason)

    def _fail_shard(self, slot: int, reason: str) -> None:
        """Take one shard out of service: requeue its in-flight solves
        (transparent re-dispatch), rebuild the ring, and schedule a
        replacement with capped exponential backoff — or abandon the
        slot after ``max_respawns``.  When the last slot is gone every
        queued solve degrades to local execution."""
        now = _monotonic()
        with self._cond:
            host = self._hosts[slot]
            if host is None or slot in self._dead:
                return
            self._dead.add(slot)
            self._counters["shard_deaths"] += 1
            for tid, rec in self._pending.items():
                if rec.slot == slot and not rec.done:
                    if rec.seq is not None:
                        self._by_seq.pop(rec.seq, None)
                    rec.slot = None
                    rec.seq = None
                    rec.sent_at = None
                    rec.attempts = 0
                    self._counters["rerouted"] += 1
            self._rebuild_ring_locked()
            attempts = self._respawn_attempts.get(slot, 0)
            if attempts >= self._max_respawns:
                self._abandoned.add(slot)
                self._counters["abandoned"] += 1
                self._respawn_at.pop(slot, None)
            else:
                backoff = min(
                    self._respawn_backoff_s * (2 ** attempts),
                    self._respawn_backoff_cap_s,
                )
                self._respawn_at[slot] = now + backoff
            if (not self._ring and not self._respawn_at
                    and not self._respawning):
                for rec in self._pending.values():
                    if not rec.done:
                        rec.local = True
            self._cond.notify_all()
        host.close(kill=True)
        if self._recorder.enabled:
            self._recorder.count("shard.death", key=reason)
        self._dispatch()

    def _rebuild_ring_locked(self) -> None:
        members = [
            slot for slot in range(self._shard_count)
            if self._hosts[slot] is not None
            and slot not in self._dead
            and slot not in self._abandoned
        ]
        self._ring = HashRing(members, self._vnodes)

    def _service_respawns(self, now: float) -> None:
        due = []
        with self._cond:
            for slot, at in list(self._respawn_at.items()):
                if now >= at and slot not in self._respawning:
                    self._respawning.add(slot)
                    del self._respawn_at[slot]
                    due.append(slot)
        for slot in due:
            self._respawn_shard(slot)

    def _respawn_shard(self, slot: int) -> None:
        """Spawn a replacement for *slot* and re-derive its mirrors by
        replaying the parent-side delta journal, then let it rejoin the
        ring (rebalance routes its arc back)."""
        self._respawn_attempts[slot] = (
            self._respawn_attempts.get(slot, 0) + 1
        )
        gen = self._gens[slot] + 1
        fault_spec = self._faults.to_spec() or None
        try:
            host = ShardHost(slot, gen, use_kernel=self._use_kernel,
                             fault_spec=fault_spec,
                             on_message=self._on_message)
        except (OSError, ValueError):
            host = None
        if host is not None and not host.ready.wait(self._spawn_timeout_s):
            host.close(kill=True)
            host = None
        if host is None:
            with self._cond:
                self._respawning.discard(slot)
                if self._respawn_attempts[slot] >= self._max_respawns:
                    self._abandoned.add(slot)
                    self._counters["abandoned"] += 1
                    if (not self._ring and not self._respawn_at
                            and not self._respawning):
                        for rec in self._pending.values():
                            if not rec.done:
                                rec.local = True
                        self._cond.notify_all()
                else:
                    backoff = min(
                        self._respawn_backoff_s
                        * (2 ** self._respawn_attempts[slot]),
                        self._respawn_backoff_cap_s,
                    )
                    self._respawn_at[slot] = _monotonic() + backoff
            return
        # Replay under the state lock so no broadcast can slip between
        # the journal replay and the shard joining the live set.
        with self._state_lock:
            for key, space in self._spaces.items():
                host.send({"op": "open", "blob": _pack(
                    (key, space[0], space[1], space[2], space[3])
                )})
                for op in self._journal.get(key, ()):
                    host.send({
                        "op": op[0],
                        "blob": _pack((key,) + tuple(op[1:])),
                    })
            with self._cond:
                old = self._hosts[slot]
                self._hosts[slot] = host
                self._gens[slot] = gen
                self._dead.discard(slot)
                self._respawning.discard(slot)
                self._rebuild_ring_locked()
                self._counters["respawns"] += 1
                self._cond.notify_all()
        if old is not None:
            old.close(kill=True)
        if self._recorder.enabled:
            self._recorder.count("shard.respawn")
        self._dispatch()

    # -- teardown ------------------------------------------------------

    def _teardown_hosts(self) -> None:
        for slot in range(self._shard_count):
            host = self._hosts[slot]
            if host is not None:
                host.close(kill=True)
                self._hosts[slot] = None
        with self._cond:
            self._dead = set(range(self._shard_count))
            self._ring = HashRing((), self._vnodes)
            self._cond.notify_all()

    def close(self) -> None:
        """Shut the fleet down; idempotent, never blocks on a wedged
        shard (graceful ``shutdown`` first, then kill)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        with self._cond:
            hosts = [
                self._hosts[slot]
                for slot in range(self._shard_count)
                if self._hosts[slot] is not None
                and slot not in self._dead
            ]
            for rec in self._pending.values():
                if not rec.done:
                    rec.error = "sharded executor closed"
                    rec.done = True
            self._pending.clear()
            self._by_seq.clear()
            self._cond.notify_all()
        for host in hosts:
            host.send({"op": "shutdown"})
        self._teardown_hosts()

    def __enter__(self) -> "ShardedExecutor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            if self._started and not self._closed:
                self.close()
        except Exception:
            pass


if __name__ == "__main__":  # pragma: no cover - exercised as subprocess
    sys.exit(main())
