"""Workload generators: paper data and synthetic instances.

* :mod:`repro.datagen.office` — the Figure 1 running example with golden
  distances;
* :mod:`repro.datagen.synthetic` — consistent tables with planted
  corruption;
* :mod:`repro.datagen.graphs` — random (bounded-degree / tripartite)
  graphs for the reduction experiments;
* :mod:`repro.datagen.cnf` — random non-mixed CNF formulas;
* :mod:`repro.datagen.probabilistic` — tuple-independent probabilistic
  tables.
"""

from .office import (
    EXPECTED_SUBSET_DISTANCES,
    EXPECTED_UPDATE_DISTANCES,
    OFFICE_SCHEMA,
    consistent_subsets,
    consistent_updates,
    office_fds,
    office_table,
)
from .synthetic import (
    consistent_table,
    corrupt_cells,
    planted_violations_table,
    portfolio_mix_table,
    random_table,
)
from .graphs import bounded_degree_graph, gnp_graph, random_tripartite_graph
from .cnf import random_non_mixed_formula
from .probabilistic import random_probabilistic_table

__all__ = [
    "EXPECTED_SUBSET_DISTANCES", "EXPECTED_UPDATE_DISTANCES", "OFFICE_SCHEMA",
    "consistent_subsets", "consistent_updates", "office_fds", "office_table",
    "consistent_table", "corrupt_cells", "planted_violations_table",
    "portfolio_mix_table", "random_table",
    "bounded_degree_graph", "gnp_graph", "random_tripartite_graph",
    "random_non_mixed_formula",
    "random_probabilistic_table",
]
