"""Synthetic dirty-table generators.

The paper has no empirical section, so the benchmark workloads are
synthetic tables with *planted* inconsistency: we first generate a table
consistent with Δ (by memoising, per FD, the rhs values implied by each
lhs value) and then corrupt a controlled fraction of cells.  This gives
workloads whose optimal repair distance scales with the corruption rate,
which is what the scaling and approximation-ratio experiments need.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.fd import FDSet
from ..core.table import Table

__all__ = [
    "random_table",
    "consistent_table",
    "planted_violations_table",
    "clustered_conflicts_table",
    "corrupt_cells",
    "portfolio_mix_table",
]


def random_table(
    schema: Sequence[str],
    size: int,
    domain: int = 4,
    weighted: bool = False,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Table:
    """A fully random table (uniform values ``v0…v{domain-1}``)."""
    rng = rng or random.Random(seed)
    rows = [
        tuple(f"v{rng.randrange(domain)}" for _ in schema) for _ in range(size)
    ]
    weights = (
        [float(rng.choice((1, 1, 2, 3))) for _ in range(size)] if weighted else None
    )
    return Table.from_rows(schema, rows, weights)


def consistent_table(
    schema: Sequence[str],
    fds: FDSet,
    size: int,
    domain: int = 4,
    weighted: bool = False,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    max_rounds: int = 100,
) -> Table:
    """A random table satisfying Δ.

    Each tuple starts random; we then repeatedly rewrite, per FD, every
    rhs cell to the *minimum* rhs value of its lhs group.  Cell values
    only ever decrease in a fixed total order, so the iteration provably
    converges even when several FDs share an rhs attribute (the flapping
    case of ``{A→C, B→C}``) or when one FD's rhs feeds another's lhs; at
    the fixpoint every lhs group is rhs-constant, i.e. the table
    satisfies Δ.
    """
    from ..core.violations import satisfies

    rng = rng or random.Random(seed)
    fds_n = fds.with_singleton_rhs().without_trivial()
    index = {a: i for i, a in enumerate(schema)}
    rows: List[List[str]] = [
        [f"v{rng.randrange(domain)}" for _ in schema] for _ in range(size)
    ]
    for _ in range(max_rounds):
        changed = False
        for fd in fds_n:
            (rhs_attr,) = tuple(fd.rhs)
            lhs_attrs = sorted(fd.lhs)
            groups: Dict[Tuple[str, ...], List[List[str]]] = {}
            for row in rows:
                key = tuple(row[index[a]] for a in lhs_attrs)
                groups.setdefault(key, []).append(row)
            for members in groups.values():
                want = min(member[index[rhs_attr]] for member in members)
                for member in members:
                    if member[index[rhs_attr]] != want:
                        member[index[rhs_attr]] = want
                        changed = True
        if not changed:
            break
    table = Table.from_rows(
        schema,
        [tuple(row) for row in rows],
        [float(rng.choice((1, 1, 2, 3))) for _ in range(size)] if weighted else None,
    )
    if not satisfies(table, fds_n):
        raise AssertionError("consistent_table failed to converge")
    return table


def corrupt_cells(
    table: Table,
    rate: float,
    domain: int = 4,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Table:
    """Flip each cell, independently with probability *rate*, to a random
    domain value (possibly introducing FD violations)."""
    rng = rng or random.Random(seed)
    updates = {}
    for tid in table.ids():
        for attr in table.schema:
            if rng.random() < rate:
                updates[(tid, attr)] = f"v{rng.randrange(domain)}"
    return table.with_updates(updates)


def planted_violations_table(
    schema: Sequence[str],
    fds: FDSet,
    size: int,
    corruption: float = 0.1,
    domain: int = 4,
    weighted: bool = False,
    seed: Optional[int] = None,
) -> Table:
    """A consistent table with a fraction of cells corrupted.

    The standard dirty-data workload of the benchmarks: corruption ``0``
    gives a consistent table (repair distance 0); higher rates increase
    the number of violating pairs roughly proportionally.
    """
    rng = random.Random(seed)
    clean = consistent_table(
        schema, fds, size, domain=domain, weighted=weighted, rng=rng
    )
    return corrupt_cells(clean, corruption, domain=domain, rng=rng)


def clustered_conflicts_table(
    schema: Sequence[str],
    size: int,
    clusters: int,
    cluster_size: int,
    filler_group_size: int = 40,
    conflict_values: int = 3,
    weighted: bool = False,
    seed: Optional[int] = None,
) -> Table:
    """A table whose conflicts form *clusters* disjoint components.

    The realistic dirtiness shape the decomposition layer exploits: most
    tuples are consistent, and the violations that do exist cluster into
    small independent groups (duplicate records of one entity, one
    ingest batch gone wrong, …).

    Layout, for a schema whose first two attributes play lhs/rhs roles
    (e.g. ``(A, B, C)`` under ``A → B``-style FD sets): each conflict
    cluster ``i`` holds *cluster_size* tuples sharing the unique lhs
    value ``a<i>`` with *conflict_values* distinct rhs values
    ``b<i>.0 … b<i>.k`` (cluster-unique, so no FD can link two clusters),
    and the remaining tuples fill consistent groups of
    *filler_group_size* exact-duplicate tuples (distinct identifiers,
    identical values — consistent under every FD set).  Rows are
    shuffled so components interleave in table order.
    """
    if cluster_size < 2 or conflict_values < 2:
        raise ValueError("clusters need ≥2 tuples over ≥2 conflicting values")
    if clusters * cluster_size > size:
        raise ValueError("clusters do not fit in the requested size")
    rng = random.Random(seed)
    rows: List[Tuple[str, ...]] = []
    for i in range(clusters):
        for j in range(cluster_size):
            rhs = f"b{i}.{j % conflict_values}"
            rest = tuple(f"x{i}" for _ in schema[2:])
            rows.append((f"a{i}", rhs) + rest)
    group = 0
    while len(rows) < size:
        members = min(filler_group_size, size - len(rows))
        row = (f"f{group}", f"g{group}") + tuple(
            f"y{group}" for _ in schema[2:]
        )
        rows.extend([row] * members)
        group += 1
    rng.shuffle(rows)
    weights = (
        [float(rng.choice((1, 1, 2, 3))) for _ in rows] if weighted else None
    )
    return Table.from_rows(schema, rows, weights)


def portfolio_mix_table(
    schema: Sequence[str],
    easy_components: int = 6,
    easy_size: int = 220,
    hard_components: int = 4,
    hard_size: int = 100,
    hard_values: int = 10,
    seed: Optional[int] = None,
) -> Table:
    """A mixed **easy-large / hard-small** workload — the family where
    difficulty ordering beats size ordering.

    Built for a 2-FD overlay Δ of the shape ``A → B; B → C`` (APX-hard,
    so the portfolio faces the exact-vs-approximate choice) over a
    ``(A, B, C)``-prefixed schema:

    * *easy_components* **path** components of *easy_size* tuples each,
      all at weight ``1.0``: tuple ``2k+1``/``2k+2`` share an A value
      (differing B ⇒ an ``A → B`` edge), tuple ``2k``/``2k+1`` share a
      B value (differing C ⇒ a ``B → C`` edge).  Under uniform weights
      the solver's pendant rule (take the unique neighbour whenever
      ``w_u ≤ w_v``) collapses the entire chain in the simplification
      loop — the exact solve never branches — yet the component's size
      puts it *above* the historical exact threshold: the size rule
      settles for ratio 2 where the difficulty scheduler solves it
      exactly in milliseconds.
    * *hard_components* dense **tangles** of *hard_size* tuples each
      (A/B drawn uniformly from *hard_values* values, binary C, weights
      from ``{0.5, 1, 2, 3}`` — heterogeneous weights blunt both the
      pendant rule and the matching prune), sized *below* the
      threshold: the size rule burns its whole per-component budget
      branching on each before falling back, while the predictor ranks
      them last and the scheduler downgrades them up front.

    Component value spaces are prefixed per component, so the conflict
    graph decomposes exactly as constructed; rows are shuffled so
    components interleave in table order.
    """
    if len(schema) < 3:
        raise ValueError("portfolio_mix_table needs ≥3 attributes")
    rng = random.Random(seed)
    rows: List[Tuple[Tuple[str, ...], float]] = []
    rest = tuple("z" for _ in schema[3:])
    for i in range(easy_components):
        for j in range(easy_size):
            a = f"e{i}.u{(j + 1) // 2}"
            b = f"e{i}.v{j // 2}"
            c = f"c{j % 2}"
            rows.append(((a, b, c) + rest, 1.0))
    for i in range(hard_components):
        for _ in range(hard_size):
            a = f"h{i}.a{rng.randrange(hard_values)}"
            b = f"h{i}.b{rng.randrange(hard_values)}"
            c = f"c{rng.randrange(2)}"
            rows.append(((a, b, c) + rest, rng.choice((0.5, 1.0, 2.0, 3.0))))
    rng.shuffle(rows)
    return Table.from_rows(
        schema, [row for row, _ in rows], [weight for _, weight in rows]
    )
