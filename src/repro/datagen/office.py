"""The paper's running example (Figure 1, Examples 2.1–2.3).

The ``Office(facility, room, floor, city)`` table with FDs
``facility → city`` and ``facility room → floor``, together with the
consistent subsets S1–S3 and consistent updates U1–U3 of Figure 1 and
their distances as computed in Example 2.3.  These are the golden values
for experiment E1.
"""

from __future__ import annotations

from typing import Dict

from ..core.fd import FDSet
from ..core.table import Table

__all__ = [
    "OFFICE_SCHEMA",
    "office_fds",
    "office_table",
    "consistent_subsets",
    "consistent_updates",
    "EXPECTED_SUBSET_DISTANCES",
    "EXPECTED_UPDATE_DISTANCES",
]

OFFICE_SCHEMA = ("facility", "room", "floor", "city")

#: Example 2.3's distances for the consistent subsets of Figure 1.
EXPECTED_SUBSET_DISTANCES = {"S1": 2.0, "S2": 2.0, "S3": 3.0}

#: Example 2.3's distances for the consistent updates of Figure 1.
EXPECTED_UPDATE_DISTANCES = {"U1": 2.0, "U2": 3.0, "U3": 4.0}


def office_fds() -> FDSet:
    """Δ of the running example (Example 2.2)."""
    return FDSet("facility -> city; facility room -> floor")


def office_table() -> Table:
    """Table T of Figure 1(a)."""
    return Table(
        OFFICE_SCHEMA,
        {
            1: ("HQ", "322", 3, "Paris"),
            2: ("HQ", "322", 30, "Madrid"),
            3: ("HQ", "122", 1, "Madrid"),
            4: ("Lab1", "B35", 3, "London"),
        },
        {1: 2, 2: 1, 3: 1, 4: 2},
        name="Office",
    )


def consistent_subsets() -> Dict[str, Table]:
    """S1, S2, S3 of Figures 1(b)–1(d)."""
    table = office_table()
    return {
        "S1": table.subset((2, 3, 4)),
        "S2": table.subset((1, 4)),
        "S3": table.subset((3, 4)),
    }


def consistent_updates() -> Dict[str, Table]:
    """U1, U2, U3 of Figures 1(e)–1(g) (changed cells per the yellow
    shading)."""
    table = office_table()
    return {
        # U1: tuple 1's facility becomes the fresh constant F01.
        "U1": table.with_updates({(1, "facility"): "F01"}),
        # U2: tuple 2 gets floor 3 and city Paris; tuple 3 gets city Paris.
        "U2": table.with_updates(
            {
                (2, "floor"): 3,
                (2, "city"): "Paris",
                (3, "city"): "Paris",
            }
        ),
        # U3: tuple 1 gets floor 30 and city Madrid (weight 2 → distance 4).
        "U3": table.with_updates(
            {
                (1, "floor"): 30,
                (1, "city"): "Madrid",
            }
        ),
    }
