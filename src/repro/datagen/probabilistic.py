"""Random probabilistic tables (workloads for the MPD experiments)."""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.table import Table

__all__ = ["random_probabilistic_table"]


def random_probabilistic_table(
    schema: Sequence[str],
    size: int,
    domain: int = 3,
    certain_fraction: float = 0.1,
    unlikely_fraction: float = 0.2,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Table:
    """A tuple-independent probabilistic table.

    Weights are probabilities in ``(0, 1]``: a *certain_fraction* of
    tuples get probability 1.0, an *unlikely_fraction* get probabilities
    ≤ 0.5 (which the Theorem 3.10 reduction may discard), and the rest lie
    in ``(0.5, 1)`` — exercising all three branches of the reduction.
    """
    rng = rng or random.Random(seed)
    rows = []
    weights = []
    for _ in range(size):
        rows.append(tuple(f"v{rng.randrange(domain)}" for _ in schema))
        roll = rng.random()
        if roll < certain_fraction:
            weights.append(1.0)
        elif roll < certain_fraction + unlikely_fraction:
            weights.append(round(rng.uniform(0.05, 0.5), 3))
        else:
            weights.append(round(rng.uniform(0.501, 0.99), 3))
    return Table.from_rows(schema, rows, weights)
