"""Random non-mixed CNF formulas (workloads for Lemma A.13)."""

from __future__ import annotations

import random
from typing import Optional

from ..reductions.sat import Clause, NonMixedFormula

__all__ = ["random_non_mixed_formula"]


def random_non_mixed_formula(
    num_vars: int,
    num_clauses: int,
    clause_size: int = 2,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> NonMixedFormula:
    """A random formula whose clauses are all-positive or all-negative.

    Each clause picks *clause_size* distinct variables and a uniform sign,
    matching the MAX-non-mixed-SAT instances of Håstad [21] used in the
    Lemma A.13 reduction.
    """
    rng = rng or random.Random(seed)
    if clause_size > num_vars:
        raise ValueError("clause_size exceeds the number of variables")
    variables = [f"x{i}" for i in range(num_vars)]
    clauses = []
    for _ in range(num_clauses):
        chosen = frozenset(rng.sample(variables, clause_size))
        clauses.append(Clause(positive=rng.random() < 0.5, variables=chosen))
    return NonMixedFormula(tuple(clauses))
