"""Random graph generators for the reduction benchmarks.

Theorem 4.10's hardness holds for bounded-degree graphs (the vertex-cover
problem is APX-complete there), so the U-repair identity experiment uses
:func:`bounded_degree_graph`; Lemma A.11 uses random tripartite graphs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..graphs.graph import Graph
from ..reductions.triangles import TripartiteGraph

__all__ = ["gnp_graph", "bounded_degree_graph", "random_tripartite_graph"]


def gnp_graph(
    n: int, p: float, seed: Optional[int] = None, rng: Optional[random.Random] = None
) -> Graph:
    """An Erdős–Rényi G(n, p) graph on nodes ``n0…n{n-1}``."""
    rng = rng or random.Random(seed)
    g = Graph()
    nodes = [f"n{i}" for i in range(n)]
    for node in nodes:
        g.add_node(node)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(nodes[i], nodes[j])
    return g


def bounded_degree_graph(
    n: int,
    max_degree: int = 3,
    edge_factor: float = 1.2,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Graph:
    """A random graph whose maximum degree stays at *max_degree*.

    Samples ``⌈edge_factor·n⌉`` candidate edges uniformly and keeps those
    that respect the degree bound.  Matches the bounded-degree regime used
    by the APX-hardness arguments (vertex cover in cubic graphs [2]).
    """
    rng = rng or random.Random(seed)
    g = Graph()
    nodes = [f"n{i}" for i in range(n)]
    for node in nodes:
        g.add_node(node)
    target = int(edge_factor * n)
    attempts = 0
    while g.num_edges() < target and attempts < 20 * target:
        attempts += 1
        i, j = rng.randrange(n), rng.randrange(n)
        if i == j:
            continue
        u, v = nodes[i], nodes[j]
        if g.has_edge(u, v):
            continue
        if g.degree(u) >= max_degree or g.degree(v) >= max_degree:
            continue
        g.add_edge(u, v)
    return g


def random_tripartite_graph(
    part_size: int,
    p: float = 0.4,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> TripartiteGraph:
    """A random tripartite graph with *part_size* nodes per part."""
    rng = rng or random.Random(seed)
    part_a = tuple(f"a{i}" for i in range(part_size))
    part_b = tuple(f"b{i}" for i in range(part_size))
    part_c = tuple(f"c{i}" for i in range(part_size))
    g = TripartiteGraph(part_a, part_b, part_c)
    for xs, ys in ((part_a, part_b), (part_a, part_c), (part_b, part_c)):
        for x in xs:
            for y in ys:
                if rng.random() < p:
                    g.add_edge(x, y)
    return g
