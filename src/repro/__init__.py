"""repro — optimal repairs for functional dependencies.

A complete reproduction of *Computing Optimal Repairs for Functional
Dependencies* (Livshits, Kimelfeld, Roy — PODS 2018, arXiv:1712.07705):

* optimal **S-repairs** (minimum-weight tuple deletions): the ``OptSRepair``
  dichotomy algorithm, exact vertex-cover baselines, and the
  2-approximation of Proposition 3.3;
* optimal **U-repairs** (minimum-weight cell updates): the tractable cases
  of Section 4, exhaustive search for small instances, and the
  ``2·mlc(Δ)``-approximation of Theorem 4.12;
* the **dichotomy classifier** (Algorithm 2 + the five hardness classes of
  Figure 2 with their fact-wise reduction sources);
* the **Most Probable Database** reduction (Theorem 3.10);
* the paper's hardness constructions (fact-wise reductions, the
  MAX-non-mixed-SAT / triangle-packing / vertex-cover reductions) as
  executable artefacts.

Quickstart::

    >>> from repro import FDSet, Table, optimal_s_repair, u_repair
    >>> fds = FDSet("facility -> city; facility room -> floor")
    >>> table = Table.from_rows(
    ...     ["facility", "room", "floor", "city"],
    ...     [("HQ", "322", 3, "Paris"), ("HQ", "322", 30, "Madrid"),
    ...      ("HQ", "122", 1, "Madrid"), ("Lab1", "B35", 3, "London")],
    ...     weights=[2, 1, 1, 2])
    >>> result = optimal_s_repair(table, fds)
    >>> result.distance
    2.0
"""

from .core import *  # noqa: F401,F403 — the curated core API
from .core import __all__ as _core_all
from .exec import (
    PersistentWorkerPool,
    decomposed_s_repair,
    decomposed_u_repair,
    map_components,
)
from .pipeline import CleaningResult, DirtinessReport, assess, clean
from .session import RepairSession, SessionStats

__version__ = "1.2.0"

__all__ = list(_core_all) + [
    "CleaningResult",
    "DirtinessReport",
    "PersistentWorkerPool",
    "RepairSession",
    "SessionStats",
    "assess",
    "clean",
    "decomposed_s_repair",
    "decomposed_u_repair",
    "map_components",
]
