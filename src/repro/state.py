"""Crash-safe daemon state: session stores, the op journal, snapshots.

The daemon's durability story has three cooperating pieces, all owned
by :class:`~repro.server.SessionManager` and rooted at one
``--state-dir``:

``SessionStore``
    Where *frozen* (LRU-evicted) session blobs live.  The default
    :class:`MemorySessionStore` keeps PR-6 semantics — eviction trades
    heap for pickling work but a daemon crash loses everything.  With a
    state dir, :class:`DiskSessionStore` spools frozen sessions to
    files, so eviction actually releases memory and survives a crash
    between snapshots.

``OpJournal``
    An append-only JSONL log of every *successful mutating* op
    (``open``/``append``/``delete``/``repair``/``close`` — see
    :data:`repro.protocol.JOURNALED_OPS`), written **after** the op
    commits and before the client is acknowledged.  Writes are flushed
    to the OS per record (a killed *process* loses nothing) and
    ``fsync``\\ ed every *fsync_every* records (bounding what a killed
    *machine* can lose).  Because sessions are deterministic — row ids
    are allocated deterministically and component repairs are pure
    functions of content — replaying the journal rebuilds every
    session **byte-identically**: the journal stores what was *asked*,
    never solver output.

Snapshots
    Replay cost is bounded by periodic *snapshot compaction*: when the
    journal has grown by ``snapshot_every`` records and no session is
    mid-op, the manager pickles every session's ``export_state`` into
    ``snapshot.pkl`` (atomic tmp + rename), stamps it with the journal
    sequence it covers, and truncates the journal.  Recovery loads the
    snapshot, replays the journal tail past the stamped sequence, and
    compacts again — so repeated crashes never replay the same tail
    twice.  The shared solution cache rides in the snapshot too: a
    recovered daemon's first repairs are cache hits, which is what
    makes warm recovery beat a cold restart.

Fault-injection sites ``journal.append.before`` / ``journal.append.after``
(:mod:`repro.faults`) bracket the journal write — the two crash
positions recovery must distinguish (op lost vs. op preserved).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from . import faults as _faults

__all__ = [
    "SessionStore",
    "MemorySessionStore",
    "DiskSessionStore",
    "OpJournal",
    "load_snapshot",
    "write_snapshot",
    "JOURNAL_NAME",
    "SNAPSHOT_NAME",
    "SPOOL_DIR",
]

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.pkl"
SPOOL_DIR = "spool"


# ---------------------------------------------------------------------------
# Session stores (frozen-session blobs)
# ---------------------------------------------------------------------------

class SessionStore:
    """Keyed blob storage for frozen session state.

    ``put`` returns the stored size in bytes (the manager's accounting
    charge).  Implementations must be thread-safe: freezes run on the
    event loop while rehydrations run on executor threads.
    """

    def put(self, key: str, blob: bytes) -> int:
        raise NotImplementedError

    def get(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def pop(self, key: str) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class MemorySessionStore(SessionStore):
    """Frozen blobs held on the heap — the stateless-daemon default."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._blobs: Dict[str, bytes] = {}

    def put(self, key: str, blob: bytes) -> int:
        with self._lock:
            self._blobs[key] = blob
        return len(blob)

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            return self._blobs.get(key)

    def pop(self, key: str) -> None:
        with self._lock:
            self._blobs.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._blobs.clear()


class DiskSessionStore(SessionStore):
    """Frozen blobs spooled to one file per session under the state
    dir.  Filenames are content-independent digests of the session key,
    so arbitrary tenant/session names never meet the filesystem."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()

    def _path(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:40]
        return os.path.join(self.directory, f"{digest}.pkl")

    def put(self, key: str, blob: bytes) -> int:
        path = self._path(key)
        with self._lock:
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        return len(blob)

    def get(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def pop(self, key: str) -> None:
        try:
            os.remove(self._path(key))
        except OSError:
            pass

    def clear(self) -> None:
        with self._lock:
            try:
                names = os.listdir(self.directory)
            except OSError:
                return
            for name in names:
                if name.endswith(".pkl") or name.endswith(".tmp"):
                    try:
                        os.remove(os.path.join(self.directory, name))
                    except OSError:
                        pass


# ---------------------------------------------------------------------------
# The op journal
# ---------------------------------------------------------------------------

class OpJournal:
    """Append-only, fsync-batched JSONL op log with atomic compaction.

    ``append`` assigns the global sequence number under the journal
    lock, so the on-disk order *is* the execution order the manager
    acknowledged.  ``compact`` atomically replaces the snapshot and
    truncates the log; the caller supplies the snapshot payload and
    must guarantee no concurrent appends (the manager only compacts
    when every session lock is free).

    With ``keep > 0`` compaction *rotates* instead of truncating: the
    closed segment moves to ``<path>.1`` (older segments shifting to
    ``.2`` … ``.keep``, the oldest dropped), so the last *keep*
    pre-snapshot epochs stay inspectable and a recovery whose snapshot
    is lost or unreadable can replay the whole retained chain
    (:meth:`load_chain`) instead of only the live tail.  *max_bytes*
    bounds the live segment: :attr:`oversized` turns true once the file
    passes it, and the manager treats that as a compaction trigger just
    like the op-count threshold.
    """

    def __init__(self, path: str, *, fsync_every: int = 8,
                 start_seq: int = 0, faults=None,
                 max_bytes: Optional[int] = None, keep: int = 0) -> None:
        self.path = path
        self.fsync_every = max(1, int(fsync_every))
        self.max_bytes = None if not max_bytes else max(1, int(max_bytes))
        self.keep = max(0, int(keep))
        self._faults = _faults.resolve(faults)
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOWrapper] = None
        self.seq = int(start_seq)
        self.appends = 0
        self.fsyncs = 0
        self.rotations = 0
        self.appends_since_snapshot = 0
        try:
            self.bytes = os.path.getsize(path)
        except OSError:
            self.bytes = 0
        self._open_handle()

    def _open_handle(self) -> None:
        self._handle = open(self.path, "a", encoding="utf-8")

    @property
    def oversized(self) -> bool:
        """True once the live segment passed *max_bytes* — the manager's
        size-based compaction trigger."""
        return self.max_bytes is not None and self.bytes >= self.max_bytes

    def append(self, op: str, tenant: str, session: str,
               payload: Mapping[str, object]) -> int:
        """Durably log one acknowledged op; returns its sequence."""
        with self._lock:
            self.seq += 1
            seq = self.seq
            record = {"seq": seq, "op": op, "tenant": tenant,
                      "session": session, "payload": dict(payload or {})}
            self._faults.fire("journal.append.before", op=op)
            line = json.dumps(record, default=str) + "\n"
            self._handle.write(line)
            # Flush every record (survives a killed process); fsync in
            # batches (bounds what a killed machine loses).
            self._handle.flush()
            self.bytes += len(line.encode("utf-8"))
            self.appends += 1
            self.appends_since_snapshot += 1
            if self.appends % self.fsync_every == 0:
                os.fsync(self._handle.fileno())
                self.fsyncs += 1
            self._faults.fire("journal.append.after", op=op)
        return seq

    def sync(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self.fsyncs += 1

    def compact(self, snapshot_path: str, snapshot: Dict[str, object]) -> None:
        """Atomically persist *snapshot* (stamped by the caller with
        the current ``seq``) and truncate the journal."""
        with self._lock:
            tmp = snapshot_path + ".tmp"
            with open(tmp, "wb") as handle:
                pickle.dump(snapshot, handle, protocol=4)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, snapshot_path)
            self._handle.close()
            if self.keep > 0:
                # Rotate: the closed segment becomes .1, elders shift up,
                # anything past the retention window is dropped.
                try:
                    os.remove(f"{self.path}.{self.keep}")
                except OSError:
                    pass
                for i in range(self.keep - 1, 0, -1):
                    try:
                        os.replace(f"{self.path}.{i}", f"{self.path}.{i + 1}")
                    except OSError:
                        pass
                try:
                    os.replace(self.path, f"{self.path}.1")
                    self.rotations += 1
                except OSError:
                    pass
            self._handle = open(self.path, "w", encoding="utf-8")
            self.bytes = 0
            self.appends_since_snapshot = 0

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                    self.fsyncs += 1
                except (OSError, ValueError):
                    pass
                self._handle.close()
                self._handle = None

    @staticmethod
    def load(path: str) -> Tuple[List[Dict[str, object]], int]:
        """Read every intact record from a journal file.

        Tolerates a torn final line (a crash mid-write): reading stops
        at the first undecodable line.  Returns ``(records, last_seq)``.
        """
        records: List[Dict[str, object]] = []
        last_seq = 0
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError:
            return records, last_seq
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    break  # torn tail from a crash mid-append
                if not isinstance(record, dict) or "seq" not in record:
                    break
                records.append(record)
                last_seq = max(last_seq, int(record["seq"]))
        return records, last_seq

    @staticmethod
    def chain_paths(path: str, keep: int) -> List[str]:
        """The retained journal chain oldest-first: ``<path>.keep`` …
        ``<path>.1``, then the live segment.  Only existing files."""
        paths = [
            f"{path}.{i}" for i in range(max(0, int(keep)), 0, -1)
        ]
        paths.append(path)
        return [p for p in paths if os.path.exists(p)]

    @staticmethod
    def load_chain(path: str, keep: int = 0) -> Tuple[List[Dict[str, object]], int]:
        """Read the whole retained chain oldest-first with a monotonic
        sequence guard (a stale or re-used segment cannot replay an op
        twice).  ``keep=0`` degrades to :meth:`load` on the live file."""
        records: List[Dict[str, object]] = []
        last_seq = 0
        for segment in OpJournal.chain_paths(path, keep):
            seg_records, seg_last = OpJournal.load(segment)
            for record in seg_records:
                if int(record["seq"]) > last_seq:
                    records.append(record)
            last_seq = max(last_seq, seg_last)
        return records, last_seq


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

def write_snapshot(path: str, snapshot: Dict[str, object]) -> None:
    """Atomic standalone snapshot write (tmp + fsync + rename)."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(snapshot, handle, protocol=4)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot(path: str) -> Optional[Dict[str, object]]:
    """Load a snapshot written by :meth:`OpJournal.compact`; ``None``
    when absent or unreadable (recovery then replays the full journal)."""
    try:
        with open(path, "rb") as handle:
            snapshot = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    if not isinstance(snapshot, dict) or "journal_seq" not in snapshot:
        return None
    return snapshot
