"""Deterministic fault injection for chaos tests and CI smokes.

The fault-tolerance layer (supervised worker pool, crash-safe daemon
journal) is only trustworthy if its failure paths are *exercised* — and
exercising them with ``monkeypatch`` or ad-hoc ``os.kill`` calls from
tests couples the tests to internals and races against schedulers.  This
module gives every failure path a **named site** and lets a test (or the
CI chaos smoke) declare, up front and reproducibly, exactly which hits
of which sites misbehave:

``FaultPlan``
    An ordered list of :class:`FaultRule`\\ s.  Each rule names a *site*
    (see :data:`SITES`), an *action* (``kill``/``raise``/``delay``/
    ``drop``), which matching hit fires it (``at``, 1-based, counted
    per plan instance — i.e. per process), and optional equality
    constraints on the site's context (``match``), e.g. a worker index
    or generation.

Sites fire through :meth:`FaultPlan.fire`, which is a no-op attribute
check for the empty plan — production code pays one ``if`` per site.
Plans serialise to JSON (``to_spec``/``from_spec``) so they cross
process boundaries two ways: explicitly, as a constructor/worker
argument, and ambiently, through the ``FDREPAIR_FAULTS`` environment
variable (how the CI smoke injects faults into a daemon subprocess it
only controls via ``Popen``).

Worker processes rebuild their plan from the spec with fresh hit
counters, so "kill worker 1 at its 3rd solve" is deterministic per
*incarnation*: a rule matched on ``{"worker": 1, "generation": 0}``
kills the original process and spares the supervisor's replacement
(which runs at generation 1).

Named sites (context keys in parentheses):

- ``worker.solve`` (worker, generation, solve, key, method) — in a pool
  worker, before executing a solve request.  ``kill`` exits the process
  with :data:`KILL_EXIT_CODE`; ``raise`` surfaces as a worker-side solve
  error; ``delay`` stalls the solve (drives per-solve timeouts).
- ``pool.dispatch`` (worker, seq) — in the parent, before a solve
  message is enqueued.  ``drop`` silently discards the message (the
  per-solve timeout path recovers it); ``delay`` stalls dispatch.
- ``server.op`` (op, tenant, session) — in the daemon, at the op
  boundary before a session op executes.  ``raise`` turns into an error
  reply; the session and daemon survive.
- ``journal.append.before`` / ``journal.append.after`` (op) — around an
  op-journal append.  ``kill`` simulates a crash exactly before/after
  the write reaches the log, the two cases recovery must distinguish.
- ``shard.rpc.send`` (shard, generation, op, seq) — in the parent,
  before an RPC line is written to a shard's pipe.  ``drop`` loses the
  request (a solve recovers via its deadline; a mirror delta heals by
  state-error + journal replay); ``delay`` stalls dispatch.
- ``shard.rpc.recv`` (shard, generation, op, seq, msg) — in a shard
  host, after decoding a request.  ``drop`` swallows it (lost-reply ≡
  lost-request to the parent), ``raise`` ships an error reply,
  ``delay`` stalls the shard, ``kill`` crashes it mid-protocol.
- ``shard.heartbeat`` (shard, generation, n) — in a shard host, on a
  ping.  ``drop`` swallows the pong so the parent sees a silent shard.
- ``shard.kill`` (shard, generation, msg, op) — in a shard host, fired
  once per incoming message before it is handled: the dedicated crash
  site chaos schedules use ("kill shard 1 at its 3rd message").
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = [
    "FAULTS_ENV",
    "KILL_EXIT_CODE",
    "SITES",
    "FaultInjected",
    "FaultRule",
    "FaultPlan",
    "NULL_PLAN",
    "resolve",
]

#: Environment variable holding a JSON ``FaultPlan`` spec.
FAULTS_ENV = "FDREPAIR_FAULTS"

#: Exit code of a process killed by a ``kill`` action — distinguishable
#: from clean exits and from signal deaths in tests and smokes.
KILL_EXIT_CODE = 47

#: Documented injection sites -> the context keys they fire with.
SITES: Dict[str, tuple] = {
    "worker.solve": ("worker", "generation", "solve", "key", "method"),
    "pool.dispatch": ("worker", "seq"),
    "server.op": ("op", "tenant", "session"),
    "journal.append.before": ("op",),
    "journal.append.after": ("op",),
    "shard.rpc.send": ("shard", "generation", "op", "seq"),
    "shard.rpc.recv": ("shard", "generation", "op", "seq", "msg"),
    "shard.heartbeat": ("shard", "generation", "n"),
    "shard.kill": ("shard", "generation", "msg", "op"),
}

_ACTIONS = ("kill", "raise", "delay", "drop")


class FaultInjected(RuntimeError):
    """Raised by a ``raise`` action at an injection site."""


class FaultRule:
    """One deterministic misbehaviour: *action* at the *at*-th matching
    hit of *site* (then for ``times - 1`` further hits)."""

    __slots__ = ("site", "action", "at", "times", "delay_s", "match", "hits")

    def __init__(self, site: str, action: str, *, at: int = 1,
                 times: int = 1, delay_s: float = 0.0,
                 match: Optional[Mapping[str, object]] = None):
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}")
        if action not in _ACTIONS:
            raise ValueError(f"unknown fault action {action!r}")
        self.site = str(site)
        self.action = action
        self.at = max(1, int(at))
        self.times = max(1, int(times))
        self.delay_s = float(delay_s)
        self.match = dict(match or {})
        self.hits = 0

    def to_spec(self) -> Dict[str, object]:
        spec: Dict[str, object] = {"site": self.site, "action": self.action}
        if self.at != 1:
            spec["at"] = self.at
        if self.times != 1:
            spec["times"] = self.times
        if self.delay_s:
            spec["delay_s"] = self.delay_s
        if self.match:
            spec["match"] = dict(self.match)
        return spec

    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "FaultRule":
        return cls(
            spec["site"], spec["action"],
            at=spec.get("at", 1), times=spec.get("times", 1),
            delay_s=spec.get("delay_s", 0.0), match=spec.get("match"),
        )

    def describe(self) -> str:
        cond = "".join(f" {k}={v}" for k, v in sorted(self.match.items()))
        return f"{self.action}@{self.site}[{self.at}]{cond}"


class FaultPlan:
    """A set of :class:`FaultRule`\\ s with per-instance hit counters.

    ``fire`` is thread-safe (parent-side sites fire from session threads
    and the pool collector concurrently) and returns ``"drop"`` when a
    drop rule fired — the only action the *call site* must interpret;
    ``kill``/``raise``/``delay`` take effect inside ``fire`` itself.
    """

    def __init__(self, rules: Iterable[FaultRule] = ()):  # empty = no-op
        self._rules: List[FaultRule] = list(rules)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return bool(self._rules)

    def fire(self, site: str, **ctx) -> Optional[str]:
        if not self._rules:
            return None
        verdict = None
        fired: List[FaultRule] = []
        with self._lock:
            for rule in self._rules:
                if rule.site != site:
                    continue
                if any(ctx.get(k) != v for k, v in rule.match.items()):
                    continue
                rule.hits += 1
                if rule.at <= rule.hits < rule.at + rule.times:
                    fired.append(rule)
        for rule in fired:  # act outside the lock: actions may block
            if rule.action == "kill":
                os._exit(KILL_EXIT_CODE)
            elif rule.action == "raise":
                raise FaultInjected(
                    f"injected fault at {site}: {rule.describe()}"
                )
            elif rule.action == "delay":
                time.sleep(rule.delay_s)
            elif rule.action == "drop":
                verdict = "drop"
        return verdict

    # ------------------------------------------------------------------
    # Serialisation (constructor args, env var, worker spawn args)
    # ------------------------------------------------------------------
    def to_spec(self) -> List[Dict[str, object]]:
        return [rule.to_spec() for rule in self._rules]

    @classmethod
    def from_spec(cls, spec) -> "FaultPlan":
        if not spec:
            return cls()
        if isinstance(spec, str):
            spec = json.loads(spec)
        return cls(FaultRule.from_spec(item) for item in spec)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "FaultPlan":
        raw = (os.environ if environ is None else environ).get(FAULTS_ENV)
        if not raw:
            return cls()
        return cls.from_spec(raw)


#: Shared no-op plan ``resolve(None)`` falls back to when the
#: environment declares no faults.
NULL_PLAN = FaultPlan()


def resolve(plan: Optional[FaultPlan]) -> FaultPlan:
    """Normalise a constructor's ``faults`` argument: an explicit plan
    wins; ``None`` consults :data:`FAULTS_ENV` (fresh counters per
    resolving component); no env var means the shared no-op."""
    if plan is not None:
        return plan
    env_plan = FaultPlan.from_env()
    return env_plan if env_plan.enabled else NULL_PLAN
