"""The repair daemon's JSONL wire protocol, shared with ``fdrepair stream``.

One request per line, one JSON object per request, one JSON response
line per request — the same framing ``fdrepair stream`` reads from its
batches file, extended with addressing.  The op vocabulary is the stream
vocabulary plus session lifecycle:

=============  =====================================================
op             payload
=============  =====================================================
``open``       ``schema`` (attribute list) **or** ``rows``/CSV-shaped
               seed content, ``fds`` (FD set string), optional solver
               knobs (``guarantee``, ``exact_threshold``,
               ``exact_budget_s``, ``node_limit``)
``append``     ``rows`` (value lists or attribute-keyed objects),
               optional ``weights``, ``ids``, ``repair: false``
``delete``     ``ids``, optional ``repair: false``
``repair``     —
``assess``     — (dirtiness report of the current state; served from
               the session's component cache where possible)
``status``     — (solver-free: the delta-maintained bracket)
``close``      — (drop the session, freeing its resources)
=============  =====================================================

Daemon-level ops: ``ping``, ``stats`` (manager counters), ``shutdown``.

Every request carries ``tenant`` and — for session ops — ``session``;
the pair addresses one :class:`~repro.session.RepairSession`.  Responses
echo ``tenant``/``session``/``seq`` (an opaque client correlation value)
and carry ``ok: true`` plus op-specific fields, or ``ok: false`` plus
``error``.  Requests for one session execute in arrival order
(per-session sequencing); requests for different sessions interleave
freely — that, not this module, is the server's job.  This module is
deliberately transport-free: pure functions from decoded requests to
response dicts, so the asyncio server and the synchronous CLI stream
drive the *same* op execution and can never drift apart.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional, Tuple

from .pipeline import CleaningResult

__all__ = [
    "DAEMON_OPS",
    "JOURNALED_OPS",
    "ProtocolError",
    "Request",
    "SESSION_OPS",
    "apply_session_op",
    "decode_line",
    "encode",
    "result_summary",
]

#: Ops that address one open session (require ``tenant`` + ``session``).
SESSION_OPS = frozenset(
    {"append", "delete", "repair", "assess", "status", "close"}
)

#: Ops handled by the daemon itself, no session address needed.
DAEMON_OPS = frozenset({"ping", "stats", "shutdown"})

#: Ops valid on the wire: session lifecycle + session ops + daemon ops.
ALL_OPS = frozenset({"open"}) | SESSION_OPS | DAEMON_OPS

#: Ops the crash-safe daemon writes to its op journal: exactly the ops
#: that mutate session state (including ``repair``, whose result feeds
#: the session's exported stats).  Sessions are deterministic, so
#: replaying this subset in acknowledged order rebuilds every session
#: byte-identically; read-only ops (``assess``/``status``) and daemon
#: ops never touch the log.
JOURNALED_OPS = frozenset({"open", "append", "delete", "repair", "close"})


class ProtocolError(ValueError):
    """A malformed request: bad JSON, unknown op, or a payload the op
    cannot execute.  Always addressable to one request line, never
    fatal to the connection — the daemon (and the resilient stream
    loop) reports it and moves on."""


def decode_line(line: str) -> Dict[str, object]:
    """Parse one request line into a dict, or raise :class:`ProtocolError`."""
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"bad JSON ({exc})") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def encode(obj: Mapping[str, object]) -> str:
    """One response as a compact JSON line (trailing newline included)."""
    return json.dumps(obj, separators=(",", ":"), default=str) + "\n"


class Request:
    """One validated request: op + addressing + payload.

    Validation here covers the *envelope* (op known, addressing present
    and string-typed); payload validation is the op executor's job —
    :func:`apply_session_op` turns payload problems into
    :class:`ProtocolError` uniformly for both transports.
    """

    __slots__ = ("op", "tenant", "session", "seq", "payload")

    def __init__(self, raw: Mapping[str, object]) -> None:
        op = raw.get("op")
        if not isinstance(op, str):
            raise ProtocolError("missing op")
        if op not in ALL_OPS:
            raise ProtocolError(f"unknown op {op!r}")
        self.op = op
        tenant = raw.get("tenant")
        session = raw.get("session")
        if op in DAEMON_OPS:
            self.tenant = tenant if isinstance(tenant, str) else None
            self.session = None
        else:
            if not isinstance(tenant, str) or not tenant:
                raise ProtocolError(f"op {op!r} needs a tenant")
            if not isinstance(session, str) or not session:
                raise ProtocolError(f"op {op!r} needs a session")
            self.tenant = tenant
            self.session = session
        self.seq = raw.get("seq")
        self.payload = {
            k: v
            for k, v in raw.items()
            if k not in ("op", "tenant", "session", "seq")
        }

    @property
    def key(self) -> Optional[Tuple[str, str]]:
        """The ``(tenant, session)`` address, or ``None`` for daemon ops."""
        if self.session is None:
            return None
        return (self.tenant, self.session)

    def reply(self, **fields) -> Dict[str, object]:
        """A response envelope echoing this request's addressing."""
        out: Dict[str, object] = {"ok": True, "op": self.op}
        if self.tenant is not None:
            out["tenant"] = self.tenant
        if self.session is not None:
            out["session"] = self.session
        if self.seq is not None:
            out["seq"] = self.seq
        out.update(fields)
        return out

    def error(self, message: str) -> Dict[str, object]:
        out = self.reply(error=message)
        out["ok"] = False
        return out


def result_summary(
    result: CleaningResult, table=None
) -> Dict[str, object]:
    """The JSON-able slice of a :class:`~repro.pipeline.CleaningResult`.

    Kept rows stay server-side (tables can be huge); clients read the
    repair's provenance — distance, method, guarantee — and fetch
    content by other means if they need it.  ``deleted_ids`` is the
    exception (emitted when the pre-repair *table* is given): the delta
    a client must apply to its own copy is exactly the deleted set,
    which is bounded by the dirtiness, not the table size.
    """
    report = result.report
    out = {
        "distance": result.distance,
        "method": result.method,
        "optimal": result.optimal,
        "ratio_bound": result.ratio_bound,
        "tuples": report.total_tuples,
        "conflicts": report.conflict_count,
        "components": result.component_count,
    }
    if table is not None:
        kept = set(result.cleaned.ids())
        out["deleted_ids"] = [
            tid for tid in table.ids() if tid not in kept
        ]
    return out


def _report_summary(report) -> Dict[str, object]:
    return {
        "tuples": report.total_tuples,
        "total_weight": report.total_weight,
        "conflicts": report.conflict_count,
        "conflicting_tuples": report.conflicting_tuples,
        "components": report.component_count,
        "lower_bound": report.lower_bound,
        "upper_bound": report.upper_bound,
        "complexity": report.complexity,
        "consistent": report.consistent,
    }


def apply_session_op(session, op: str, payload: Mapping[str, object]):
    """Execute one session op against a live ``RepairSession``.

    Returns the op's response fields (a dict).  Anything wrong with the
    payload — missing keys, wrong shapes, unknown ids, bad weights —
    surfaces as :class:`ProtocolError`, so both transports (asyncio
    daemon, CLI stream loop) diagnose identically and neither ever sees
    a session half-mutated: the session's own append/delete validate
    before the first mutation.

    ``close`` is not handled here — dropping a session is bookkeeping
    owned by the caller (the manager's registry, the stream's loop).
    """
    try:
        if op == "append":
            rows = payload.get("rows", [])
            if not isinstance(rows, (list, tuple)):
                raise ProtocolError("append rows must be a list")
            result = session.append(
                rows,
                weights=payload.get("weights"),
                ids=payload.get("ids"),
                repair=bool(payload.get("repair", True)),
            )
            fields = {"applied": len(rows)}
            if result is not None:
                fields.update(result_summary(result))
            return fields
        if op == "delete":
            ids = payload.get("ids", [])
            if not isinstance(ids, (list, tuple)):
                raise ProtocolError("delete ids must be a list")
            result = session.delete(
                ids, repair=bool(payload.get("repair", True))
            )
            fields = {"applied": len(ids)}
            if result is not None:
                fields.update(result_summary(result))
            return fields
        if op == "repair":
            return result_summary(session.repair())
        if op == "assess":
            return _report_summary(session.repair().report)
        if op == "status":
            return session.status().as_dict()
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        # The session validates payload *content* (arity, weights, ids);
        # re-badge its diagnostics as protocol errors so transports
        # handle one exception type.
        raise ProtocolError(str(exc)) from None
    raise ProtocolError(f"op {op!r} is not a session op")
