"""Interned columnar kernel: integer-coded rows, CSR adjacency, bitmasks.

Every hot path of the library — ``Table.group_by``, the
:class:`~repro.core.conflict_index.ConflictIndex` build, component
extraction, and exact vertex cover — reduces to hash grouping and
conflict-graph traversal over dict-of-sets structures keyed by
arbitrary-hashable value tuples.  Those structures are semantically
right (FD satisfaction only observes the *equality pattern* of values)
but pay repeated tuple allocation, tuple hashing, and per-element set
overhead in the inner loops.

This module is the representation-level answer:

* :class:`TableCodec` interns each column's values to dense integer
  codes (``code 0`` is the column's first-seen value, in table order)
  and each tuple identifier to a dense row index.  Because codes are
  assigned in first-seen order, every order-sensitive consumer
  downstream — ``group_by`` insertion order, ``distinct_projection``,
  the dichotomy recursion's block order — behaves identically on coded
  rows and on the original values: the coded table is FD-equivalent
  *and* iteration-equivalent.
* :func:`build_conflict_edges` re-runs the per-FD hash grouping of the
  conflict-index build on the coded columns: grouping keys are single
  machine ints (mixed-radix combinations of column codes), so the
  grouping loop allocates no tuples and hashes no strings.
* :class:`ConflictKernel` holds the resulting conflict graph as
  CSR-style flat adjacency arrays (``indptr`` / ``indices``) with
  parallel weight and degree arrays — the substrate of the
  ``components()`` and Bar-Yehuda–Even array fast paths.
* :class:`BitsetVC` is a memoised multi-word bitset branch & bound for
  components of at most :data:`MAX_BITMASK_VERTICES` vertices: component
  vertices map to bits of one Python int, neighbour masks are
  precomputed, and a subset-memo on the remaining-vertices mask prunes
  re-entered states.  Python ints *are* the multi-word bitset: CPython
  stores them as little-endian arrays of 30-bit digits, so ``&``, ``|``,
  shifts and ``bit_count`` over a 512-vertex mask are C loops over ~18
  machine words — the "fixed-width tuple of words" representation
  without a Python-level word loop.  The solver is a *faithful mirror*
  of :func:`repro.graphs.vertex_cover.exact_min_weight_vertex_cover` —
  same simplifications, same branch order, same tie-breaks, same
  floating-point summation order — so it returns the **identical
  cover**, not merely one of equal weight (pinned by the property tests
  in ``tests/test_kernel.py``), at any width.  A wall-clock ``budget_s``
  raises :class:`~repro.graphs.vertex_cover.ExactBudgetExceeded` so
  pathological dense components fall back to the polynomial bounds.
* The approximation tier runs array-native too:
  :func:`greedy_cover_csr` / :func:`greedy_cover_masks` mirror the lazy
  min-heap deletion loop of :func:`repro.core.approx.greedy_s_repair`
  on flat weight/degree arrays, and :func:`mis_maximalize_csr` /
  :func:`mis_maximalize_masks` mirror
  :func:`repro.graphs.vertex_cover.maximalize_independent_set`.
* A :class:`ConflictKernel` stays **live** under index mutation:
  :meth:`~ConflictKernel.apply_remove` tombstones a row (``alive``
  byte-flags, live degree/edge bookkeeping) and
  :meth:`~ConflictKernel.apply_insert` grafts an appended row's edges
  onto an overflow adjacency, so streaming sessions keep every array
  fast path across delta batches; the owning index compacts the view
  (full CSR rebuild over the live rows) once churn passes
  :meth:`~ConflictKernel.should_compact`.

The dict paths everywhere remain the semantic reference: the kernel is
an acceleration layer, switchable off globally (:func:`set_enabled`,
the CLI's ``--no-kernel``) or per block (:func:`disabled`), and every
result is byte-identical either way.
"""

from __future__ import annotations

import heapq
import time
from contextlib import contextmanager
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..graphs.vertex_cover import ExactBudgetExceeded
from .table import Row, Table, TupleId, Value

__all__ = [
    "MAX_BITMASK_VERTICES",
    "LP_BOUND_MAX_VERTICES",
    "TableCodec",
    "ConflictKernel",
    "BitsetVC",
    "ExactBudgetExceeded",
    "enabled",
    "set_enabled",
    "disabled",
    "build_conflict_edges",
    "bitmask_vertex_cover",
    "bye_cover_csr",
    "bye_cover_masks",
    "components_csr",
    "components_csr_patched",
    "greedy_cover_csr",
    "greedy_cover_masks",
    "lp_half_integral_bound",
    "mis_maximalize_csr",
    "mis_maximalize_masks",
]

#: Largest component the bitset branch & bound accepts.  One Python int
#: carries one bit per component vertex; past 64 vertices the masks spill
#: into multiple 30-bit digits, whose boolean ops CPython still runs as C
#: word loops — profiled break-even against the graph-copying reference
#: sits far beyond this cap, which exists to bound the *memo's* per-entry
#: key size and the O(n²) neighbour-mask build, not the mask arithmetic.
#: The portfolio's ``EXACT_COMPONENT_THRESHOLD`` (the default exact cut)
#: is deliberately far below; the headroom up to 512 serves raised
#: ``exact_threshold=`` runs and the mask-view approximation fast paths.
MAX_BITMASK_VERTICES = 512

#: Search-tree entries between deadline reads of a budgeted solve —
#: mirrors ``repro.graphs.vertex_cover._BUDGET_CHECK_INTERVAL``.
_BUDGET_CHECK_INTERVAL = 256

#: Largest component the LP-relaxation lower bound is computed for.  The
#: bound runs a blocking-flow computation on the bipartite double cover
#: (O(E·√V)-ish in practice); past this size the polynomial matching
#: bound stands alone — the bracket stays valid, just looser.
LP_BOUND_MAX_VERTICES = 1024

_ENABLED = True


def enabled() -> bool:
    """True iff the columnar kernel is globally enabled (the default)."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Switch the kernel on/off globally (the CLI's ``--no-kernel``).

    Only affects structures built *after* the switch: a
    :class:`~repro.core.conflict_index.ConflictIndex` snapshots the flag
    at construction, so one index is consistently kernel-backed or
    consistently dict-backed for its whole life.
    """
    global _ENABLED
    _ENABLED = bool(value)


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the dict reference paths (tests, benchmarks)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


# ---------------------------------------------------------------------------
# Column interning
# ---------------------------------------------------------------------------

class TableCodec:
    """Dense integer coding of a table: row indices and column codes.

    ``ids[i]`` is the tuple identifier of row ``i`` (rows in table
    order), ``columns[j][i]`` the integer code of row ``i``'s value in
    column ``j``, ``decoders[j][code]`` the original value, and
    ``weights[i]`` the tuple weight.  Codes are assigned in first-seen
    table order, so equal values share a code (``FreshValue`` cells
    intern by identity, exactly matching their equality semantics) and
    code order is first-seen order.

    The codec stays **live** under index mutation:
    :meth:`append_row` interns a new tuple's values (extending the
    per-column intern maps), and removals simply leave their row slots
    behind — the owning index's live-tuple set governs which rows
    matter, so a stale slot is never read.
    """

    __slots__ = (
        "schema", "ids", "row_index", "columns", "decoders", "weights",
        "_interns",
    )

    def __init__(
        self,
        schema: Tuple[str, ...],
        ids: List[TupleId],
        row_index: Dict[TupleId, int],
        columns: List[List[int]],
        decoders: List[List[Value]],
        weights: List[float],
        interns: List[Dict[Value, int]],
    ) -> None:
        self.schema = schema
        self.ids = ids
        self.row_index = row_index
        self.columns = columns
        self.decoders = decoders
        self.weights = weights
        self._interns = interns

    @classmethod
    def encode(cls, table: Table) -> "TableCodec":
        """Intern *table* into dense row indices and column codes.

        Near-C-speed per column: ``dict.fromkeys`` dedups the column in
        first-seen order (the code assignment the order-sensitivity
        contract requires), and ``map(intern.__getitem__, …)`` codes the
        whole column without a Python-level inner loop.
        """
        schema = table.schema
        rows = table._rows
        ids: List[TupleId] = list(rows)
        # Keyed lookup, not .values(): _from_trusted only promises
        # matching key *sets*, and a weight mis-assignment here would be
        # silent.
        weights: List[float] = list(map(table._weights.__getitem__, ids))
        interns: List[Dict[Value, int]] = []
        decoders: List[List[Value]] = []
        columns: List[List[int]] = []
        for column_values in zip(*rows.values()):
            intern = {v: i for i, v in enumerate(dict.fromkeys(column_values))}
            interns.append(intern)
            decoders.append(list(intern))
            columns.append(list(map(intern.__getitem__, column_values)))
        if not rows:  # zip(*()) yields nothing: still shape the columns
            interns = [{} for _ in schema]
            decoders = [[] for _ in schema]
            columns = [[] for _ in schema]
        row_index = {tid: i for i, tid in enumerate(ids)}
        return cls(schema, ids, row_index, columns, decoders, weights, interns)

    def __len__(self) -> int:
        return len(self.ids)

    def append_row(self, tid: TupleId, row: Sequence[Value], weight: float) -> int:
        """Intern one appended tuple; returns its new row index."""
        index = len(self.ids)
        self.ids.append(tid)
        self.row_index[tid] = index
        self.weights.append(float(weight))
        for j, value in enumerate(row):
            intern = self._interns[j]
            code = intern.get(value)
            if code is None:
                code = intern[value] = len(intern)
                self.decoders[j].append(value)
            self.columns[j].append(code)
        return index

    def coded_row(self, tid: TupleId) -> Row:
        """The integer-coded row of *tid* (a tuple of column codes)."""
        i = self.row_index[tid]
        return tuple(column[i] for column in self.columns)

    def decode_row(self, i: int) -> Row:
        """Original values of row *i*."""
        return tuple(
            self.decoders[j][column[i]] for j, column in enumerate(self.columns)
        )

    def decode_table(self, name: str = "R") -> Table:
        """Reconstruct the encoded table (the round-trip the property
        tests pin: ``decode_table(encode(t)) == t``)."""
        rows = {tid: self.decode_row(i) for i, tid in enumerate(self.ids)}
        weights = {tid: self.weights[i] for i, tid in enumerate(self.ids)}
        return Table(self.schema, rows, weights, name=name)

    def combined_codes(self, positions: Sequence[int]) -> List[int]:
        """One machine-int grouping key per row for the given columns.

        Mixed-radix combination: with ``positions = [p1, …, pk]`` and
        column alphabet sizes ``n1, …, nk`` the key of row *i* is the
        rank of ``(c1, …, ck)`` in row-major order — a bijection, so
        grouping by the combined int is exactly grouping by the value
        tuple, with no tuple allocation and single-int hashing.
        """
        if not positions:
            return [0] * len(self.ids)
        first = self.columns[positions[0]]
        if len(positions) == 1:
            return first  # shared read-only: callers never mutate keys
        keys = list(first)
        for p in positions[1:]:
            column = self.columns[p]
            base = len(self.decoders[p])
            keys = [k * base + c for k, c in zip(keys, column)]
        return keys


# ---------------------------------------------------------------------------
# Conflict-graph construction on coded columns
# ---------------------------------------------------------------------------

def build_conflict_edges(
    codec: TableCodec,
    fd_specs: Sequence[Tuple[object, Sequence[int], Sequence[int]]],
) -> List[int]:
    """All conflict edges implied by *fd_specs*, as sorted packed ints.

    Mirrors the per-FD hash grouping of the dict build: rows sharing an
    FD's lhs key but disagreeing on its rhs key conflict.  Edges are
    deduplicated across FDs and returned as ``u * n + v`` with
    ``u < v`` row indices — sorted, which is exactly canonical
    ``(position(u), position(v))`` order.
    """
    from collections import defaultdict

    n = len(codec.ids)
    edge_set: Set[int] = set()
    add_edge = edge_set.add
    for _fd, lhs_pos, rhs_pos in fd_specs:
        keys = codec.combined_codes(lhs_pos)
        groups: Dict[int, List[int]] = defaultdict(list)
        for i, key in enumerate(keys):
            groups[key].append(i)
        rhs: Optional[List[int]] = None
        for members in groups.values():
            if len(members) < 2:
                continue
            if rhs is None:
                rhs = codec.combined_codes(rhs_pos)
            parts: Dict[int, List[int]] = defaultdict(list)
            for i in members:
                parts[rhs[i]].append(i)
            if len(parts) < 2:
                continue
            part_list = list(parts.values())
            for a in range(len(part_list) - 1):
                part_a = part_list[a]
                for b in range(a + 1, len(part_list)):
                    for u in part_a:
                        for v in part_list[b]:
                            add_edge(u * n + v if u < v else v * n + u)
    return sorted(edge_set)


class ConflictKernel:
    """Flat-array view of a table's conflict graph, patchable in place.

    ``edges_u`` / ``edges_v`` hold each construction-time conflict pair
    once in canonical ascending ``(u, v)`` row order; ``indptr`` /
    ``indices`` are the CSR adjacency (both directions); ``degree`` and
    ``weights`` are the parallel per-row arrays.  Row index *is* table
    position (removals preserve order, inserts append), so ascending row
    order is table order everywhere.

    The view stays **live** under index mutation instead of being
    invalidated: :meth:`apply_remove` tombstones a row in the ``alive``
    byte-flags and keeps ``degree`` / ``live_edges`` current, and
    :meth:`apply_insert` records an appended row's edges in the overflow
    adjacency ``extra_adj`` (CSR arrays are append-hostile; the overflow
    lists stay position-sorted by construction, so canonical edge order
    is a cheap merge).  ``patched`` flips on the first mutation; readers
    take the original zero-overhead loops while it is unset and the
    tombstone/overflow-aware loops after.  ``live_count`` is the sync
    guard the owning index asserts against its own live-tuple count —
    a mutation that bypassed the patch hooks fails loudly instead of
    serving stale adjacency.  Once churn passes :meth:`should_compact`
    the index rebuilds the view over the live rows (tombstones and
    overflow fold back into plain CSR, ``alive_rows`` marks the live
    subset of the codec's row space).
    """

    __slots__ = (
        "codec", "edges_u", "edges_v", "indptr", "indices", "degree",
        "conflicting_rows", "alive", "csr_rows", "extra_adj", "patched",
        "live_count", "live_edges", "dead_count", "appended_count",
        "removed_count",
    )

    def __init__(
        self,
        codec: TableCodec,
        packed_edges: List[int],
        alive_rows: Optional[Iterable[int]] = None,
    ) -> None:
        self.codec = codec
        n = len(codec.ids)
        m = len(packed_edges)
        edges_u = [0] * m
        edges_v = [0] * m
        degree = [0] * n
        for e, code in enumerate(packed_edges):
            u, v = divmod(code, n)
            edges_u[e] = u
            edges_v[e] = v
            degree[u] += 1
            degree[v] += 1
        indptr = [0] * (n + 1)
        for i in range(n):
            indptr[i + 1] = indptr[i] + degree[i]
        fill = list(indptr)
        indices = [0] * (2 * m)
        for u, v in zip(edges_u, edges_v):
            indices[fill[u]] = v
            fill[u] += 1
            indices[fill[v]] = u
            fill[v] += 1
        self.edges_u = edges_u
        self.edges_v = edges_v
        self.indptr = indptr
        self.indices = indices
        self.degree = degree
        # Rows with at least one conflict, ascending — the only roots a
        # component sweep needs to visit (typically a few % of |T|).
        # Valid while unpatched; afterwards the owning index supplies
        # live roots from its conflicting-tuple set.
        self.conflicting_rows = [i for i, d in enumerate(degree) if d]
        self.csr_rows = n
        self.extra_adj: Dict[int, List[int]] = {}
        self.patched = False
        self.dead_count = 0
        # Churn *since this build* — what should_compact measures.  A
        # compaction rebuild carries the codec's dead slots over (the
        # codec never reclaims rows), so dead_count alone would re-trip
        # the bound forever after the first rebuild.
        self.removed_count = 0
        self.appended_count = 0
        self.live_edges = m
        if alive_rows is None:
            self.alive = bytearray(b"\x01") * n
            self.live_count = n
        else:
            alive = bytearray(n)
            count = 0
            for r in alive_rows:
                alive[r] = 1
                count += 1
            self.alive = alive
            self.live_count = count
            self.dead_count = n - count

    @property
    def weights(self) -> List[float]:
        return self.codec.weights

    @property
    def num_edges(self) -> int:
        return len(self.edges_u)

    # ------------------------------------------------------------------
    # Incremental patching (tombstones + overflow adjacency)
    # ------------------------------------------------------------------
    def row_neighbors(self, row: int) -> Iterator[int]:
        """All recorded neighbours of *row* (dead ones included — filter
        with ``alive`` at the read site)."""
        if row < self.csr_rows:
            yield from self.indices[self.indptr[row]:self.indptr[row + 1]]
        extra = self.extra_adj.get(row)
        if extra is not None:
            yield from extra

    def forward_live_neighbors(self, row: int) -> Iterator[int]:
        """Live neighbours of *row* with a higher row index, ascending.

        CSR slices list backward then forward neighbours, each ascending
        (a consequence of the packed-edge build order); overflow lists
        hold appended rows in append order, which is ascending too — so
        the concatenation below is already in canonical position order.
        """
        alive = self.alive
        if row < self.csr_rows:
            for v in self.indices[self.indptr[row]:self.indptr[row + 1]]:
                if v > row and alive[v]:
                    yield v
        extra = self.extra_adj.get(row)
        if extra is not None:
            for v in extra:
                if v > row and alive[v]:
                    yield v

    def iter_live_edges(self) -> Iterator[Tuple[int, int]]:
        """Every live conflict pair once, in canonical ascending row
        order — the patched-view equivalent of ``zip(edges_u, edges_v)``.
        """
        alive = self.alive
        for u in range(len(alive)):
            if alive[u] and self.degree[u]:
                for v in self.forward_live_neighbors(u):
                    yield u, v

    def apply_remove(self, row: int) -> None:
        """Tombstone *row*: O(recorded degree) flag-and-decrement."""
        alive = self.alive
        if not alive[row]:
            raise ValueError(f"row {row} is already dead in the kernel view")
        alive[row] = 0
        self.patched = True
        self.live_count -= 1
        self.dead_count += 1
        self.removed_count += 1
        degree = self.degree
        dropped = 0
        for v in self.row_neighbors(row):
            if alive[v]:
                degree[v] -= 1
                dropped += 1
        self.live_edges -= dropped
        degree[row] = 0

    def apply_insert(self, row: int, neighbor_rows: Sequence[int]) -> None:
        """Graft an appended row (codec row index *row*) and its conflict
        edges onto the view.  *neighbor_rows* must be the live conflict
        partners, ascending — exactly what the index's bucket probe
        produced."""
        if row != len(self.alive):
            raise ValueError(
                f"appended row {row} does not extend the kernel view "
                f"({len(self.alive)} rows)"
            )
        self.alive.append(1)
        self.degree.append(len(neighbor_rows))
        self.patched = True
        self.live_count += 1
        self.appended_count += 1
        self.live_edges += len(neighbor_rows)
        if neighbor_rows:
            self.extra_adj[row] = list(neighbor_rows)
            degree = self.degree
            extra = self.extra_adj
            for v in neighbor_rows:
                degree[v] += 1
                bucket = extra.get(v)
                if bucket is None:
                    extra[v] = [row]
                else:
                    bucket.append(row)

    def should_compact(self) -> bool:
        """True once the mutations absorbed *since this build* outweigh
        the CSR arrays' usefulness — the owning index then rebuilds the
        view (periodic compaction keeps patch cost amortised O(1) per
        delta, and the rebuild resets the churn counters)."""
        churn = self.removed_count + self.appended_count
        return churn > 64 and 2 * churn > self.live_count


def components_csr(kernel: ConflictKernel) -> List[List[int]]:
    """Connected components over the CSR arrays, canonically ordered.

    Matches :meth:`ConflictIndex.components` exactly: components listed
    by their earliest row, members ascending — row index is table
    position, so ascending ints *is* table order.  Only rows with at
    least one edge appear.

    Accepts **unpatched** views only, and raises otherwise — the
    construction-time ``conflicting_rows`` roots and the
    tombstone-check-free slice loop are stale the moment a mutation
    lands.  This is the "raise" arm of the stale-view contract: the
    other direct readers (:func:`bye_cover_csr`, :func:`greedy_cover_csr`,
    :func:`mis_maximalize_csr`) patch transparently because the arrays
    win there; for the component sweep the owning index's C-level
    set-difference traversal over the live adjacency is the faster
    patched path, so a patched view has no array sweep to offer.
    """
    if kernel.patched:
        raise RuntimeError(
            "components_csr reads a patched kernel view: its "
            "construction-time roots are stale — use "
            "ConflictIndex.components(), whose live sweep takes over "
            "after mutations"
        )
    indptr = kernel.indptr
    indices = kernel.indices
    seen = bytearray(len(kernel.alive))
    out: List[List[int]] = []
    for root in kernel.conflicting_rows:
        if seen[root]:
            continue
        seen[root] = 1
        stack = [root]
        members: List[int] = []
        append = members.append
        while stack:
            current = stack.pop()
            append(current)
            # Slice, not per-index loops: the slice materialises at C
            # speed and its iteration beats repeated indptr indexing.
            for other in indices[indptr[current]:indptr[current + 1]]:
                if not seen[other]:
                    seen[other] = 1
                    stack.append(other)
        members.sort()
        out.append(members)
    return out


def components_csr_patched(
    kernel: ConflictKernel, roots: Iterable[int]
) -> List[List[int]]:
    """Connected components over a **patched** kernel view.

    The array-native successor to the owning index's dict-of-sets sweep
    after mutations: a byte-flag visited array, explicit stack, and
    C-level iteration over CSR slices merged with the overflow adjacency
    — no per-row Python set differences.  *roots* must be the live
    conflicting rows in ascending row order (the owning index supplies
    them from its conflicting-tuple set; construction-time
    ``conflicting_rows`` is stale on a patched view).  Dead rows are
    filtered through ``alive``; output matches
    :meth:`ConflictIndex.components` exactly (components by earliest
    row, members ascending).
    """
    alive = kernel.alive
    indptr = kernel.indptr
    indices = kernel.indices
    csr_rows = kernel.csr_rows
    extra = kernel.extra_adj
    degree = kernel.degree
    seen = bytearray(len(alive))
    out: List[List[int]] = []
    for root in roots:
        if seen[root] or not alive[root] or not degree[root]:
            continue
        seen[root] = 1
        stack = [root]
        members: List[int] = []
        append = members.append
        while stack:
            current = stack.pop()
            append(current)
            if current < csr_rows:
                for other in indices[indptr[current]:indptr[current + 1]]:
                    if not seen[other] and alive[other]:
                        seen[other] = 1
                        stack.append(other)
            overflow = extra.get(current)
            if overflow is not None:
                for other in overflow:
                    if not seen[other] and alive[other]:
                        seen[other] = 1
                        stack.append(other)
        members.sort()
        out.append(members)
    return out


def bye_cover_csr(kernel: ConflictKernel) -> Set[int]:
    """Bar-Yehuda–Even over the flat edge arrays; returns covered rows.

    Identical arithmetic to
    :func:`repro.graphs.vertex_cover.bar_yehuda_even` reading
    ``ConflictIndex.edges()``: the flat arrays (merged with the overflow
    adjacency on a patched view) hold the live edges in the same
    canonical order, so every local-ratio payment happens in the same
    sequence on the same floats.
    """
    residual = list(kernel.weights)
    cover: Set[int] = set()
    edges = (
        zip(kernel.edges_u, kernel.edges_v)
        if not kernel.patched
        else kernel.iter_live_edges()
    )
    for u, v in edges:
        if u in cover or v in cover:
            continue
        ru = residual[u]
        rv = residual[v]
        pay = ru if ru < rv else rv
        residual[u] = ru - pay
        residual[v] = rv - pay
        if residual[u] <= 0:
            cover.add(u)
        if residual[v] <= 0:
            cover.add(v)
    return cover


# ---------------------------------------------------------------------------
# LP-relaxation lower bound (half-integral vertex cover LP)
# ---------------------------------------------------------------------------

#: Residual-capacity epsilon of the blocking-flow loops below: float
#: arithmetic can leave a saturated arc with a ~1e-16 residue, which must
#: read as "saturated" or the level search loops forever.
_LP_EPS = 1e-12


def lp_half_integral_bound(
    weights: Sequence[float],
    edges: Iterable[Tuple[int, int]],
) -> float:
    """Optimal value of the vertex-cover LP relaxation over *edges*.

    The LP ``min Σ w_v·x_v  s.t.  x_u + x_v ≥ 1, 0 ≤ x ≤ 1`` always has
    a half-integral optimum (Nemhauser–Trotter), computable exactly with
    no external solver: the LP optimum equals half the maximum flow on
    the **bipartite double cover** — source → u_L with capacity ``w_u``,
    ``u_L → v_R`` and ``v_L → u_R`` uncapacitated per edge, ``v_R`` →
    sink with capacity ``w_v``.  The flow is the standard primal-dual
    augmenting computation (BFS level graph + blocking-flow DFS) over
    flat arrays.  By LP duality the result dominates every fractional
    matching — in particular the greedy maximal-matching bound — and is
    itself dominated by the integral optimum:
    ``matching ≤ LP ≤ exact optimum ≤ BYE``, with equality of LP and
    exact on bipartite components and strict LP > matching typically on
    odd cycles.

    Determinism contract: the edge list is **sorted internally**, so any
    caller producing the same edge *set* over the same vertex numbering
    (kernel CSR arrays or the dict reference's canonical ``edges()``)
    gets the bit-identical float back — load-bearing for kernel-vs-dict
    report identity.

    *weights* is indexed by vertex number; vertices not named by any
    edge contribute nothing.  Returns ``0.0`` for an empty edge list.
    """
    edge_list = sorted(edges)
    if not edge_list:
        return 0.0
    n = len(weights)
    source = 2 * n
    sink = 2 * n + 1
    # Flat adjacency: graph[node] lists edge ids; eto/ecap parallel
    # arrays with the reverse arc at ``e ^ 1``.
    graph: List[List[int]] = [[] for _ in range(2 * n + 2)]
    eto: List[int] = []
    ecap: List[float] = []

    def add(u: int, v: int, cap: float) -> None:
        graph[u].append(len(eto))
        eto.append(v)
        ecap.append(cap)
        graph[v].append(len(eto))
        eto.append(u)
        ecap.append(0.0)

    touched = sorted({w for pair in edge_list for w in pair})
    infinity = float("inf")
    for u in touched:
        add(source, u, float(weights[u]))
        add(n + u, sink, float(weights[u]))
    for u, v in edge_list:
        add(u, n + v, infinity)
        add(v, n + u, infinity)

    flow = 0.0
    num_nodes = 2 * n + 2
    while True:
        # BFS level graph over residual arcs.
        level = [-1] * num_nodes
        level[source] = 0
        queue = [source]
        for node in queue:
            base = level[node] + 1
            for e in graph[node]:
                other = eto[e]
                if ecap[e] > _LP_EPS and level[other] < 0:
                    level[other] = base
                    queue.append(other)
        if level[sink] < 0:
            break
        # Blocking flow: iterative DFS with per-node arc pointers; a
        # dead-ended node drops out of the level graph, an augmentation
        # restarts from the source with pointers kept.
        pointer = [0] * num_nodes
        path: List[int] = []
        node = source
        while True:
            if node == sink:
                pushed = min(ecap[e] for e in path)
                for e in path:
                    ecap[e] -= pushed
                    ecap[e ^ 1] += pushed
                flow += pushed
                path = []
                node = source
                continue
            advanced = False
            arcs = graph[node]
            want = level[node] + 1
            while pointer[node] < len(arcs):
                e = arcs[pointer[node]]
                other = eto[e]
                if ecap[e] > _LP_EPS and level[other] == want:
                    path.append(e)
                    node = other
                    advanced = True
                    break
                pointer[node] += 1
            if advanced:
                continue
            if node == source:
                break
            level[node] = -1  # dead end: never re-enter this phase
            e = path.pop()
            node = eto[e ^ 1]
    return flow / 2.0


# ---------------------------------------------------------------------------
# Bitmask branch & bound (components ≤ 64 vertices)
# ---------------------------------------------------------------------------

def _bits_ascending(mask: int) -> List[int]:
    """Set-bit positions of *mask*, ascending."""
    out: List[int] = []
    append = out.append
    while mask:
        low = mask & -mask
        append(low.bit_length() - 1)
        mask ^= low
    return out


def bye_cover_masks(weights: Sequence[float], masks: Sequence[int]) -> int:
    """Bar-Yehuda–Even on neighbour bitmasks; returns the cover mask.

    Edges are visited in ascending ``(u, v)`` order — the same canonical
    sequence as the reference — so the result set is identical.  Forward
    neighbours come off the mask by lowest-set-bit extraction (one int op
    per *edge*, not per bit position), which is what keeps the loop fast
    on multi-word masks of components past 64 vertices.
    """
    residual = list(weights)
    cover = 0
    for u in range(len(weights)):
        if (cover >> u) & 1:
            # A covered u can't change any residual; skipping its edges
            # mirrors the reference's per-edge membership test.
            continue
        forward = (masks[u] >> (u + 1)) << (u + 1)
        while forward:
            low = forward & -forward
            forward ^= low
            v = low.bit_length() - 1
            if (cover >> v) & 1:
                continue
            ru = residual[u]
            rv = residual[v]
            pay = ru if ru < rv else rv
            residual[u] = ru - pay
            residual[v] = rv - pay
            if residual[v] <= 0:
                cover |= low
            if residual[u] <= 0:
                cover |= 1 << u
                break  # u covered: its remaining edges are skipped
    return cover


def _matching_lower_bound_masks(
    remaining: int, weights: Sequence[float], masks: Sequence[int]
) -> float:
    """Greedy maximal-matching bound over the remaining subgraph.

    Mirrors ``_matching_lower_bound``: edges in ascending order, each
    matched edge paying the lighter endpoint.
    """
    matched = 0
    bound = 0.0
    todo = remaining
    while todo:
        low = todo & -todo
        u = low.bit_length() - 1
        todo ^= low
        if (matched >> u) & 1:
            continue
        candidates = masks[u] & ((remaining >> (u + 1)) << (u + 1))
        while candidates:
            low_v = candidates & -candidates
            v = low_v.bit_length() - 1
            candidates ^= low_v
            if (matched >> v) & 1:
                continue
            matched |= (1 << u) | (1 << v)
            wu = weights[u]
            wv = weights[v]
            bound += wu if wu < wv else wv
            break
    return bound


class BitsetVC:
    """Exact minimum-weight vertex cover as a multi-word bitset search.

    A faithful mirror of
    :func:`repro.graphs.vertex_cover.exact_min_weight_vertex_cover` on a
    component of at most :data:`MAX_BITMASK_VERTICES` vertices: vertex
    *i* of the (table-ordered) component maps to bit *i*; ``masks[i]``
    is its neighbour set; ``labels[i] = str(id_i)`` reproduces the
    reference's branch-vertex tie-break.  The mirror preserves the
    simplification order (isolated vertices, then the weighted pendant
    rule with restart), the matching-lower-bound prune, the branch order
    ("take v" before "take N(v)") and every floating-point summation
    order — so the returned cover mask decodes to the *identical* vertex
    set.  Masks past 64 bits are multi-digit Python ints, i.e. C-level
    word arrays — the search is representation-identical either side of
    the machine-word boundary.

    On top of the mirror, a subset-memo on the remaining-vertices mask
    prunes re-entered states: a state revisited at an entry cost no
    lower than a previous visit cannot improve the incumbent (entry
    costs only shift completions upward, and incumbent updates are
    strict), so the memo prune is result-invisible — it removes work,
    never answers.

    :meth:`solve` accepts a wall-clock ``budget_s``; on expiry the
    search raises :class:`~repro.graphs.vertex_cover.ExactBudgetExceeded`
    (checked every :data:`_BUDGET_CHECK_INTERVAL` search nodes), the
    portfolio's escape hatch for pathological dense components.
    """

    __slots__ = ("weights", "masks", "labels")

    def __init__(
        self,
        weights: Sequence[float],
        masks: Sequence[int],
        labels: Sequence[str],
    ) -> None:
        n = len(weights)
        if n > MAX_BITMASK_VERTICES:
            raise ValueError(
                f"bitset vertex cover limited to {MAX_BITMASK_VERTICES} "
                f"vertices, got {n}"
            )
        self.weights = weights
        self.masks = masks
        self.labels = labels

    def solve(self, budget_s: Optional[float] = None) -> int:
        weights = self.weights
        masks = self.masks
        labels = self.labels
        n = len(weights)
        full = (1 << n) - 1
        deadline = None if budget_s is None else time.monotonic() + budget_s
        ticks = _BUDGET_CHECK_INTERVAL

        best_cover = bye_cover_masks(weights, masks)
        best_cost = 0.0
        for v in _bits_ascending(best_cover):
            best_cost += weights[v]

        memo: Dict[int, float] = {}

        def solve(remaining: int, chosen: int, cost: float) -> None:
            nonlocal best_cover, best_cost, ticks
            if deadline is not None:
                ticks -= 1
                if ticks <= 0:
                    ticks = _BUDGET_CHECK_INTERVAL
                    if time.monotonic() > deadline:
                        raise ExactBudgetExceeded(
                            f"bitset vertex cover exceeded its "
                            f"{budget_s:g}s budget"
                        )
            # Simplifications, exactly as the reference: scan a snapshot
            # of the vertices in position order; drop isolated vertices
            # in place, and on a (weighted) pendant take restart the
            # scan.  (Bit loops iterate a snapshot int ascending — the
            # mirror of iterating list(g.nodes()) while mutating g.)
            while True:
                changed = False
                snapshot = remaining
                while snapshot:
                    low = snapshot & -snapshot
                    snapshot ^= low
                    v = low.bit_length() - 1
                    nbrs = masks[v] & remaining
                    if not nbrs:
                        remaining ^= low
                        changed = True
                    elif not (nbrs & (nbrs - 1)):  # exactly one neighbour
                        u = nbrs.bit_length() - 1
                        if weights[u] <= weights[v]:
                            chosen |= nbrs
                            cost += weights[u]
                            remaining ^= nbrs
                            changed = True
                            break
                if not changed:
                    break
            if cost >= best_cost:
                return
            # Any edge left?
            has_edge = False
            snapshot = remaining
            while snapshot:
                low = snapshot & -snapshot
                snapshot ^= low
                if masks[low.bit_length() - 1] & remaining:
                    has_edge = True
                    break
            if not has_edge:
                if cost < best_cost:
                    best_cover = chosen
                    best_cost = cost
                return
            if cost + _matching_lower_bound_masks(remaining, weights, masks) >= best_cost:
                return
            previous = memo.get(remaining)
            if previous is not None and cost >= previous:
                return
            memo[remaining] = cost if previous is None or cost < previous else previous
            # Branch vertex: maximum (induced degree, label), first wins —
            # the reference's max() over nodes in insertion order.
            branch_v = -1
            best_degree = -1
            best_label = ""
            snapshot = remaining
            while snapshot:
                low = snapshot & -snapshot
                snapshot ^= low
                v = low.bit_length() - 1
                degree = (masks[v] & remaining).bit_count()
                if degree > best_degree or (
                    degree == best_degree and labels[v] > best_label
                ):
                    best_degree = degree
                    best_label = labels[v]
                    branch_v = v
            v_bit = 1 << branch_v
            nbrs = masks[branch_v] & remaining
            # Branch 1: v in the cover.
            solve(remaining & ~v_bit, chosen | v_bit, cost + weights[branch_v])
            # Branch 2: v out → all neighbours in (weights summed ascending,
            # matching the reference's node-ordered accumulation).
            add_cost = 0.0
            snapshot = nbrs
            while snapshot:
                low = snapshot & -snapshot
                snapshot ^= low
                add_cost += weights[low.bit_length() - 1]
            solve(remaining & ~(nbrs | v_bit), chosen | nbrs, cost + add_cost)

        # Recursion depth is bounded by the component size (each branch
        # strictly shrinks ``remaining``); past 64 vertices that can
        # brush CPython's default 1000-frame limit under a deep caller
        # stack, so give the search headroom for its duration — and
        # restore the caller's limit on the way out, success or raise:
        # a library call must not leave a process-global widened.
        if n > MAX_BITMASK_VERTICES // 4:
            import sys

            previous_limit = sys.getrecursionlimit()
            sys.setrecursionlimit(max(previous_limit, 4096))
            try:
                solve(full, 0, 0.0)
            finally:
                sys.setrecursionlimit(previous_limit)
        else:
            solve(full, 0, 0.0)
        return best_cover


def bitmask_vertex_cover(
    weights: Sequence[float],
    masks: Sequence[int],
    labels: Sequence[str],
    budget_s: Optional[float] = None,
) -> int:
    """Functional entry point for :class:`BitsetVC` (see there)."""
    return BitsetVC(weights, masks, labels).solve(budget_s=budget_s)


def exact_cover_ids(index, budget_s: Optional[float] = None) -> List[TupleId]:
    """Exact minimum-weight vertex cover of a live :class:`ConflictIndex`
    with at most :data:`MAX_BITMASK_VERTICES` tuples, via the bitset
    branch & bound.  Returns the covered tuple ids (table order).

    Reads the index's (cached) mask view — built straight from the live
    adjacency, no ``Graph`` materialisation, no per-branch graph copies.
    Live order is always ascending table position (removals preserve
    order, inserts append), so bit order matches the node order the
    reference solver sees.  *budget_s* propagates to
    :meth:`BitsetVC.solve`.
    """
    members, weights, masks = index._mask_view()
    labels = [str(tid) for tid in members]
    cover = BitsetVC(weights, masks, labels).solve(budget_s=budget_s)
    return [members[i] for i in _bits_ascending(cover)]


# ---------------------------------------------------------------------------
# Array-native approximation loops (greedy deletion, MIS maximalisation)
# ---------------------------------------------------------------------------

def greedy_cover_csr(kern: ConflictKernel) -> Set[int]:
    """The greedy weight/degree deletion loop over the kernel arrays.

    Mirrors :func:`repro.core.approx.greedy_s_repair`'s lazy-heap loop
    decision for decision — same ``(weight/degree, str(id), live rank)``
    keys, same stale-entry re-push rule — on a flat degree array and
    ``alive`` byte-flags instead of a mutable :class:`ConflictIndex`
    copy.  Works on pristine and patched views alike (live degrees are
    maintained by the patch hooks).  Returns the *removed* rows.
    """
    ids = kern.codec.ids
    weights = kern.codec.weights
    alive = bytearray(kern.alive)
    degree = list(kern.degree)
    edges = kern.live_edges
    # The reference's tie-break triple is (weight/degree, str(id), live
    # rank); the row index is strictly monotone in live rank, so using
    # it as the third key yields the identical relative order — and an
    # unpatched view can seed the heap from its conflicting-rows list
    # alone (dead rows always carry degree 0, so the degree test is the
    # only liveness check the patched scan needs).
    rows = (
        kern.conflicting_rows if not kern.patched else range(len(degree))
    )
    heap: List[Tuple[float, str, int]] = [
        (weights[r] / d, str(ids[r]), r)
        for r in rows
        if (d := degree[r]) > 0
    ]
    heapq.heapify(heap)
    removed: Set[int] = set()
    # Adjacency inlined (CSR slice + overflow list) rather than routed
    # through the row_neighbors generator: the deletion loop touches
    # every edge a few times and generator resumption would dominate it.
    indptr = kern.indptr
    indices = kern.indices
    csr_rows = kern.csr_rows
    extra = kern.extra_adj
    while edges > 0:
        key, label, r = heapq.heappop(heap)
        if not alive[r]:
            continue
        d = degree[r]
        if d == 0:
            continue  # conflict-free now; degrees never rise again
        current = weights[r] / d
        if current > key:
            heapq.heappush(heap, (current, label, r))
            continue
        alive[r] = 0
        removed.add(r)
        if r < csr_rows:
            for v in indices[indptr[r]:indptr[r + 1]]:
                if alive[v]:
                    degree[v] -= 1
        overflow = extra.get(r)
        if overflow is not None:
            for v in overflow:
                if alive[v]:
                    degree[v] -= 1
        degree[r] = 0
        edges -= d
    return removed


def greedy_cover_masks(
    weights: Sequence[float], masks: Sequence[int], labels: Sequence[str]
) -> int:
    """Mask-view twin of :func:`greedy_cover_csr` for small live indexes
    (per-component solves).  Bit *i* is live tuple *i*; returns the
    removed-vertices mask."""
    n = len(weights)
    alive = (1 << n) - 1
    degree = [masks[i].bit_count() for i in range(n)]
    edges = sum(degree) // 2
    heap: List[Tuple[float, str, int, int]] = [
        (weights[i] / d, labels[i], i, i)
        for i in range(n)
        if (d := degree[i])
    ]
    heapq.heapify(heap)
    removed = 0
    while edges > 0:
        key, label, rank, r = heapq.heappop(heap)
        bit = 1 << r
        if not alive & bit:
            continue
        d = degree[r]
        if d == 0:
            continue
        current = weights[r] / d
        if current > key:
            heapq.heappush(heap, (current, label, rank, r))
            continue
        alive ^= bit
        removed |= bit
        nbrs = masks[r] & alive
        while nbrs:
            low = nbrs & -nbrs
            nbrs ^= low
            degree[low.bit_length() - 1] -= 1
        degree[r] = 0
        edges -= d
    return removed


def mis_maximalize_csr(
    kern: ConflictKernel, independent: Set[TupleId]
) -> Set[TupleId]:
    """Grow an independent tuple set to a maximal one over the kernel view.

    Mirrors :func:`repro.graphs.vertex_cover.maximalize_independent_set`:
    candidates are the live tuples outside the set, in live (= row)
    order, stably sorted by ``(-weight, str(id))``; each joins unless a
    live neighbour is already in.  Takes and returns tuple-id sets so
    the (typically large) independent side is one C-level set copy —
    only the (typically few) candidates pay per-row work.
    """
    ids = kern.codec.ids
    weights = kern.codec.weights
    alive = kern.alive
    result = set(independent)
    candidates = [
        r for r, tid in enumerate(ids) if alive[r] and tid not in result
    ]
    candidates.sort(key=lambda r: (-weights[r], str(ids[r])))
    indptr = kern.indptr
    indices = kern.indices
    csr_rows = kern.csr_rows
    extra = kern.extra_adj
    for r in candidates:
        blocked = False
        if r < csr_rows:
            for v in indices[indptr[r]:indptr[r + 1]]:
                if alive[v] and ids[v] in result:
                    blocked = True
                    break
        if not blocked:
            overflow = extra.get(r)
            if overflow is not None:
                for v in overflow:
                    if alive[v] and ids[v] in result:
                        blocked = True
                        break
        if not blocked:
            result.add(ids[r])
    return result


def mis_maximalize_masks(
    weights: Sequence[float],
    masks: Sequence[int],
    labels: Sequence[str],
    independent: int,
) -> int:
    """Mask-view twin of :func:`mis_maximalize_csr`; *independent* and
    the result are vertex masks over the live order."""
    n = len(weights)
    result = independent
    candidates = [i for i in range(n) if not (independent >> i) & 1]
    candidates.sort(key=lambda i: (-weights[i], labels[i]))
    for i in candidates:
        if not masks[i] & result:
            result |= 1 << i
    return result
