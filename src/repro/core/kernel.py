"""Interned columnar kernel: integer-coded rows, CSR adjacency, bitmasks.

Every hot path of the library — ``Table.group_by``, the
:class:`~repro.core.conflict_index.ConflictIndex` build, component
extraction, and exact vertex cover — reduces to hash grouping and
conflict-graph traversal over dict-of-sets structures keyed by
arbitrary-hashable value tuples.  Those structures are semantically
right (FD satisfaction only observes the *equality pattern* of values)
but pay repeated tuple allocation, tuple hashing, and per-element set
overhead in the inner loops.

This module is the representation-level answer:

* :class:`TableCodec` interns each column's values to dense integer
  codes (``code 0`` is the column's first-seen value, in table order)
  and each tuple identifier to a dense row index.  Because codes are
  assigned in first-seen order, every order-sensitive consumer
  downstream — ``group_by`` insertion order, ``distinct_projection``,
  the dichotomy recursion's block order — behaves identically on coded
  rows and on the original values: the coded table is FD-equivalent
  *and* iteration-equivalent.
* :func:`build_conflict_edges` re-runs the per-FD hash grouping of the
  conflict-index build on the coded columns: grouping keys are single
  machine ints (mixed-radix combinations of column codes), so the
  grouping loop allocates no tuples and hashes no strings.
* :class:`ConflictKernel` holds the resulting conflict graph as
  CSR-style flat adjacency arrays (``indptr`` / ``indices``) with
  parallel weight and degree arrays — the substrate of the
  ``components()`` and Bar-Yehuda–Even array fast paths.
* :func:`bitmask_vertex_cover` is a memoised single-word branch & bound
  for components of at most :data:`MAX_BITMASK_VERTICES` vertices:
  component vertices map to bits of one Python int, neighbour masks are
  precomputed, and a subset-memo on the remaining-vertices mask prunes
  re-entered states.  It is a *faithful mirror* of
  :func:`repro.graphs.vertex_cover.exact_min_weight_vertex_cover` —
  same simplifications, same branch order, same tie-breaks, same
  floating-point summation order — so it returns the **identical
  cover**, not merely one of equal weight (pinned by the property tests
  in ``tests/test_kernel.py``).

The dict paths everywhere remain the semantic reference: the kernel is
an acceleration layer, switchable off globally (:func:`set_enabled`,
the CLI's ``--no-kernel``) or per block (:func:`disabled`), and every
result is byte-identical either way.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .table import Row, Table, TupleId, Value

__all__ = [
    "MAX_BITMASK_VERTICES",
    "TableCodec",
    "ConflictKernel",
    "enabled",
    "set_enabled",
    "disabled",
    "build_conflict_edges",
    "bitmask_vertex_cover",
    "bye_cover_csr",
    "bye_cover_masks",
    "components_csr",
]

#: Largest component the single-word bitmask branch & bound accepts: one
#: Python int carries one bit per component vertex, and staying at or
#: below the machine-word width keeps every mask operation a single-digit
#: int op.  Deliberately equal to the portfolio's
#: ``EXACT_COMPONENT_THRESHOLD`` — the decomposed exact solves are
#: exactly the workload the bitmask kernel exists for.
MAX_BITMASK_VERTICES = 64

_ENABLED = True


def enabled() -> bool:
    """True iff the columnar kernel is globally enabled (the default)."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Switch the kernel on/off globally (the CLI's ``--no-kernel``).

    Only affects structures built *after* the switch: a
    :class:`~repro.core.conflict_index.ConflictIndex` snapshots the flag
    at construction, so one index is consistently kernel-backed or
    consistently dict-backed for its whole life.
    """
    global _ENABLED
    _ENABLED = bool(value)


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the dict reference paths (tests, benchmarks)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


# ---------------------------------------------------------------------------
# Column interning
# ---------------------------------------------------------------------------

class TableCodec:
    """Dense integer coding of a table: row indices and column codes.

    ``ids[i]`` is the tuple identifier of row ``i`` (rows in table
    order), ``columns[j][i]`` the integer code of row ``i``'s value in
    column ``j``, ``decoders[j][code]`` the original value, and
    ``weights[i]`` the tuple weight.  Codes are assigned in first-seen
    table order, so equal values share a code (``FreshValue`` cells
    intern by identity, exactly matching their equality semantics) and
    code order is first-seen order.

    The codec stays **live** under index mutation:
    :meth:`append_row` interns a new tuple's values (extending the
    per-column intern maps), and removals simply leave their row slots
    behind — the owning index's live-tuple set governs which rows
    matter, so a stale slot is never read.
    """

    __slots__ = (
        "schema", "ids", "row_index", "columns", "decoders", "weights",
        "_interns",
    )

    def __init__(
        self,
        schema: Tuple[str, ...],
        ids: List[TupleId],
        row_index: Dict[TupleId, int],
        columns: List[List[int]],
        decoders: List[List[Value]],
        weights: List[float],
        interns: List[Dict[Value, int]],
    ) -> None:
        self.schema = schema
        self.ids = ids
        self.row_index = row_index
        self.columns = columns
        self.decoders = decoders
        self.weights = weights
        self._interns = interns

    @classmethod
    def encode(cls, table: Table) -> "TableCodec":
        """Intern *table* into dense row indices and column codes.

        Near-C-speed per column: ``dict.fromkeys`` dedups the column in
        first-seen order (the code assignment the order-sensitivity
        contract requires), and ``map(intern.__getitem__, …)`` codes the
        whole column without a Python-level inner loop.
        """
        schema = table.schema
        rows = table._rows
        ids: List[TupleId] = list(rows)
        # Keyed lookup, not .values(): _from_trusted only promises
        # matching key *sets*, and a weight mis-assignment here would be
        # silent.
        weights: List[float] = list(map(table._weights.__getitem__, ids))
        interns: List[Dict[Value, int]] = []
        decoders: List[List[Value]] = []
        columns: List[List[int]] = []
        for column_values in zip(*rows.values()):
            intern = {v: i for i, v in enumerate(dict.fromkeys(column_values))}
            interns.append(intern)
            decoders.append(list(intern))
            columns.append(list(map(intern.__getitem__, column_values)))
        if not rows:  # zip(*()) yields nothing: still shape the columns
            interns = [{} for _ in schema]
            decoders = [[] for _ in schema]
            columns = [[] for _ in schema]
        row_index = {tid: i for i, tid in enumerate(ids)}
        return cls(schema, ids, row_index, columns, decoders, weights, interns)

    def __len__(self) -> int:
        return len(self.ids)

    def append_row(self, tid: TupleId, row: Sequence[Value], weight: float) -> int:
        """Intern one appended tuple; returns its new row index."""
        index = len(self.ids)
        self.ids.append(tid)
        self.row_index[tid] = index
        self.weights.append(float(weight))
        for j, value in enumerate(row):
            intern = self._interns[j]
            code = intern.get(value)
            if code is None:
                code = intern[value] = len(intern)
                self.decoders[j].append(value)
            self.columns[j].append(code)
        return index

    def coded_row(self, tid: TupleId) -> Row:
        """The integer-coded row of *tid* (a tuple of column codes)."""
        i = self.row_index[tid]
        return tuple(column[i] for column in self.columns)

    def decode_row(self, i: int) -> Row:
        """Original values of row *i*."""
        return tuple(
            self.decoders[j][column[i]] for j, column in enumerate(self.columns)
        )

    def decode_table(self, name: str = "R") -> Table:
        """Reconstruct the encoded table (the round-trip the property
        tests pin: ``decode_table(encode(t)) == t``)."""
        rows = {tid: self.decode_row(i) for i, tid in enumerate(self.ids)}
        weights = {tid: self.weights[i] for i, tid in enumerate(self.ids)}
        return Table(self.schema, rows, weights, name=name)

    def combined_codes(self, positions: Sequence[int]) -> List[int]:
        """One machine-int grouping key per row for the given columns.

        Mixed-radix combination: with ``positions = [p1, …, pk]`` and
        column alphabet sizes ``n1, …, nk`` the key of row *i* is the
        rank of ``(c1, …, ck)`` in row-major order — a bijection, so
        grouping by the combined int is exactly grouping by the value
        tuple, with no tuple allocation and single-int hashing.
        """
        if not positions:
            return [0] * len(self.ids)
        first = self.columns[positions[0]]
        if len(positions) == 1:
            return first  # shared read-only: callers never mutate keys
        keys = list(first)
        for p in positions[1:]:
            column = self.columns[p]
            base = len(self.decoders[p])
            keys = [k * base + c for k, c in zip(keys, column)]
        return keys


# ---------------------------------------------------------------------------
# Conflict-graph construction on coded columns
# ---------------------------------------------------------------------------

def build_conflict_edges(
    codec: TableCodec,
    fd_specs: Sequence[Tuple[object, Sequence[int], Sequence[int]]],
) -> List[int]:
    """All conflict edges implied by *fd_specs*, as sorted packed ints.

    Mirrors the per-FD hash grouping of the dict build: rows sharing an
    FD's lhs key but disagreeing on its rhs key conflict.  Edges are
    deduplicated across FDs and returned as ``u * n + v`` with
    ``u < v`` row indices — sorted, which is exactly canonical
    ``(position(u), position(v))`` order.
    """
    from collections import defaultdict

    n = len(codec.ids)
    edge_set: Set[int] = set()
    add_edge = edge_set.add
    for _fd, lhs_pos, rhs_pos in fd_specs:
        keys = codec.combined_codes(lhs_pos)
        groups: Dict[int, List[int]] = defaultdict(list)
        for i, key in enumerate(keys):
            groups[key].append(i)
        rhs: Optional[List[int]] = None
        for members in groups.values():
            if len(members) < 2:
                continue
            if rhs is None:
                rhs = codec.combined_codes(rhs_pos)
            parts: Dict[int, List[int]] = defaultdict(list)
            for i in members:
                parts[rhs[i]].append(i)
            if len(parts) < 2:
                continue
            part_list = list(parts.values())
            for a in range(len(part_list) - 1):
                part_a = part_list[a]
                for b in range(a + 1, len(part_list)):
                    for u in part_a:
                        for v in part_list[b]:
                            add_edge(u * n + v if u < v else v * n + u)
    return sorted(edge_set)


class ConflictKernel:
    """Flat-array snapshot of a table's conflict graph.

    ``edges_u`` / ``edges_v`` hold each conflict pair once in canonical
    ascending ``(u, v)`` row order; ``indptr`` / ``indices`` are the
    CSR adjacency (both directions); ``degree`` and ``weights`` are the
    parallel per-row arrays.  Row index *is* table position, so the
    arrays are valid only for the construction-time snapshot — the
    owning :class:`ConflictIndex` stops consulting them once a mutation
    (``insert`` / ``remove``) changes the live set, while the codec
    itself stays live.
    """

    __slots__ = (
        "codec", "edges_u", "edges_v", "indptr", "indices", "degree",
        "conflicting_rows",
    )

    def __init__(self, codec: TableCodec, packed_edges: List[int]) -> None:
        self.codec = codec
        n = len(codec.ids)
        m = len(packed_edges)
        edges_u = [0] * m
        edges_v = [0] * m
        degree = [0] * n
        for e, code in enumerate(packed_edges):
            u, v = divmod(code, n)
            edges_u[e] = u
            edges_v[e] = v
            degree[u] += 1
            degree[v] += 1
        indptr = [0] * (n + 1)
        for i in range(n):
            indptr[i + 1] = indptr[i] + degree[i]
        fill = list(indptr)
        indices = [0] * (2 * m)
        for u, v in zip(edges_u, edges_v):
            indices[fill[u]] = v
            fill[u] += 1
            indices[fill[v]] = u
            fill[v] += 1
        self.edges_u = edges_u
        self.edges_v = edges_v
        self.indptr = indptr
        self.indices = indices
        self.degree = degree
        # Rows with at least one conflict, ascending — the only roots a
        # component sweep needs to visit (typically a few % of |T|).
        self.conflicting_rows = [i for i, d in enumerate(degree) if d]

    @property
    def weights(self) -> List[float]:
        return self.codec.weights

    @property
    def num_edges(self) -> int:
        return len(self.edges_u)


def components_csr(kernel: ConflictKernel) -> List[List[int]]:
    """Connected components over the CSR arrays, canonically ordered.

    Matches :meth:`ConflictIndex.components` exactly: components listed
    by their earliest row, members ascending — row index is table
    position, so ascending ints *is* table order.  Only rows with at
    least one edge appear.
    """
    indptr = kernel.indptr
    indices = kernel.indices
    seen = bytearray(len(kernel.degree))
    out: List[List[int]] = []
    for root in kernel.conflicting_rows:
        if seen[root]:
            continue
        seen[root] = 1
        stack = [root]
        members: List[int] = []
        append = members.append
        while stack:
            current = stack.pop()
            append(current)
            # Slice, not per-index loops: the slice materialises at C
            # speed and its iteration beats repeated indptr indexing.
            for other in indices[indptr[current]:indptr[current + 1]]:
                if not seen[other]:
                    seen[other] = 1
                    stack.append(other)
        members.sort()
        out.append(members)
    return out


def bye_cover_csr(kernel: ConflictKernel) -> Set[int]:
    """Bar-Yehuda–Even over the flat edge arrays; returns covered rows.

    Identical arithmetic to
    :func:`repro.graphs.vertex_cover.bar_yehuda_even` reading
    ``ConflictIndex.edges()``: the flat arrays hold the edges in the
    same canonical order, so every local-ratio payment happens in the
    same sequence on the same floats.
    """
    residual = list(kernel.weights)
    cover: Set[int] = set()
    for u, v in zip(kernel.edges_u, kernel.edges_v):
        if u in cover or v in cover:
            continue
        ru = residual[u]
        rv = residual[v]
        pay = ru if ru < rv else rv
        residual[u] = ru - pay
        residual[v] = rv - pay
        if residual[u] <= 0:
            cover.add(u)
        if residual[v] <= 0:
            cover.add(v)
    return cover


# ---------------------------------------------------------------------------
# Bitmask branch & bound (components ≤ 64 vertices)
# ---------------------------------------------------------------------------

def _bits_ascending(mask: int) -> List[int]:
    """Set-bit positions of *mask*, ascending."""
    out: List[int] = []
    append = out.append
    while mask:
        low = mask & -mask
        append(low.bit_length() - 1)
        mask ^= low
    return out


def bye_cover_masks(weights: Sequence[float], masks: Sequence[int]) -> int:
    """Bar-Yehuda–Even on neighbour bitmasks; returns the cover mask.

    Edges are visited in ascending ``(u, v)`` order — the same canonical
    sequence as the reference — so the result set is identical.
    """
    residual = list(weights)
    cover = 0
    for u in range(len(weights)):
        if (cover >> u) & 1:
            # A covered u can't change any residual; skipping its edges
            # mirrors the reference's per-edge membership test.
            continue
        forward = masks[u] >> (u + 1)
        v = u + 1
        while forward:
            if forward & 1 and not (cover >> v) & 1:
                ru = residual[u]
                rv = residual[v]
                pay = ru if ru < rv else rv
                residual[u] = ru - pay
                residual[v] = rv - pay
                if residual[v] <= 0:
                    cover |= 1 << v
                if residual[u] <= 0:
                    cover |= 1 << u
                    break  # u covered: its remaining edges are skipped
            forward >>= 1
            v += 1
    return cover


def _matching_lower_bound_masks(
    remaining: int, weights: Sequence[float], masks: Sequence[int]
) -> float:
    """Greedy maximal-matching bound over the remaining subgraph.

    Mirrors ``_matching_lower_bound``: edges in ascending order, each
    matched edge paying the lighter endpoint.
    """
    matched = 0
    bound = 0.0
    todo = remaining
    while todo:
        low = todo & -todo
        u = low.bit_length() - 1
        todo ^= low
        if (matched >> u) & 1:
            continue
        candidates = masks[u] & ((remaining >> (u + 1)) << (u + 1))
        while candidates:
            low_v = candidates & -candidates
            v = low_v.bit_length() - 1
            candidates ^= low_v
            if (matched >> v) & 1:
                continue
            matched |= (1 << u) | (1 << v)
            wu = weights[u]
            wv = weights[v]
            bound += wu if wu < wv else wv
            break
    return bound


def bitmask_vertex_cover(
    weights: Sequence[float],
    masks: Sequence[int],
    labels: Sequence[str],
) -> int:
    """Exact minimum-weight vertex cover as a single-word bitmask search.

    A faithful mirror of
    :func:`repro.graphs.vertex_cover.exact_min_weight_vertex_cover` on a
    component of ``n ≤ 64`` vertices: vertex *i* of the (table-ordered)
    component maps to bit *i*; ``masks[i]`` is its neighbour set;
    ``labels[i] = str(id_i)`` reproduces the reference's branch-vertex
    tie-break.  The mirror preserves the simplification order (isolated
    vertices, then the weighted pendant rule with restart), the
    matching-lower-bound prune, the branch order ("take v" before "take
    N(v)") and every floating-point summation order — so the returned
    cover mask decodes to the *identical* vertex set.

    On top of the mirror, a subset-memo on the remaining-vertices mask
    prunes re-entered states: a state revisited at an entry cost no
    lower than a previous visit cannot improve the incumbent (entry
    costs only shift completions upward, and incumbent updates are
    strict), so the memo prune is result-invisible — it removes work,
    never answers.
    """
    n = len(weights)
    if n > MAX_BITMASK_VERTICES:
        raise ValueError(
            f"bitmask vertex cover limited to {MAX_BITMASK_VERTICES} "
            f"vertices, got {n}"
        )
    full = (1 << n) - 1

    best_cover = bye_cover_masks(weights, masks)
    best_cost = 0.0
    for v in _bits_ascending(best_cover):
        best_cost += weights[v]

    memo: Dict[int, float] = {}

    def solve(remaining: int, chosen: int, cost: float) -> None:
        nonlocal best_cover, best_cost
        # Simplifications, exactly as the reference: scan a snapshot of
        # the vertices in position order; drop isolated vertices in
        # place, and on a (weighted) pendant take restart the scan.
        # (Bit loops iterate a snapshot int ascending — the mirror of
        # iterating list(g.nodes()) while mutating g.)
        while True:
            changed = False
            snapshot = remaining
            while snapshot:
                low = snapshot & -snapshot
                snapshot ^= low
                v = low.bit_length() - 1
                nbrs = masks[v] & remaining
                if not nbrs:
                    remaining ^= low
                    changed = True
                elif not (nbrs & (nbrs - 1)):  # exactly one neighbour
                    u = nbrs.bit_length() - 1
                    if weights[u] <= weights[v]:
                        chosen |= nbrs
                        cost += weights[u]
                        remaining ^= nbrs
                        changed = True
                        break
            if not changed:
                break
        if cost >= best_cost:
            return
        # Any edge left?
        has_edge = False
        snapshot = remaining
        while snapshot:
            low = snapshot & -snapshot
            snapshot ^= low
            if masks[low.bit_length() - 1] & remaining:
                has_edge = True
                break
        if not has_edge:
            if cost < best_cost:
                best_cover = chosen
                best_cost = cost
            return
        if cost + _matching_lower_bound_masks(remaining, weights, masks) >= best_cost:
            return
        previous = memo.get(remaining)
        if previous is not None and cost >= previous:
            return
        memo[remaining] = cost if previous is None or cost < previous else previous
        # Branch vertex: maximum (induced degree, label), first wins —
        # the reference's max() over nodes in insertion order.
        branch_v = -1
        best_degree = -1
        best_label = ""
        snapshot = remaining
        while snapshot:
            low = snapshot & -snapshot
            snapshot ^= low
            v = low.bit_length() - 1
            degree = (masks[v] & remaining).bit_count()
            if degree > best_degree or (
                degree == best_degree and labels[v] > best_label
            ):
                best_degree = degree
                best_label = labels[v]
                branch_v = v
        v_bit = 1 << branch_v
        nbrs = masks[branch_v] & remaining
        # Branch 1: v in the cover.
        solve(remaining & ~v_bit, chosen | v_bit, cost + weights[branch_v])
        # Branch 2: v out → all neighbours in (weights summed ascending,
        # matching the reference's node-ordered accumulation).
        add_cost = 0.0
        snapshot = nbrs
        while snapshot:
            low = snapshot & -snapshot
            snapshot ^= low
            add_cost += weights[low.bit_length() - 1]
        solve(remaining & ~(nbrs | v_bit), chosen | nbrs, cost + add_cost)

    solve(full, 0, 0.0)
    return best_cover


def exact_cover_ids(index) -> List[TupleId]:
    """Exact minimum-weight vertex cover of a live :class:`ConflictIndex`
    with at most :data:`MAX_BITMASK_VERTICES` tuples, via the bitmask
    branch & bound.  Returns the covered tuple ids (table order).

    Reads the index's (cached) mask view — built straight from the live
    adjacency, no ``Graph`` materialisation, no per-branch graph copies.
    Live order is always ascending table position (removals preserve
    order, inserts append), so bit order matches the node order the
    reference solver sees.
    """
    members, weights, masks = index._mask_view()
    labels = [str(tid) for tid in members]
    cover = bitmask_vertex_cover(weights, masks, labels)
    return [members[i] for i in _bits_ascending(cover)]
