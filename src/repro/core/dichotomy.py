"""Algorithm 2 (``OSRSucceeds``) and the dichotomy classification.

This module answers, from Δ alone, which side of the S-repair dichotomy
(Theorem 3.4) a combination of schema and FD set lies on:

* :func:`osr_succeeds` — Algorithm 2: simulate the three simplifications
  until Δ is trivial (→ PTIME) or stuck (→ APX-complete).
* :func:`simplification_trace` — the full ⇛-chain, as displayed in
  Example 3.5.
* :func:`classify` — a :class:`DichotomyResult` combining the boolean
  verdict, the trace, the residual (stuck) FD set, and — on the hard
  side — a :class:`HardnessWitness` placing the stuck set in one of the
  five classes of Figure 2 (Lemma A.22) together with the source hard FD
  set of Table 1 from which a fact-wise reduction exists.

Table 1's hard FD sets are exposed as module constants
(:data:`DELTA_A_B_C` etc.) so that tests and benchmarks can refer to them
by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import List, Optional, Tuple

from .fd import AttrSet, FDSet, attrset

__all__ = [
    "SimplificationStep",
    "HardnessWitness",
    "DichotomyResult",
    "osr_succeeds",
    "simplification_trace",
    "classify",
    "classify_stuck",
    "DELTA_A_B_C",
    "DELTA_A_C_B",
    "DELTA_AB_C_B",
    "DELTA_TRIANGLE",
    "HARD_FD_SETS",
]

# ---------------------------------------------------------------------------
# Table 1: the four hard FD sets over R(A, B, C).
# ---------------------------------------------------------------------------

#: ``Δ_{A→B→C}`` — A → B, B → C.
DELTA_A_B_C = FDSet("A -> B; B -> C")

#: ``Δ_{A→C←B}`` — A → C, B → C.
DELTA_A_C_B = FDSet("A -> C; B -> C")

#: ``Δ_{AB→C→B}`` — AB → C, C → B.
DELTA_AB_C_B = FDSet("A B -> C; C -> B")

#: ``Δ_{AB↔AC↔BC}`` — AB → C, AC → B, BC → A.
DELTA_TRIANGLE = FDSet("A B -> C; A C -> B; B C -> A")

#: Name → FD set for all of Table 1.
HARD_FD_SETS = {
    "Δ_{A→B→C}": DELTA_A_B_C,
    "Δ_{A→C←B}": DELTA_A_C_B,
    "Δ_{AB→C→B}": DELTA_AB_C_B,
    "Δ_{AB↔AC↔BC}": DELTA_TRIANGLE,
}


@dataclass(frozen=True)
class SimplificationStep:
    """One ⇛ step of Algorithm 2.

    ``kind`` is ``"common lhs"``, ``"consensus"`` or ``"lhs marriage"``;
    ``removed`` is the attribute set erased from Δ; *before*/*after* are
    the FD sets (trivial FDs already stripped) around the step.
    """

    kind: str
    removed: AttrSet
    before: FDSet
    after: FDSet

    def __str__(self) -> str:
        removed = " ".join(sorted(self.removed))
        return f"{self.before}  ({self.kind}: {removed}) ⇛  {self.after}"


@dataclass(frozen=True)
class HardnessWitness:
    """Placement of a stuck FD set into one of the five classes of Fig. 2.

    ``x1``/``x2`` are the chosen local-minima lhs (``x3`` for class 4);
    ``source`` names the Table 1 FD set from which a fact-wise reduction
    to the stuck set exists (Lemmas A.14–A.17); ``lemma`` names it.
    """

    class_id: int
    x1: AttrSet
    x2: AttrSet
    x3: Optional[AttrSet]
    source: str
    lemma: str

    def __str__(self) -> str:
        parts = [
            f"class {self.class_id}",
            f"X1={{{' '.join(sorted(self.x1))}}}",
            f"X2={{{' '.join(sorted(self.x2))}}}",
        ]
        if self.x3 is not None:
            parts.append(f"X3={{{' '.join(sorted(self.x3))}}}")
        parts.append(f"reduction from {self.source} ({self.lemma})")
        return ", ".join(parts)


@dataclass(frozen=True)
class DichotomyResult:
    """Complete dichotomy verdict for an FD set (Theorem 3.4)."""

    fds: FDSet
    tractable: bool
    steps: Tuple[SimplificationStep, ...]
    residual: FDSet
    witness: Optional[HardnessWitness]

    @property
    def complexity(self) -> str:
        """``"PTIME"`` or ``"APX-complete"``."""
        return "PTIME" if self.tractable else "APX-complete"

    def trace_lines(self) -> List[str]:
        """The Example 3.5-style ⇛ chain as printable lines."""
        if not self.steps:
            return [f"{self.residual}  (no simplification applies)"]
        lines = [str(self.steps[0].before)]
        for step in self.steps:
            removed = " ".join(sorted(step.removed))
            lines.append(f"  ({step.kind}: {removed}) ⇛ {step.after}")
        if not self.tractable:
            lines.append("  stuck — APX-complete")
        return lines


def _simplify(fds: FDSet) -> Tuple[Tuple[SimplificationStep, ...], FDSet]:
    """Run Algorithm 2's loop, recording every step.

    Returns the steps and the residual FD set: trivial (possibly empty)
    when the loop succeeds, the stuck nontrivial FD set otherwise.
    """
    current = fds.with_singleton_rhs()
    steps: List[SimplificationStep] = []
    while not current.is_trivial:
        current = current.without_trivial()
        common = current.common_lhs()
        if common:
            attr = min(sorted(common))
            after = current.minus((attr,)).without_trivial()
            steps.append(
                SimplificationStep("common lhs", frozenset((attr,)), current, after)
            )
            current = after
            continue
        consensus = current.consensus_fds()
        if consensus:
            removed = consensus[0].rhs
            after = current.minus(removed).without_trivial()
            steps.append(
                SimplificationStep("consensus", removed, current, after)
            )
            current = after
            continue
        marriages = current.lhs_marriages()
        if marriages:
            x1, x2 = marriages[0]
            removed = x1 | x2
            after = current.minus(removed).without_trivial()
            steps.append(
                SimplificationStep("lhs marriage", removed, current, after)
            )
            current = after
            continue
        return tuple(steps), current  # stuck
    return tuple(steps), current


def osr_succeeds(fds: FDSet) -> bool:
    """``OSRSucceeds(Δ)`` — Algorithm 2.

    True iff Δ can be reduced to a trivial FD set by common-lhs,
    consensus, and lhs-marriage eliminations; equivalently (Theorem 3.4),
    true iff an optimal S-repair under Δ is computable in polynomial time.
    """
    _steps, residual = _simplify(fds)
    return residual.is_trivial


def simplification_trace(fds: FDSet) -> Tuple[SimplificationStep, ...]:
    """The sequence of simplification steps Algorithm 2 performs on Δ."""
    steps, _residual = _simplify(fds)
    return steps


def classify_stuck(fds: FDSet) -> HardnessWitness:
    """Place an unsimplifiable FD set into one of Figure 2's five classes.

    *fds* must be nontrivial, in singleton-rhs form without trivial FDs,
    and admit no simplification (the caller — :func:`classify` — passes
    the residual of Algorithm 2).  Implements the case analysis of
    Lemma A.22: for an ordered pair of distinct local minima X1, X2 with
    closure differences X̂i = cl(Xi) ∖ Xi,

    * class 1 — X̂1 ∩ cl(X2) = ∅ and X̂2 ∩ cl(X1) = ∅ → reduction from
      ``Δ_{A→C←B}`` (Lemma A.14);
    * class 2 — X̂1 ∩ X̂2 ≠ ∅, X̂1 ∩ X2 = ∅, X̂2 ∩ X1 = ∅ → from
      ``Δ_{A→B→C}`` (Lemma A.15);
    * class 3 — X̂1 ∩ X2 ≠ ∅, X̂2 ∩ X1 = ∅ → from ``Δ_{A→B→C}``
      (Lemma A.15);
    * class 4 — X̂1 ∩ X2 ≠ ∅, X̂2 ∩ X1 ≠ ∅, X1∖X2 ⊆ X̂2, X2∖X1 ⊆ X̂1 →
      three local minima exist and there is a reduction from
      ``Δ_{AB↔AC↔BC}`` (Lemma A.16);
    * class 5 — X̂1 ∩ X2 ≠ ∅, X̂2 ∩ X1 ≠ ∅, X2∖X1 ⊄ X̂1 → from
      ``Δ_{AB→C→B}`` (Lemma A.17).
    """
    minima = fds.local_minima()
    if len(minima) < 2:
        raise ValueError(
            f"{fds} has fewer than two local minima; it is simplifiable, "
            "not stuck"
        )
    hats = {x: fds.closure(x) - x for x in minima}
    closures = {x: fds.closure(x) for x in minima}

    ordered = sorted(minima, key=lambda x: tuple(sorted(x)))
    for x1, x2 in permutations(ordered, 2):
        h1, h2 = hats[x1], hats[x2]
        if not (h2 & x1):
            if not (h1 & closures[x2]):
                return HardnessWitness(1, x1, x2, None, "Δ_{A→C←B}", "Lemma A.14")
            if (h1 & h2) and not (h1 & x2):
                return HardnessWitness(2, x1, x2, None, "Δ_{A→B→C}", "Lemma A.15")
            if h1 & x2:
                return HardnessWitness(3, x1, x2, None, "Δ_{A→B→C}", "Lemma A.15")
        else:
            if (h1 & x2) and not ((x2 - x1) <= h1):
                return HardnessWitness(5, x1, x2, None, "Δ_{AB→C→B}", "Lemma A.17")
            if (h1 & x2) and (x1 - x2) <= h2 and (x2 - x1) <= h1:
                # Class 4: a third local minimum must exist when Δ is
                # stuck (otherwise Δ has a common lhs or an lhs marriage).
                third = next(
                    (x for x in ordered if x not in (x1, x2)), None
                )
                if third is None:
                    raise AssertionError(
                        f"class-4 FD set {fds} with only two local minima; "
                        "it should have been simplifiable"
                    )
                return HardnessWitness(
                    4, x1, x2, third, "Δ_{AB↔AC↔BC}", "Lemma A.16"
                )
    raise AssertionError(f"no class matched for stuck FD set {fds}")


def classify(fds: FDSet) -> DichotomyResult:
    """Full dichotomy classification of an FD set (Theorem 3.4).

    Runs Algorithm 2, and on failure derives the hardness witness for the
    stuck residual.  Note that the success/failure of ``OptSRepair``
    depends only on Δ, never on the table.
    """
    steps, residual = _simplify(fds)
    tractable = residual.is_trivial
    witness = None if tractable else classify_stuck(residual)
    return DichotomyResult(
        fds=fds,
        tractable=tractable,
        steps=steps,
        residual=residual,
        witness=witness,
    )
