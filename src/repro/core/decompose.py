"""Conflict-graph decomposition: per-component sub-instances + portfolio.

Conflict graphs of real dirty tables decompose into many small
independent components (the per-component dispatch of Section 4 already
exploits this for attribute-disjoint Δ; here we exploit it for *any* Δ,
at the instance level).  Since consistency of a subset is exactly
independence in the conflict graph, and FD violation is a pairwise
property, the two repair problems decompose along connected components:

* **S-repairs** — a minimum-weight vertex cover splits exactly into
  per-component minimum covers, so the union of per-component optimal
  S-repairs (plus every conflict-free tuple, kept verbatim) is a global
  optimal S-repair, and per-component distances add up.
* **U-repairs** — the restriction of a consistent update to a component
  is a consistent update of the component's sub-table, so per-component
  optimal distances sum to at most the global optimum; the merge is
  re-checked globally because updates drawing on the active domain can,
  in rare cases, collide across components (callers fall back to the
  global path when that happens — see :func:`repro.exec.decomposed_u_repair`).

:func:`decompose` extracts the components from a table's (cached or
prebuilt) :class:`~repro.core.conflict_index.ConflictIndex` and projects
per-component sub-tables (via the trusted fast-path
:meth:`~repro.core.table.Table.subset` constructor) and sub-indexes (via
:meth:`~repro.core.conflict_index.ConflictIndex.project` — no
re-bucketing).  Conflict-free tuples never enter any solver; they are
carried through verbatim by :meth:`Decomposition.merge_kept` /
:meth:`Decomposition.merge_updates`.

The **portfolio policy** (:func:`plan_s_method`) picks a per-component
S-repair method: the ``OptSRepair`` dichotomy recursion when Δ permits,
exact vertex cover when the component is small enough
(:data:`EXACT_COMPONENT_THRESHOLD`), and the Bar-Yehuda–Even
2-approximation otherwise.  The same threshold is the single source of
truth for :func:`repro.pipeline.clean`'s exact-vs-approx decision and
for the exact per-component brackets of :func:`repro.pipeline.assess`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .conflict_index import ConflictIndex
from .fd import FDSet
from .table import Table, TupleId

__all__ = [
    "DEFAULT_NODE_LIMIT",
    "DIFFICULTY_UNIT_COST_S",
    "EXACT_COMPONENT_THRESHOLD",
    "Component",
    "ComponentFeatures",
    "ComponentPlan",
    "Decomposition",
    "PlanDefaults",
    "component_features",
    "decompose",
    "plan_s_method",
    "plan_schedule",
    "polynomial_bracket",
    "predict_difficulty",
    "resolve_plan_defaults",
]

#: Component-size boundary between exact and approximate S-repair on the
#: APX-hard side of the dichotomy.  At or below the threshold the exact
#: vertex-cover branch & bound is run (empirically instantaneous on
#: conflict components of this size — the matching lower bound prunes
#: hard); above it the Bar-Yehuda–Even 2-approximation takes over.  The
#: historical value, 64, was the single-word bitmask kernel's width; the
#: multi-word :class:`~repro.core.kernel.BitsetVC` solves well past it
#: with the same decision-for-decision mirror, so the default boundary
#: now sits at 128 — a 100k-tuple table whose conflicts form 100-tuple
#: clusters is solved *exactly*, where the old boundary settled for
#: ratio 2.  Raise it further (``exact_threshold=`` /
#: ``--exact-threshold``) up to
#: :data:`~repro.core.kernel.MAX_BITMASK_VERTICES` when paired with an
#: ``exact_budget_s`` escape hatch for pathological dense components.
#: Shared by the portfolio policy (:func:`plan_s_method`),
#: :func:`repro.pipeline.clean`, and the exact per-component brackets of
#: :func:`repro.pipeline.assess`.
EXACT_COMPONENT_THRESHOLD = 128

#: Branch & bound node budget per exact solve — the single default the
#: CLI, :func:`repro.pipeline.clean`, :class:`repro.session.RepairSession`
#: and the worker pool all resolve through :func:`resolve_plan_defaults`.
DEFAULT_NODE_LIMIT = 2000

#: Seconds one unit of :func:`predict_difficulty` is predicted to cost.
#: Calibrated on the ``bench_portfolio`` mixed family: dense hard
#: tangles (~100 vertices, density ~0.15, gap_rel ~0.6) sit at
#: difficulty ~2e4–1e5 and measure ~0.25–2+ s in the branch & bound on
#: stock hardware, i.e. ~1e-5–6e-5 s/unit; easier probes measure
#: ~2e-6–2e-5.  The global scheduler only needs the predictor to *rank*
#: components and to ration the budget to the right order of magnitude,
#: so this geometric-middle constant tolerates an order of magnitude of
#: hardware drift.
DIFFICULTY_UNIT_COST_S = 2e-5


@dataclass
class Component:
    """One connected component of the conflict graph.

    ``ids`` are the member tuple identifiers in table order; ``table`` is
    the projected sub-table (trusted fast-path construction, shares row
    storage with the parent); ``index`` is the projected sub-index,
    seeded into ``table``'s derived cache so per-component solvers reuse
    it for free.
    """

    ordinal: int
    ids: Tuple[TupleId, ...]
    table: Table
    index: ConflictIndex

    @property
    def size(self) -> int:
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        return self.index.num_edges

    def code_payload(self, codec) -> Tuple[Tuple[TupleId, ...], Tuple, Tuple[float, ...]]:
        """The component as column-code arrays: ``(ids, columns, weights)``.

        ``columns[j]`` holds column *j*'s integer codes for the member
        rows (member order).  This is what the process pool ships
        instead of a sub-``Table`` of arbitrary values: codes preserve
        the value equality pattern and the first-seen order — all any
        S-repair solver observes — at a fraction of the pickle size.
        The parent-side merge works on the real table, so nothing ever
        decodes.
        """
        row_index = codec.row_index
        rows = [row_index[tid] for tid in self.ids]
        columns = tuple(
            tuple(column[i] for i in rows) for column in codec.columns
        )
        weights = tuple(codec.weights[i] for i in rows)
        return self.ids, columns, weights


@dataclass
class Decomposition:
    """A table split into conflict components plus its conflict-free rest.

    ``components`` are ordered by the table position of their earliest
    member; ``consistent_ids`` are the tuples in no conflict at all.
    Every merge helper reassembles results in canonical table order, so
    decomposed repairs are deterministic regardless of how (or where) the
    per-component solves ran.
    """

    table: Table
    fds: FDSet
    index: ConflictIndex
    components: List[Component]
    consistent_ids: Tuple[TupleId, ...]

    @property
    def component_count(self) -> int:
        return len(self.components)

    @property
    def largest_component(self) -> int:
        return max((c.size for c in self.components), default=0)

    def conflicting_tuple_count(self) -> int:
        return sum(c.size for c in self.components)

    def plan_methods(
        self,
        tractable: bool,
        guarantee: str = "best",
        threshold: int = EXACT_COMPONENT_THRESHOLD,
    ) -> List[str]:
        """The portfolio plan: one :func:`plan_s_method` verdict per
        component, in component order.

        Shared by :func:`repro.pipeline.clean` and the streaming
        :class:`repro.session.RepairSession`, so both pick byte-identical
        method mixes for the same instance (the session's cache keys
        include the planned method, making cached and fresh solves
        interchangeable).
        """
        return [
            plan_s_method(c.size, tractable, guarantee, threshold)
            for c in self.components
        ]

    def plan_schedule(
        self,
        tractable: bool,
        guarantee: str = "best",
        threshold: int = EXACT_COMPONENT_THRESHOLD,
        exact_budget_s: Optional[float] = None,
        per_component_budget_s: Optional[float] = None,
        node_limit: int = DEFAULT_NODE_LIMIT,
        unit_cost_s: Optional[float] = None,
    ) -> List["ComponentPlan"]:
        """The difficulty-driven schedule for this decomposition — see
        the module-level :func:`plan_schedule`.  Shared by
        :func:`repro.pipeline.clean`, :func:`repro.pipeline.assess`, and
        the streaming :class:`repro.session.RepairSession`, so all three
        compute byte-identical plans for the same instance and knobs."""
        return plan_schedule(
            self.components,
            tractable,
            guarantee,
            threshold,
            exact_budget_s,
            per_component_budget_s,
            node_limit,
            unit_cost_s,
        )

    def merge_kept(self, kept_per_component: Sequence[Iterable[TupleId]]) -> Table:
        """Stitch per-component S-repairs back together.

        *kept_per_component* holds, per component (in order), the
        identifiers the component repair kept.  Conflict-free tuples are
        added verbatim; the result is a sub-table in table order.
        """
        kept: Set[TupleId] = set(self.consistent_ids)
        for ids in kept_per_component:
            kept.update(ids)
        return self.table.subset(kept)

    def merge_updates(
        self, updates_per_component: Sequence[Mapping[Tuple[TupleId, str], object]]
    ) -> Table:
        """Compose per-component cell updates into one update of the
        parent table (conflict-free tuples stay untouched)."""
        merged: Dict[Tuple[TupleId, str], object] = {}
        for updates in updates_per_component:
            merged.update(updates)
        return self.table.with_updates(merged)


def decompose(
    table: Table, fds: FDSet, index: Optional[ConflictIndex] = None
) -> Decomposition:
    """Split *table* into the connected components of its conflict graph.

    Costs one shared :class:`ConflictIndex` build plus O(conflicting
    tuples) for the projections; the sub-tables are views sharing row
    storage with the parent.  A consistent table decomposes into zero
    components.  The result is memoised on the table alongside the
    index (tables are immutable), so assessment and repair of the same
    ``(table, Δ)`` decompose once; like the cached index, the cached
    components (and their sub-indexes) are pristine and shared — copy
    before mutating.
    """
    if index is None:
        index = table.conflict_index(fds)
    else:
        index.ensure_for(fds, table)
    cache_key = ("decomposition", fds)
    cached = table._cache.get(cache_key)
    if cached is not None and cached.index is index:
        return cached
    components: List[Component] = []
    for ordinal, ids in enumerate(index.components()):
        subtable = table.subset(ids)
        subindex = index.project(subtable, set(ids))
        components.append(Component(ordinal, tuple(ids), subtable, subindex))
    decomposition = Decomposition(
        table=table,
        fds=fds,
        index=index,
        components=components,
        consistent_ids=tuple(index.consistent_ids()),
    )
    table._cache[cache_key] = decomposition
    return decomposition


def plan_s_method(
    size: int,
    tractable: bool,
    guarantee: str = "best",
    threshold: int = EXACT_COMPONENT_THRESHOLD,
) -> str:
    """The portfolio policy: pick an S-repair method for one component.

    * ``"dichotomy"`` — the polynomial ``OptSRepair`` recursion, whenever
      Δ is on the tractable side (optimal at any component size);
    * ``"exact"`` — exact vertex-cover branch & bound, for hard Δ on
      components at or below *threshold* (and at any size under the
      ``"optimal"`` guarantee, where the caller insists);
    * ``"approx"`` — Bar-Yehuda–Even, ratio 2, for everything else, and
      for every component under the ``"fast"`` guarantee (which promises
      polynomial time regardless of instance shape).
    """
    if guarantee == "fast":
        return "approx"
    if tractable:
        return "dichotomy"
    if guarantee == "optimal" or size <= threshold:
        return "exact"
    return "approx"


# ---------------------------------------------------------------------------
# Difficulty-driven scheduling: features, predictor, plans
# ---------------------------------------------------------------------------

def polynomial_bracket(index: ConflictIndex, table: Table) -> Tuple[float, float]:
    """Polynomial ``[matching, Bar-Yehuda–Even]`` bracket of one
    (sub-)index — the admissible cost bounds every assessment and
    difficulty feature computation starts from.  Runs array-native on
    kernel-backed indexes (mask/CSR fast paths inside the bound
    computations)."""
    from ..graphs.vertex_cover import bar_yehuda_even, maximalize_independent_set

    lower = index.matching_lower_bound()
    if index.num_edges:
        cover = bar_yehuda_even(index)
        kept = {tid for tid in table.ids() if tid not in cover}
        kept = maximalize_independent_set(index, kept)
        upper = table.total_weight() - table.total_weight(kept)
    else:
        upper = 0.0
    return lower, upper


@dataclass(frozen=True)
class ComponentFeatures:
    """Difficulty features of one conflict component.

    All array-native reads: size and edge count from the sub-index,
    weight spread from the weight array, and the polynomial
    ``[matching, BYE]`` bracket via :func:`polynomial_bracket` (mask-view
    fast paths on kernel-backed components).  The bracket *is* a feature
    — the matching-vs-BYE gap is the strongest predictor of branch &
    bound blowup (a tight bracket prunes the search at the root) — so
    computing features subsumes the polynomial assessment of the
    component and callers never pay for both.
    """

    size: int
    edges: int
    density: float
    weight_spread: float
    matching: float
    upper: float

    @property
    def gap(self) -> float:
        """Absolute matching-vs-BYE gap (0 ⇒ the bracket is tight and
        exact search is free)."""
        return self.upper - self.matching

    @property
    def gap_rel(self) -> float:
        """The gap as a fraction of the upper bound, in [0, 1]."""
        return self.gap / self.upper if self.upper > 0 else 0.0


def component_features(component: Component) -> ComponentFeatures:
    """Compute :class:`ComponentFeatures` for one component."""
    index = component.index
    n = component.size
    m = index.num_edges
    density = (2.0 * m) / (n * (n - 1)) if n > 1 else 0.0
    weights = list(component.table.weights().values())
    w_min = min(weights)
    w_max = max(weights)
    spread = w_max / w_min if w_min > 0 else 1.0
    matching, upper = polynomial_bracket(index, component.table)
    return ComponentFeatures(
        size=n,
        edges=m,
        density=density,
        weight_spread=spread,
        matching=matching,
        upper=upper,
    )


def predict_difficulty(features: ComponentFeatures) -> float:
    """Predicted exact-solve difficulty of a component, unitless.

    The model: branch & bound cost grows exponentially in how much of
    the component the matching prune *fails* to certify — captured by
    ``density · size · gap_rel`` in the exponent — scaled by the linear
    per-node work (``size``) and dampened pruning under heterogeneous
    weights (``√weight_spread``).  A component with no edges, or whose
    polynomial bracket is already tight, costs nothing: the solver
    certifies it at the root.  The exponent is clamped so a pathological
    feature combination yields a huge finite number that sorts last
    instead of overflowing.

    Absolute scale is calibrated by :data:`DIFFICULTY_UNIT_COST_S`; the
    scheduler's correctness only needs the *ordering* to be right, which
    is what ``bench_portfolio``'s mixed easy-large/hard-small family
    gates.
    """
    if features.edges == 0 or features.gap <= 0.0:
        return 0.0
    exponent = min(features.density * features.size * features.gap_rel, 40.0)
    return features.size * math.sqrt(features.weight_spread) * 2.0 ** exponent


@dataclass(frozen=True)
class ComponentPlan:
    """One component's scheduled solve: the method, the difficulty
    evidence behind it, and the wall-clock slice it ships with.

    ``difficulty``/``predicted_s`` are ``None`` on the legacy
    (per-component budget) path, where no features are computed;
    ``downgraded`` marks a component the global scheduler *would* have
    solved exactly by size but left approximate because the budget ran
    out — exactly the components whose brackets the LP bound tightens.
    ``budget_s`` is the per-solve wall-clock ceiling shipped with the
    task (serial and pool paths read the same plan, which is what keeps
    them byte-identical: the plan is pure arithmetic over predictions,
    never wall-clock measurements).  ``features`` carries the computed
    :class:`ComponentFeatures` when the scheduler computed them — the
    polynomial bracket is among them, so assessment never brackets the
    same component twice.
    """

    method: str
    difficulty: Optional[float] = None
    predicted_s: Optional[float] = None
    budget_s: Optional[float] = None
    downgraded: bool = False
    features: Optional[ComponentFeatures] = None


@dataclass(frozen=True)
class PlanDefaults:
    """Resolved scheduling knobs — one source of truth for the CLI,
    :func:`repro.pipeline.clean`/`assess`, the streaming session, and
    the worker pool (see :func:`resolve_plan_defaults`)."""

    threshold: int
    node_limit: int
    exact_budget_s: Optional[float]
    per_component_budget_s: Optional[float]
    unit_cost_s: float = DIFFICULTY_UNIT_COST_S


def resolve_plan_defaults(
    exact_threshold: Optional[int] = None,
    node_limit: Optional[int] = None,
    exact_budget_s: Optional[float] = None,
    per_component_budget_s: Optional[float] = None,
    unit_cost_s: Optional[float] = None,
) -> PlanDefaults:
    """Resolve the portfolio knobs to their effective values.

    ``None`` means "the library default": *exact_threshold* →
    :data:`EXACT_COMPONENT_THRESHOLD`, *node_limit* →
    :data:`DEFAULT_NODE_LIMIT`.  The budgets stay ``None`` when unset
    (= unlimited); *exact_budget_s* is the **global** budget of the
    difficulty scheduler, *per_component_budget_s* the historical
    per-solve ceiling — both may be set, in which case every exact slice
    is additionally capped per component.  *unit_cost_s* overrides the
    hand-calibrated :data:`DIFFICULTY_UNIT_COST_S` (``None`` keeps it)
    — how a machine-specific ``fdrepair calibrate`` fit is deployed
    without monkeypatching the module constant.  Centralised here so
    ``session.py``, ``exec.py``, ``pipeline.py`` and the CLI can never
    drift on what an omitted knob means.
    """
    return PlanDefaults(
        threshold=(
            EXACT_COMPONENT_THRESHOLD
            if exact_threshold is None
            else exact_threshold
        ),
        node_limit=DEFAULT_NODE_LIMIT if node_limit is None else node_limit,
        exact_budget_s=exact_budget_s,
        per_component_budget_s=per_component_budget_s,
        unit_cost_s=(
            DIFFICULTY_UNIT_COST_S if unit_cost_s is None else unit_cost_s
        ),
    )


def plan_schedule(
    components: Sequence[Component],
    tractable: bool,
    guarantee: str = "best",
    threshold: int = EXACT_COMPONENT_THRESHOLD,
    exact_budget_s: Optional[float] = None,
    per_component_budget_s: Optional[float] = None,
    node_limit: int = DEFAULT_NODE_LIMIT,
    unit_cost_s: Optional[float] = None,
) -> List[ComponentPlan]:
    """The difficulty-driven successor of per-component
    :func:`plan_s_method`: one :class:`ComponentPlan` per component, in
    component order.

    Without a global budget (*exact_budget_s* ``None``) this reproduces
    the historical policy exactly — per-component
    :func:`plan_s_method` with *per_component_budget_s* as each exact
    solve's ceiling, and **no feature computation at all** (streaming
    sessions plan on every delta; the legacy path must stay O(1) per
    component).

    With a global budget, hard-Δ components under ``guarantee="best"``
    are scheduled by ascending :func:`predict_difficulty`: the scheduler
    walks the eligible components easiest-first, grants ``"exact"``
    while the *predicted* cumulative cost fits the budget, and
    downgrades the residual tail to ``"approx"`` (``downgraded=True``).
    Eligibility is feasibility, not the size threshold — any component
    the exact solvers accept (≤ ``min(node_limit, MAX_BITMASK_VERTICES)``
    vertices) may be granted exactness, which is the point: many easy
    *large* components beat one hard small one.  Each granted solve
    ships a wall-clock slice of ``budget − predicted spend so far``
    (capped by *per_component_budget_s* when given) as its hard ceiling.
    The plan is pure arithmetic over predictions — no wall-clock reads —
    so serial and worker-pool runs of the same instance compute the
    identical plan, and a zero budget deterministically plans every
    hard-Δ component approximate.

    ``guarantee="optimal"`` plans every component exact with the full
    budget as each slice (the exact solver raises on expiry, true to
    "provably optimal or fail"); ``"fast"`` plans every component
    approximate; tractable Δ plans the polynomial dichotomy recursion
    everywhere (budget-irrelevant).
    """
    if guarantee == "fast":
        return [ComponentPlan("approx") for _ in components]
    if tractable:
        return [ComponentPlan("dichotomy") for _ in components]
    if guarantee == "optimal":
        slice_s = (
            exact_budget_s if exact_budget_s is not None
            else per_component_budget_s
        )
        return [
            ComponentPlan("exact", budget_s=slice_s) for _ in components
        ]
    if exact_budget_s is None:
        return [
            ComponentPlan(
                plan_s_method(c.size, tractable, guarantee, threshold),
                budget_s=per_component_budget_s,
            )
            for c in components
        ]
    # Global budget: rank by predicted difficulty, grant exactness
    # easiest-first while the predicted spend fits.
    from . import kernel as _kernel

    ceiling = min(node_limit, _kernel.MAX_BITMASK_VERTICES)
    unit = DIFFICULTY_UNIT_COST_S if unit_cost_s is None else unit_cost_s
    plans: List[Optional[ComponentPlan]] = [None] * len(components)
    ranked: List[Tuple[float, int, float, ComponentFeatures]] = []
    for i, component in enumerate(components):
        if component.size > ceiling:
            plans[i] = ComponentPlan("approx", downgraded=False)
            continue
        feats = component_features(component)
        difficulty = predict_difficulty(feats)
        ranked.append((difficulty, i, difficulty * unit, feats))
    ranked.sort(key=lambda entry: (entry[0], entry[1]))
    spent = 0.0
    for difficulty, i, predicted, feats in ranked:
        if exact_budget_s > 0 and spent + predicted <= exact_budget_s:
            slice_s = exact_budget_s - spent
            if per_component_budget_s is not None:
                slice_s = min(slice_s, per_component_budget_s)
            plans[i] = ComponentPlan(
                "exact",
                difficulty=difficulty,
                predicted_s=predicted,
                budget_s=slice_s,
                features=feats,
            )
            spent += predicted
        else:
            plans[i] = ComponentPlan(
                "approx",
                difficulty=difficulty,
                predicted_s=predicted,
                downgraded=True,
                features=feats,
            )
    return plans  # every slot filled: ceiling branch or ranked loop
