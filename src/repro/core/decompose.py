"""Conflict-graph decomposition: per-component sub-instances + portfolio.

Conflict graphs of real dirty tables decompose into many small
independent components (the per-component dispatch of Section 4 already
exploits this for attribute-disjoint Δ; here we exploit it for *any* Δ,
at the instance level).  Since consistency of a subset is exactly
independence in the conflict graph, and FD violation is a pairwise
property, the two repair problems decompose along connected components:

* **S-repairs** — a minimum-weight vertex cover splits exactly into
  per-component minimum covers, so the union of per-component optimal
  S-repairs (plus every conflict-free tuple, kept verbatim) is a global
  optimal S-repair, and per-component distances add up.
* **U-repairs** — the restriction of a consistent update to a component
  is a consistent update of the component's sub-table, so per-component
  optimal distances sum to at most the global optimum; the merge is
  re-checked globally because updates drawing on the active domain can,
  in rare cases, collide across components (callers fall back to the
  global path when that happens — see :func:`repro.exec.decomposed_u_repair`).

:func:`decompose` extracts the components from a table's (cached or
prebuilt) :class:`~repro.core.conflict_index.ConflictIndex` and projects
per-component sub-tables (via the trusted fast-path
:meth:`~repro.core.table.Table.subset` constructor) and sub-indexes (via
:meth:`~repro.core.conflict_index.ConflictIndex.project` — no
re-bucketing).  Conflict-free tuples never enter any solver; they are
carried through verbatim by :meth:`Decomposition.merge_kept` /
:meth:`Decomposition.merge_updates`.

The **portfolio policy** (:func:`plan_s_method`) picks a per-component
S-repair method: the ``OptSRepair`` dichotomy recursion when Δ permits,
exact vertex cover when the component is small enough
(:data:`EXACT_COMPONENT_THRESHOLD`), and the Bar-Yehuda–Even
2-approximation otherwise.  The same threshold is the single source of
truth for :func:`repro.pipeline.clean`'s exact-vs-approx decision and
for the exact per-component brackets of :func:`repro.pipeline.assess`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .conflict_index import ConflictIndex
from .fd import FDSet
from .table import Table, TupleId

__all__ = [
    "EXACT_COMPONENT_THRESHOLD",
    "Component",
    "Decomposition",
    "decompose",
    "plan_s_method",
]

#: Component-size boundary between exact and approximate S-repair on the
#: APX-hard side of the dichotomy.  At or below the threshold the exact
#: vertex-cover branch & bound is run (empirically instantaneous on
#: conflict components of this size — the matching lower bound prunes
#: hard); above it the Bar-Yehuda–Even 2-approximation takes over.  The
#: historical value, 64, was the single-word bitmask kernel's width; the
#: multi-word :class:`~repro.core.kernel.BitsetVC` solves well past it
#: with the same decision-for-decision mirror, so the default boundary
#: now sits at 128 — a 100k-tuple table whose conflicts form 100-tuple
#: clusters is solved *exactly*, where the old boundary settled for
#: ratio 2.  Raise it further (``exact_threshold=`` /
#: ``--exact-threshold``) up to
#: :data:`~repro.core.kernel.MAX_BITMASK_VERTICES` when paired with an
#: ``exact_budget_s`` escape hatch for pathological dense components.
#: Shared by the portfolio policy (:func:`plan_s_method`),
#: :func:`repro.pipeline.clean`, and the exact per-component brackets of
#: :func:`repro.pipeline.assess`.
EXACT_COMPONENT_THRESHOLD = 128


@dataclass
class Component:
    """One connected component of the conflict graph.

    ``ids`` are the member tuple identifiers in table order; ``table`` is
    the projected sub-table (trusted fast-path construction, shares row
    storage with the parent); ``index`` is the projected sub-index,
    seeded into ``table``'s derived cache so per-component solvers reuse
    it for free.
    """

    ordinal: int
    ids: Tuple[TupleId, ...]
    table: Table
    index: ConflictIndex

    @property
    def size(self) -> int:
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        return self.index.num_edges

    def code_payload(self, codec) -> Tuple[Tuple[TupleId, ...], Tuple, Tuple[float, ...]]:
        """The component as column-code arrays: ``(ids, columns, weights)``.

        ``columns[j]`` holds column *j*'s integer codes for the member
        rows (member order).  This is what the process pool ships
        instead of a sub-``Table`` of arbitrary values: codes preserve
        the value equality pattern and the first-seen order — all any
        S-repair solver observes — at a fraction of the pickle size.
        The parent-side merge works on the real table, so nothing ever
        decodes.
        """
        row_index = codec.row_index
        rows = [row_index[tid] for tid in self.ids]
        columns = tuple(
            tuple(column[i] for i in rows) for column in codec.columns
        )
        weights = tuple(codec.weights[i] for i in rows)
        return self.ids, columns, weights


@dataclass
class Decomposition:
    """A table split into conflict components plus its conflict-free rest.

    ``components`` are ordered by the table position of their earliest
    member; ``consistent_ids`` are the tuples in no conflict at all.
    Every merge helper reassembles results in canonical table order, so
    decomposed repairs are deterministic regardless of how (or where) the
    per-component solves ran.
    """

    table: Table
    fds: FDSet
    index: ConflictIndex
    components: List[Component]
    consistent_ids: Tuple[TupleId, ...]

    @property
    def component_count(self) -> int:
        return len(self.components)

    @property
    def largest_component(self) -> int:
        return max((c.size for c in self.components), default=0)

    def conflicting_tuple_count(self) -> int:
        return sum(c.size for c in self.components)

    def plan_methods(
        self,
        tractable: bool,
        guarantee: str = "best",
        threshold: int = EXACT_COMPONENT_THRESHOLD,
    ) -> List[str]:
        """The portfolio plan: one :func:`plan_s_method` verdict per
        component, in component order.

        Shared by :func:`repro.pipeline.clean` and the streaming
        :class:`repro.session.RepairSession`, so both pick byte-identical
        method mixes for the same instance (the session's cache keys
        include the planned method, making cached and fresh solves
        interchangeable).
        """
        return [
            plan_s_method(c.size, tractable, guarantee, threshold)
            for c in self.components
        ]

    def merge_kept(self, kept_per_component: Sequence[Iterable[TupleId]]) -> Table:
        """Stitch per-component S-repairs back together.

        *kept_per_component* holds, per component (in order), the
        identifiers the component repair kept.  Conflict-free tuples are
        added verbatim; the result is a sub-table in table order.
        """
        kept: Set[TupleId] = set(self.consistent_ids)
        for ids in kept_per_component:
            kept.update(ids)
        return self.table.subset(kept)

    def merge_updates(
        self, updates_per_component: Sequence[Mapping[Tuple[TupleId, str], object]]
    ) -> Table:
        """Compose per-component cell updates into one update of the
        parent table (conflict-free tuples stay untouched)."""
        merged: Dict[Tuple[TupleId, str], object] = {}
        for updates in updates_per_component:
            merged.update(updates)
        return self.table.with_updates(merged)


def decompose(
    table: Table, fds: FDSet, index: Optional[ConflictIndex] = None
) -> Decomposition:
    """Split *table* into the connected components of its conflict graph.

    Costs one shared :class:`ConflictIndex` build plus O(conflicting
    tuples) for the projections; the sub-tables are views sharing row
    storage with the parent.  A consistent table decomposes into zero
    components.  The result is memoised on the table alongside the
    index (tables are immutable), so assessment and repair of the same
    ``(table, Δ)`` decompose once; like the cached index, the cached
    components (and their sub-indexes) are pristine and shared — copy
    before mutating.
    """
    if index is None:
        index = table.conflict_index(fds)
    else:
        index.ensure_for(fds, table)
    cache_key = ("decomposition", fds)
    cached = table._cache.get(cache_key)
    if cached is not None and cached.index is index:
        return cached
    components: List[Component] = []
    for ordinal, ids in enumerate(index.components()):
        subtable = table.subset(ids)
        subindex = index.project(subtable, set(ids))
        components.append(Component(ordinal, tuple(ids), subtable, subindex))
    decomposition = Decomposition(
        table=table,
        fds=fds,
        index=index,
        components=components,
        consistent_ids=tuple(index.consistent_ids()),
    )
    table._cache[cache_key] = decomposition
    return decomposition


def plan_s_method(
    size: int,
    tractable: bool,
    guarantee: str = "best",
    threshold: int = EXACT_COMPONENT_THRESHOLD,
) -> str:
    """The portfolio policy: pick an S-repair method for one component.

    * ``"dichotomy"`` — the polynomial ``OptSRepair`` recursion, whenever
      Δ is on the tractable side (optimal at any component size);
    * ``"exact"`` — exact vertex-cover branch & bound, for hard Δ on
      components at or below *threshold* (and at any size under the
      ``"optimal"`` guarantee, where the caller insists);
    * ``"approx"`` — Bar-Yehuda–Even, ratio 2, for everything else, and
      for every component under the ``"fast"`` guarantee (which promises
      polynomial time regardless of instance shape).
    """
    if guarantee == "fast":
        return "approx"
    if tractable:
        return "dichotomy"
    if guarantee == "optimal" or size <= threshold:
        return "exact"
    return "approx"
