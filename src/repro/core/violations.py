"""FD violation detection and conflict graphs.

For FDs, consistency is a *pairwise* property: a table satisfies ``X → Y``
iff every pair of tuples agreeing on X agrees on Y.  Consequently a subset
of T is consistent iff it is an independent set of the *conflict graph*
whose nodes are tuple identifiers and whose edges are violating pairs.
This observation powers both the 2-approximation of Proposition 3.3 and
our exact baseline (optimal S-repair = minimum-weight vertex cover).

Violating pairs are enumerated with hash grouping: tuples are bucketed by
their lhs projection, and within a bucket by their rhs projection; pairs
across different rhs buckets of the same lhs bucket are exactly the
violations of that FD.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..graphs.graph import Graph
from .fd import FD, FDSet
from .table import Row, Table, TupleId

__all__ = [
    "violating_pairs",
    "violating_pairs_of_fd",
    "satisfies",
    "conflict_graph",
    "conflicting_ids",
]


def violating_pairs_of_fd(table: Table, fd: FD) -> Iterator[Tuple[TupleId, TupleId]]:
    """Yield each pair of identifiers violating the single FD ``X → Y``.

    Pairs are yielded with the two identifiers in table order, each
    unordered pair exactly once.  Trivial FDs yield nothing.
    """
    if fd.is_trivial:
        return
    lhs_groups = table.group_by(fd.lhs)
    for ids in lhs_groups.values():
        if len(ids) < 2:
            continue
        rhs_buckets: Dict[Row, List[TupleId]] = {}
        for tid in ids:
            rhs_buckets.setdefault(table.project(tid, fd.rhs), []).append(tid)
        if len(rhs_buckets) < 2:
            continue
        buckets = list(rhs_buckets.values())
        for i in range(len(buckets)):
            for j in range(i + 1, len(buckets)):
                for t1 in buckets[i]:
                    for t2 in buckets[j]:
                        yield (t1, t2)


def violating_pairs(
    table: Table, fds: FDSet
) -> Iterator[Tuple[TupleId, TupleId, FD]]:
    """Yield ``(i, j, fd)`` for every FD violation in the table.

    The same pair may be reported once per violated FD; use
    :func:`conflicting_ids` or :func:`conflict_graph` for the deduplicated
    pair set.
    """
    for fd in fds:
        for t1, t2 in violating_pairs_of_fd(table, fd):
            yield t1, t2, fd


def satisfies(table: Table, fds: FDSet) -> bool:
    """``T ⊨ Δ`` — true iff the table has no violating pair."""
    for _ in violating_pairs(table, fds):
        return False
    return True


def conflicting_ids(table: Table, fds: FDSet) -> List[Tuple[TupleId, TupleId]]:
    """The deduplicated list of conflicting identifier pairs.

    Pairs are deduplicated by table position (identifiers may be of
    mixed, unorderable types), which avoids building a frozenset per
    pair — the dominant cost on large dirty tables.
    """
    position = {tid: i for i, tid in enumerate(table.ids())}
    seen = set()
    out: List[Tuple[TupleId, TupleId]] = []
    for t1, t2, _fd in violating_pairs(table, fds):
        p1, p2 = position[t1], position[t2]
        key = (p1, p2) if p1 < p2 else (p2, p1)
        if key not in seen:
            seen.add(key)
            out.append((t1, t2))
    return out


def conflict_graph(table: Table, fds: FDSet) -> Graph:
    """The conflict graph of T under Δ (Proposition 3.3).

    Nodes are tuple identifiers weighted by tuple weight; edges connect
    every pair of tuples that jointly violate some FD.  A subset of T is
    consistent iff its identifiers form an independent set, so the optimal
    S-repair is the complement of a minimum-weight vertex cover.
    """
    g = Graph()
    for tid, _row, weight in table.tuples():
        g.add_node(tid, weight=weight)
    for t1, t2 in conflicting_ids(table, fds):
        g.add_edge(t1, t2)
    return g
