"""FD violation detection and conflict graphs.

For FDs, consistency is a *pairwise* property: a table satisfies ``X → Y``
iff every pair of tuples agreeing on X agrees on Y.  Consequently a subset
of T is consistent iff it is an independent set of the *conflict graph*
whose nodes are tuple identifiers and whose edges are violating pairs.
This observation powers both the 2-approximation of Proposition 3.3 and
our exact baseline (optimal S-repair = minimum-weight vertex cover).

Violating pairs are enumerated with hash grouping: tuples are bucketed by
their lhs projection, and within a bucket by their rhs projection; pairs
across different rhs buckets of the same lhs bucket are exactly the
violations of that FD.

Two access paths coexist:

* the *streaming* generators (:func:`violating_pairs_of_fd`,
  :func:`violating_pairs`) — cheapest when the caller may stop early,
  e.g. :func:`satisfies` on a dirty table;
* the *materialised* :class:`~repro.core.conflict_index.ConflictIndex`
  (cached per table via :meth:`Table.conflict_index`) — what
  :func:`conflict_graph` and :func:`conflicting_ids` are served from, so
  repeated calls over the same ``(table, Δ)`` pay the bucketing once.
  All three entry points accept a prebuilt ``index`` for callers doing
  their own index management (e.g. batched repair).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..graphs.graph import Graph
from .conflict_index import ConflictIndex
from .fd import FD, FDSet
from .table import Row, Table, TupleId

__all__ = [
    "violating_pairs",
    "violating_pairs_of_fd",
    "satisfies",
    "conflict_graph",
    "conflicting_ids",
]


def violating_pairs_of_fd(table: Table, fd: FD) -> Iterator[Tuple[TupleId, TupleId]]:
    """Yield each pair of identifiers violating the single FD ``X → Y``.

    Pairs are yielded with the two identifiers in table order, each
    unordered pair exactly once.  Trivial FDs yield nothing.
    """
    if fd.is_trivial:
        return
    lhs_groups = table.group_by(fd.lhs)
    for ids in lhs_groups.values():
        if len(ids) < 2:
            continue
        rhs_buckets: Dict[Row, List[TupleId]] = {}
        for tid in ids:
            rhs_buckets.setdefault(table.project(tid, fd.rhs), []).append(tid)
        if len(rhs_buckets) < 2:
            continue
        buckets = list(rhs_buckets.values())
        for i in range(len(buckets)):
            for j in range(i + 1, len(buckets)):
                for t1 in buckets[i]:
                    for t2 in buckets[j]:
                        yield (t1, t2)


def violating_pairs(
    table: Table, fds: FDSet
) -> Iterator[Tuple[TupleId, TupleId, FD]]:
    """Yield ``(i, j, fd)`` for every FD violation in the table.

    The same pair may be reported once per violated FD; use
    :func:`conflicting_ids` or :func:`conflict_graph` for the deduplicated
    pair set.
    """
    for fd in fds:
        for t1, t2 in violating_pairs_of_fd(table, fd):
            yield t1, t2, fd


def satisfies(
    table: Table, fds: FDSet, index: Optional[ConflictIndex] = None
) -> bool:
    """``T ⊨ Δ`` — true iff the table has no violating pair.

    Streams with early exit by default; when a prebuilt *index* is
    passed (or one is already cached on the table), the answer is read
    off the materialised conflict count instead.
    """
    if index is not None:
        return index.ensure_for(fds, table).is_consistent()
    cached = table.cached_conflict_index(fds)
    if cached is not None:
        return cached.is_consistent()
    for _ in violating_pairs(table, fds):
        return False
    return True


def conflicting_ids(
    table: Table, fds: FDSet, index: Optional[ConflictIndex] = None
) -> List[Tuple[TupleId, TupleId]]:
    """The deduplicated list of conflicting identifier pairs.

    Served from a :class:`ConflictIndex`, whose adjacency sets
    deduplicate pairs violating several FDs; pairs come out ordered by
    table position, as the streaming implementation produced them.  An
    index already cached on the table (or passed in) is reused; a one-off
    call without either builds a *transient* index — caching is an
    explicit opt-in via :meth:`Table.conflict_index`, so probing one
    table against many candidate FD sets does not accumulate retained
    indexes.
    """
    if index is None:
        index = table.cached_conflict_index(fds) or ConflictIndex(table, fds)
    else:
        index.ensure_for(fds, table)
    return index.conflicting_ids()


def conflict_graph(
    table: Table, fds: FDSet, index: Optional[ConflictIndex] = None
) -> Graph:
    """The conflict graph of T under Δ (Proposition 3.3).

    Nodes are tuple identifiers weighted by tuple weight; edges connect
    every pair of tuples that jointly violate some FD.  A subset of T is
    consistent iff its identifiers form an independent set, so the optimal
    S-repair is the complement of a minimum-weight vertex cover.

    The graph is materialised from the table's cached
    :class:`ConflictIndex` when one exists (or the one passed in); a
    one-off call without either builds a transient index, leaving
    caching an explicit opt-in (see :func:`conflicting_ids`).  The
    returned ``Graph`` is a fresh mutable copy each time.
    """
    if index is None:
        index = table.cached_conflict_index(fds) or ConflictIndex(table, fds)
    else:
        index.ensure_for(fds, table)
    return index.graph()
