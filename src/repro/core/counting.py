"""Counting and enumerating subset repairs (the chain dichotomy).

Section 2.2 of the paper recalls the result of Livshits & Kimelfeld
(PODS 2017, reference [26]): *chain* FD sets are exactly the FD sets for
which subset repairs can be counted in polynomial time (assuming
P ≠ #P).  Chain FD sets resurface throughout the paper (Corollaries 3.6
and 4.8), so this module implements both sides of that companion
dichotomy as a substrate:

* :func:`count_s_repairs` — polynomial counting for chain FD sets.
  After stripping trivial FDs, a chain FD set always has a consensus FD
  or a common lhs, giving a sum/product recursion over blocks:

  - **common lhs A** — blocks never conflict, so maximal consistent
    subsets compose blockwise: the count is the *product* of the block
    counts under ``Δ − A``;
  - **consensus ∅ → A** — every nonempty consistent subset lives in one
    A-block and maximality is within the block: the count is the *sum*
    of the block counts under ``Δ − A``.

* :func:`enumerate_s_repairs` — the same recursion, yielding the actual
  repairs (their number can be exponential; the *counting* is what is
  polynomial).
* :func:`brute_force_count_s_repairs` — baseline via maximal independent
  sets of the conflict graph, valid for **every** FD set (worst-case
  exponential); used to cross-validate the chain recursion and to expose
  the non-chain cases (e.g. the lhs-marriage set ``{A→B, B→A}`` is
  *tractable for optimal S-repairs* in this paper's dichotomy, yet
  counting its repairs is #P-hard by [26] — the two dichotomies do not
  coincide).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..graphs.mis import maximal_independent_sets
from .fd import FDSet
from .table import Table
from .violations import conflict_graph

__all__ = [
    "NotChainError",
    "count_s_repairs",
    "enumerate_s_repairs",
    "brute_force_count_s_repairs",
]


class NotChainError(Exception):
    """Raised when the polynomial counting recursion is asked about a
    non-chain FD set (counting is then #P-hard by [26])."""


def _prepare(fds: FDSet) -> FDSet:
    normalised = fds.with_singleton_rhs().without_trivial()
    if not normalised.is_chain:
        raise NotChainError(
            f"{fds} is not a chain FD set; subset-repair counting is "
            "#P-hard (Livshits & Kimelfeld 2017) — use "
            "brute_force_count_s_repairs on small instances"
        )
    return normalised


def count_s_repairs(table: Table, fds: FDSet) -> int:
    """The number of subset repairs of *table* under a chain FD set.

    Polynomial in |T| (the recursion visits each tuple once per FD).
    Raises :class:`NotChainError` off the chain class.
    """
    return _count(_prepare(fds), table)


def _count(fds: FDSet, table: Table) -> int:
    fds = fds.without_trivial()
    if fds.is_trivial:
        return 1  # T itself is the unique repair
    if not len(table):
        return 1  # the empty subset is the unique (maximal) repair
    consensus = fds.consensus_fds()
    if consensus:
        (attr,) = tuple(consensus[0].rhs)
        reduced = fds.minus((attr,))
        return sum(
            _count(reduced, table.subset(ids))
            for ids in table.group_by((attr,)).values()
        )
    common = fds.common_lhs()
    if common:
        attr = min(sorted(common))
        reduced = fds.minus((attr,))
        product = 1
        for ids in table.group_by((attr,)).values():
            product *= _count(reduced, table.subset(ids))
        return product
    raise AssertionError(
        "chain FD sets always expose a consensus FD or a common lhs"
    )


def enumerate_s_repairs(table: Table, fds: FDSet) -> Iterator[Table]:
    """Yield every subset repair of *table* under a chain FD set.

    Output-sensitive: the number of repairs can be exponential even when
    counting is polynomial.
    """
    yield from _enumerate(_prepare(fds), table)


def _enumerate(fds: FDSet, table: Table) -> Iterator[Table]:
    fds = fds.without_trivial()
    if fds.is_trivial:
        yield table
        return
    if not len(table):
        yield table
        return
    consensus = fds.consensus_fds()
    if consensus:
        (attr,) = tuple(consensus[0].rhs)
        reduced = fds.minus((attr,))
        for ids in table.group_by((attr,)).values():
            yield from _enumerate(reduced, table.subset(ids))
        return
    common = fds.common_lhs()
    if common:
        attr = min(sorted(common))
        reduced = fds.minus((attr,))
        blocks = [
            list(_enumerate(reduced, table.subset(ids)))
            for ids in table.group_by((attr,)).values()
        ]
        yield from _cross_unions(blocks, 0, None)
        return
    raise AssertionError(
        "chain FD sets always expose a consensus FD or a common lhs"
    )


def _cross_unions(
    blocks: List[List[Table]], position: int, acc: Optional[Table]
) -> Iterator[Table]:
    if position == len(blocks):
        if acc is not None:
            yield acc
        return
    for choice in blocks[position]:
        combined = choice if acc is None else acc.union(choice)
        yield from _cross_unions(blocks, position + 1, combined)


def brute_force_count_s_repairs(
    table: Table, fds: FDSet, max_tuples: int = 18
) -> int:
    """Count subset repairs via maximal independent sets (any FD set).

    Subset repairs are exactly the maximal independent sets of the
    conflict graph, so Bron–Kerbosch enumeration counts them —
    exponentially in the worst case, hence the *max_tuples* guard.
    """
    if len(table) > max_tuples:
        raise ValueError(
            f"brute force limited to {max_tuples} tuples, got {len(table)}"
        )
    graph = conflict_graph(table, fds.with_singleton_rhs().without_trivial())
    return sum(1 for _ in maximal_independent_sets(graph))
