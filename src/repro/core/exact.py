"""Exact (worst-case exponential) baselines for both repair problems.

These solvers make the paper's claims *testable*: on the tractable side we
cross-check ``OptSRepair`` against them, and on the APX-complete side they
provide the optimum against which approximation ratios are measured.

* :func:`exact_s_repair` — optimal S-repair for **any** Δ.  For FDs,
  consistency is pairwise, so a subset is consistent iff it is an
  independent set of the conflict graph; the optimal S-repair is the
  complement of a minimum-weight vertex cover, which we solve exactly by
  branch & bound (:mod:`repro.graphs.vertex_cover`).  This is the same
  reduction the paper uses for Proposition 3.3, run to optimality.
* :func:`brute_force_s_repair` — subset enumeration, for sanity checks on
  very small tables.
* :func:`exact_u_repair` — optimal U-repair by iterative deepening on the
  number of changed cells.  Candidate values for a changed cell are the
  attribute's active domain plus ``d`` fresh labelled nulls when at most
  ``d`` cells change; since FD satisfaction sees only the equality pattern
  of values, this candidate set preserves optimality.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graphs.vertex_cover import ExactBudgetExceeded, exact_min_weight_vertex_cover
from . import kernel as _kernel
from .conflict_index import ConflictIndex
from .fd import FDSet
from .table import FreshValue, Table, TupleId, Value
from .violations import satisfies

__all__ = [
    "exact_s_repair",
    "exact_cover_of_index",
    "brute_force_s_repair",
    "exact_u_repair",
    "exact_u_repair_exhaustive",
    "ExactBudgetExceeded",
    "ExactSearchLimit",
]


class ExactSearchLimit(Exception):
    """Raised when an exact search would exceed its configured budget."""


def exact_cover_of_index(
    index: ConflictIndex,
    node_limit: int = 2000,
    budget_s: Optional[float] = None,
) -> List[TupleId]:
    """Exact minimum-weight vertex cover of a live index, in table order.

    The dispatch point of the exact portfolio method: a kernel-backed
    index of at most :data:`~repro.core.kernel.MAX_BITMASK_VERTICES`
    tuples is solved by the memoised multi-word bitset branch & bound
    (:class:`~repro.core.kernel.BitsetVC` — no ``Graph``
    materialisation, no per-branch graph copies, components well past 64
    vertices included); anything else runs the graph-based reference.
    The bitset solver mirrors the reference decision for decision, so
    the two return the *identical* cover — returned as a table-ordered
    list either way, keeping every downstream float summation
    order-canonical.

    *budget_s* bounds the wall-clock of either solver; on expiry
    :class:`~repro.graphs.vertex_cover.ExactBudgetExceeded` propagates
    so callers can fall back to the polynomial bounds.
    """
    if (
        index._use_kernel
        and len(index) <= node_limit
        and len(index) <= _kernel.MAX_BITMASK_VERTICES
    ):
        return _kernel.exact_cover_ids(index, budget_s=budget_s)
    cover = exact_min_weight_vertex_cover(
        index.graph(), node_limit=node_limit, budget_s=budget_s
    )
    return [tid for tid in index.ids() if tid in cover]


def exact_s_repair(
    table: Table,
    fds: FDSet,
    node_limit: int = 2000,
    index: Optional[ConflictIndex] = None,
    decomposed: bool = False,
    parallel: Optional[int] = None,
    exact_budget_s: Optional[float] = None,
) -> Table:
    """Optimal S-repair via exact minimum-weight vertex cover.

    Works for every FD set; exponential in the conflict-graph size in the
    worst case but very effective on the sparse conflict graphs produced
    by realistic dirtiness levels.  The cover comes from
    :func:`exact_cover_of_index` over the cached (or prebuilt)
    :class:`ConflictIndex`: the bitmask kernel on small kernel-backed
    instances, the graph-based branch & bound beyond.

    ``decomposed=True`` (implied by ``parallel``) runs the branch & bound
    per conflict component — ``node_limit`` then guards each *component*
    rather than the whole table, so instances far beyond the global limit
    are solved exactly as long as every component fits, optionally on
    ``parallel`` worker processes.
    """
    if decomposed or (parallel and parallel > 1):
        from ..exec import decomposed_s_repair  # deferred: exec imports us

        return decomposed_s_repair(
            table,
            fds,
            method="exact",
            parallel=parallel,
            index=index,
            node_limit=node_limit,
            budget_s=exact_budget_s,
        ).repair
    if index is None:
        index = table.conflict_index(fds)
    else:
        index.ensure_for(fds, table)
    cover = set(
        exact_cover_of_index(index, node_limit=node_limit, budget_s=exact_budget_s)
    )
    keep = [tid for tid in table.ids() if tid not in cover]
    return table.subset(keep)


def brute_force_s_repair(table: Table, fds: FDSet, max_tuples: int = 20) -> Table:
    """Optimal S-repair by enumerating all subsets (tiny tables only)."""
    ids = table.ids()
    if len(ids) > max_tuples:
        raise ExactSearchLimit(
            f"brute force limited to {max_tuples} tuples, got {len(ids)}"
        )
    best: Optional[Table] = None
    best_deleted = float("inf")
    for r in range(len(ids) + 1):
        if best is not None and best_deleted == 0:
            break
        for kept in itertools.combinations(ids, len(ids) - r):
            candidate = table.subset(kept)
            if satisfies(candidate, fds):
                deleted = table.total_weight() - candidate.total_weight()
                if deleted < best_deleted:
                    best = candidate
                    best_deleted = deleted
        # All subsets of size len-r examined; any larger deletion count can
        # only match or worsen the unweighted count but weights may differ,
        # so we keep scanning every size.
    assert best is not None  # the empty subset is always consistent
    return best


def _candidate_values(
    table: Table,
    attr: str,
    current: Value,
    fresh: Sequence[FreshValue],
) -> List[Value]:
    """Values a changed cell may take: active domain ∖ {current} + nulls."""
    values: List[Value] = [
        v for v in sorted(table.active_domain(attr), key=repr) if v != current
    ]
    values.extend(fresh)
    return values


def exact_u_repair_exhaustive(
    table: Table,
    fds: FDSet,
    max_changes: Optional[int] = None,
    upper_bound: Optional[float] = None,
    cell_budget: int = 2_000_000,
) -> Table:
    """Optimal U-repair by iterative deepening over changed-cell count.

    For each depth ``d`` we try every choice of ``d`` cells and every
    assignment of candidate values (active domain + ``d`` shared fresh
    nulls).  The search stops as soon as every undiscovered solution with
    more changes is provably at least as expensive as the best found
    (``d · min-weight ≥ best cost``).

    This is the *reference* exact solver: trivially correct but limited to
    tiny instances.  Prefer :func:`exact_u_repair` (conflict-driven branch
    & bound), which this one cross-validates in the test suite.

    Parameters
    ----------
    max_changes:
        Hard cap on the number of changed cells (default: all cells).
    upper_bound:
        Known upper bound on the optimal cost (e.g. from an approximation);
        used for pruning only.
    cell_budget:
        Safety valve on the number of (cell-set × assignment) combinations
        explored; :class:`ExactSearchLimit` is raised when exceeded.
    """
    fds = fds.with_singleton_rhs()
    if satisfies(table, fds):
        return table

    ids = table.ids()
    schema = table.schema
    cells: List[Tuple[TupleId, str]] = [
        (tid, attr) for tid in ids for attr in schema
    ]
    if max_changes is None:
        max_changes = len(cells)
    min_weight = min(table.weight(tid) for tid in ids)

    best: Optional[Table] = None
    best_cost = float("inf") if upper_bound is None else float(upper_bound)

    explored = 0
    for depth in range(1, max_changes + 1):
        if depth * min_weight >= best_cost:
            break
        fresh = [FreshValue(f"⊥{i}") for i in range(depth)]
        for cell_set in itertools.combinations(cells, depth):
            cost_if_all = sum(table.weight(tid) for tid, _ in cell_set)
            if cost_if_all >= best_cost:
                continue
            pools = [
                _candidate_values(table, attr, table.value(tid, attr), fresh)
                for tid, attr in cell_set
            ]
            for assignment in itertools.product(*pools):
                explored += 1
                if explored > cell_budget:
                    raise ExactSearchLimit(
                        f"exact U-repair search exceeded budget of "
                        f"{cell_budget} assignments"
                    )
                updates = dict(zip(cell_set, assignment))
                candidate = table.with_updates(updates)
                if satisfies(candidate, fds):
                    cost = table.dist_upd(candidate)
                    if cost < best_cost:
                        best = candidate
                        best_cost = cost
        if best is not None and (depth + 1) * min_weight >= best_cost:
            break

    if best is None:
        # No solution within max_changes; fall back to the always-valid
        # "make all tuples identical" update if allowed, else fail loudly.
        raise ExactSearchLimit(
            f"no consistent update found within {max_changes} cell changes"
        )
    return best


def exact_u_repair(
    table: Table,
    fds: FDSet,
    upper_bound: Optional[float] = None,
    node_budget: int = 1_000_000,
    max_changes: Optional[int] = None,
    cell_budget: Optional[int] = None,
    allowed_values: Optional[Dict[str, Iterable[Value]]] = None,
    use_lower_bound: bool = True,
    stats: Optional[Dict[str, int]] = None,
) -> Table:
    """Optimal U-repair by conflict-driven branch & bound.

    At each node the search finds one violating pair ``(i, j)`` of an FD
    ``X → A``.  Any consistent update must modify at least one of the
    cells ``{(i, B), (j, B) : B ∈ X ∪ {A}}`` — no other cell can resolve
    this particular violation — so we branch on *which* of those cells is
    the first (in a fixed order) to change, freezing the earlier ones at
    their current values to avoid revisiting assignments.  Candidate
    values are the attribute's active domain plus the fresh labelled nulls
    already used on the current path plus one brand-new null (canonical
    fresh-value labelling: fresh values are interchangeable, so exploring
    one new label per step is exhaustive up to renaming).

    Pruning is by path cost against the best solution found (optionally
    seeded with *upper_bound*).  ``max_changes``/``cell_budget`` are
    accepted for signature compatibility with
    :func:`exact_u_repair_exhaustive`; ``cell_budget`` caps search nodes.

    ``allowed_values`` implements the restriction the paper poses as
    future work (Section 5): when it maps an attribute to a finite set of
    permitted replacement values, updates to that attribute may only use
    those values and fresh labelled nulls are disabled for it.  With
    restricted domains a consistent update may not exist at all, in which
    case :class:`ExactSearchLimit` is raised.

    The problem is APX-complete in general (Theorem 4.10): worst-case
    exponential, but this solver comfortably handles the benchmark
    instances (tens of tuples at small repair distances).

    ``use_lower_bound`` toggles the matching bound (ablation hook, see
    benchmark E17); ``stats`` — when a dict is passed — receives the
    number of explored search nodes under key ``"nodes"``.
    """
    fds = fds.with_singleton_rhs().without_trivial()
    if stats is not None:
        stats["nodes"] = 0
    if satisfies(table, fds):
        return table
    if cell_budget is not None:
        node_budget = cell_budget

    schema = table.schema
    index = {attr: position for position, attr in enumerate(schema)}
    rows: Dict[TupleId, List[Value]] = {
        tid: list(row) for tid, row in table.rows().items()
    }
    weights = table.weights()
    active: Dict[str, List[Value]] = {
        attr: sorted(table.active_domain(attr), key=repr) for attr in schema
    }
    fd_parts = [
        (sorted(fd.lhs), next(iter(fd.rhs))) for fd in fds
    ]
    max_changes = len(rows) * len(schema) if max_changes is None else max_changes

    best_updates: Optional[Dict[Tuple[TupleId, str], Value]] = None
    best_cost = float("inf") if upper_bound is None else float(upper_bound)
    nodes = 0

    def iter_violations():
        for lhs, rhs in fd_parts:
            groups: Dict[Tuple[Value, ...], List[TupleId]] = {}
            for tid, row in rows.items():
                key = tuple(row[index[a]] for a in lhs)
                groups.setdefault(key, []).append(tid)
            for ids in groups.values():
                if len(ids) < 2:
                    continue
                buckets: Dict[Value, List[TupleId]] = {}
                for tid in ids:
                    buckets.setdefault(rows[tid][index[rhs]], []).append(tid)
                if len(buckets) < 2:
                    continue
                groups_list = list(buckets.values())
                for gi in range(len(groups_list)):
                    for gj in range(gi + 1, len(groups_list)):
                        for t1 in groups_list[gi]:
                            for t2 in groups_list[gj]:
                                yield t1, t2, lhs, rhs

    def find_violation() -> Optional[Tuple[TupleId, TupleId, List[str], str]]:
        for violation in iter_violations():
            return violation
        return None

    def lower_bound() -> float:
        """Admissible bound: a greedy maximal matching over violating
        pairs (tuple-disjoint).  Each matched pair must see a change in a
        cell of one of its two tuples, and distinct pairs use distinct
        tuples, hence distinct cells; every change costs at least the
        lighter tuple's weight."""
        used_tuples: set = set()
        bound = 0.0
        for t1, t2, _lhs, _rhs in iter_violations():
            if t1 in used_tuples or t2 in used_tuples:
                continue
            used_tuples.add(t1)
            used_tuples.add(t2)
            bound += min(weights[t1], weights[t2])
        return bound

    def search(
        changed: Dict[Tuple[TupleId, str], Value],
        frozen: frozenset,
        cost: float,
        fresh_used: Tuple[FreshValue, ...],
    ) -> None:
        nonlocal best_updates, best_cost, nodes
        nodes += 1
        if nodes > node_budget:
            raise ExactSearchLimit(
                f"exact U-repair branch & bound exceeded {node_budget} nodes"
            )
        if cost >= best_cost:
            return
        violation = find_violation()
        if violation is None:
            best_updates = dict(changed)
            best_cost = cost
            return
        if len(changed) >= max_changes:
            return
        if use_lower_bound and cost + lower_bound() >= best_cost:
            return
        tid1, tid2, lhs, rhs = violation
        cells = []
        for tid in (tid1, tid2):
            for attr in (*lhs, rhs):
                cell = (tid, attr)
                if cell not in cells:
                    cells.append(cell)
        mutable = [c for c in cells if c not in changed and c not in frozen]
        for k, (tid, attr) in enumerate(mutable):
            weight = weights[tid]
            if cost + weight >= best_cost:
                continue
            branch_frozen = frozen | frozenset(mutable[:k])
            position = index[attr]
            original = rows[tid][position]
            new_fresh = FreshValue()
            if allowed_values is not None and attr in allowed_values:
                candidates: List[Value] = [
                    v
                    for v in sorted(allowed_values[attr], key=repr)
                    if v != original
                ]
            else:
                candidates = [v for v in active[attr] if v != original]
                candidates.extend(fresh_used)
                candidates.append(new_fresh)
            for value in candidates:
                rows[tid][position] = value
                changed[(tid, attr)] = value
                next_fresh = (
                    fresh_used + (new_fresh,) if value is new_fresh else fresh_used
                )
                search(changed, branch_frozen, cost + weight, next_fresh)
                del changed[(tid, attr)]
                rows[tid][position] = original

    try:
        search({}, frozenset(), 0.0, ())
    finally:
        if stats is not None:
            stats["nodes"] = nodes
    if best_updates is None:
        raise ExactSearchLimit(
            "no consistent update found within the configured limits"
        )
    return table.with_updates(best_updates)
