"""Optimal and best-effort update repairs (Section 4 of the paper).

Unlike S-repairs, U-repairs have no known full dichotomy; the paper
instead provides a toolbox of reductions and tractable cases, which this
module assembles into a single dispatcher:

1. **Decomposition** (Theorem 4.1): attribute-disjoint components of Δ are
   repaired independently and their updates composed; optimality and
   approximation ratios are preserved, and distances add up
   (Proposition B.1).
2. **Consensus elimination** (Theorem 4.3): the consensus attributes
   ``cl_Δ(∅)`` are repaired optimally by weighted per-attribute majority
   (Proposition B.2 / Corollary B.3), then ``Δ − cl_Δ(∅)`` is solved.
3. **Common lhs** (Corollary 4.6): when the consensus-free component has a
   common lhs and passes ``OSRSucceeds``, the optimal U-repair distance
   equals the optimal S-repair distance; the Proposition 4.4(2)
   construction with a singleton lhs cover attains it.  Chain FD sets
   (Corollary 4.8) are covered by this case after step 2.
4. **Two-cycle** ``{A→B, B→A}`` (Proposition 4.9): optimal S-repair plus a
   one-cell copy fix per deleted tuple attains the S-repair distance.
5. **Exact search** for small residual instances
   (:func:`repro.core.exact.exact_u_repair`).
6. **Approximation** (Theorem 4.12): the ``2·mlc`` construction, with the
   per-component ratio bound reported in the result.

The dispatcher therefore returns *provably optimal* repairs exactly on
the cases the paper proves tractable (plus exhaustively-searched small
instances), and flagged approximations elsewhere — mirroring the paper's
partial tractability landscape, including its APX-complete cases such as
``Δ_{A↔B→C}`` (Theorem 4.10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .dichotomy import osr_succeeds
from .exact import ExactSearchLimit, exact_u_repair
from .fd import FDSet
from .srepair import opt_s_repair
from .table import Table, TupleId
from .violations import satisfies

__all__ = [
    "URepairResult",
    "URepairApproxResult",
    "u_repair",
    "optimal_u_repair",
    "UnknownURepairComplexity",
]


@dataclass(frozen=True)
class URepairResult:
    """Outcome of a U-repair computation.

    ``ratio_bound`` bounds ``dist_upd(update)/dist_upd(optimal)``; it is
    1.0 when ``optimal``.  ``method`` records the per-component techniques
    applied.  Conflict-decomposed computations additionally record the
    per-component method mix (``method_counts``) and the component count;
    both are ``None`` on global computations.
    """

    update: Table
    distance: float
    optimal: bool
    ratio_bound: float
    method: str
    method_counts: Optional[Mapping[str, int]] = None
    component_count: Optional[int] = None


# Alias used by repro.core.approx to avoid duplicating the dataclass.
URepairApproxResult = URepairResult


class UnknownURepairComplexity(Exception):
    """Raised by :func:`optimal_u_repair` when no optimality-preserving
    technique applies and exhaustive search is infeasible."""


def _is_two_cycle(fds: FDSet) -> bool:
    """True iff Δ is exactly ``{A → B, B → A}`` for single attributes."""
    if len(fds) != 2:
        return False
    fd1, fd2 = fds.fds
    return (
        len(fd1.lhs) == 1
        and len(fd1.rhs) == 1
        and fd1.lhs == fd2.rhs
        and fd1.rhs == fd2.lhs
        and fd1.lhs != fd1.rhs
    )


def _two_cycle_updates(
    table: Table, fds: FDSet
) -> Dict[Tuple[TupleId, str], object]:
    """Proposition 4.9's construction for ``Δ = {A→B, B→A}``.

    Compute an optimal S-repair (the FD set passes ``OSRSucceeds`` via an
    lhs marriage).  Every deleted tuple t conflicts with some kept tuple s
    — otherwise t could be added, contradicting optimality — i.e. they
    agree on exactly one of A, B; copying the other attribute from s makes
    t a duplicate of s, at Hamming cost 1.  Hence
    ``dist_upd = dist_sub(S*)``, which is optimal by Corollary 4.5.
    """
    fd1, _fd2 = fds.fds
    (a,) = tuple(fd1.lhs)
    (b,) = tuple(fd1.rhs)
    s_star = opt_s_repair(fds, table)
    kept = list(s_star.ids())
    kept_set = set(kept)
    updates: Dict[Tuple[TupleId, str], object] = {}
    for tid in table.ids():
        if tid in kept_set:
            continue
        for sid in kept:
            if table.value(sid, a) == table.value(tid, a):
                updates[(tid, b)] = table.value(sid, b)
                break
            if table.value(sid, b) == table.value(tid, b):
                updates[(tid, a)] = table.value(sid, a)
                break
        else:
            raise AssertionError(
                "optimal S-repair is maximal; every deleted tuple must "
                "conflict with a kept tuple"
            )
    return updates


@dataclass
class _ComponentOutcome:
    updates: Dict[Tuple[TupleId, str], object]
    optimal: bool
    ratio: float
    methods: List[str]


def _component_u_repair(
    table: Table,
    fds: FDSet,
    allow_exact: bool,
    exact_budget: int,
) -> _ComponentOutcome:
    """Solve one attribute-disjoint component of Δ."""
    from .approx import (  # local import: approx depends on this module
        approx_s_repair,
        consensus_majority_update,
        u_repair_from_s_repair,
    )

    consensus = fds.consensus_attributes()
    if consensus:
        # Theorem 4.3: repair cl_Δ(∅) by weighted majority (optimal,
        # Prop. B.2), then solve Δ − cl_Δ(∅), which is consensus-free and
        # attribute-disjoint from the majority updates.
        outcome = _ComponentOutcome(
            updates=dict(consensus_majority_update(table, consensus)),
            optimal=True,
            ratio=1.0,
            methods=[f"consensus majority on {{{' '.join(sorted(consensus))}}}"],
        )
        rest = fds.minus(consensus).without_trivial()
        for sub in rest.attribute_disjoint_components():
            sub_outcome = _component_u_repair(table, sub, allow_exact, exact_budget)
            outcome.updates.update(sub_outcome.updates)
            outcome.optimal = outcome.optimal and sub_outcome.optimal
            outcome.ratio = max(outcome.ratio, sub_outcome.ratio)
            outcome.methods.extend(sub_outcome.methods)
        return outcome

    if fds.is_trivial:
        return _ComponentOutcome({}, True, 1.0, ["trivial"])

    if fds.common_lhs() and osr_succeeds(fds):
        # Corollary 4.6: mlc = 1, so Proposition 4.4(2) attains the
        # optimal S-repair distance, which lower-bounds the optimal
        # U-repair distance (Corollary 4.5).
        attr = min(sorted(fds.common_lhs()))
        s_star = opt_s_repair(fds, table)
        update = u_repair_from_s_repair(table, fds, s_star, frozenset((attr,)))
        return _ComponentOutcome(
            updates={cell: update.value(*cell) for cell in update.changed_cells(table)},
            optimal=True,
            ratio=1.0,
            methods=[f"common lhs ({attr}) via OptSRepair (Cor 4.6)"],
        )

    if _is_two_cycle(fds):
        return _ComponentOutcome(
            updates=_two_cycle_updates(table, fds),
            optimal=True,
            ratio=1.0,
            methods=["two-cycle {A→B, B→A} (Prop 4.9)"],
        )

    if allow_exact:
        # Exhaustive search for small instances, seeded with the
        # approximation as an upper bound for pruning.
        approx = _approx_component_update(table, fds)
        try:
            exact = exact_u_repair(
                table,
                fds,
                upper_bound=table.dist_upd(approx.update) + 1e-9,
                cell_budget=exact_budget,
            )
            return _ComponentOutcome(
                updates={
                    cell: exact.value(*cell) for cell in exact.changed_cells(table)
                },
                optimal=True,
                ratio=1.0,
                methods=["exact search"],
            )
        except ExactSearchLimit:
            pass
        return _ComponentOutcome(
            updates={
                cell: approx.update.value(*cell)
                for cell in approx.update.changed_cells(table)
            },
            optimal=False,
            ratio=approx.ratio_bound,
            methods=[f"2·mlc approximation (ratio ≤ {approx.ratio_bound:g})"],
        )

    approx = _approx_component_update(table, fds)
    return _ComponentOutcome(
        updates={
            cell: approx.update.value(*cell)
            for cell in approx.update.changed_cells(table)
        },
        optimal=False,
        ratio=approx.ratio_bound,
        methods=[f"2·mlc approximation (ratio ≤ {approx.ratio_bound:g})"],
    )


def _approx_component_update(table: Table, fds: FDSet) -> URepairResult:
    """Theorem 4.12's construction restricted to one consensus-free
    component."""
    from .approx import approx_s_repair, u_repair_from_s_repair

    cover = fds.minimum_lhs_cover()
    s_result = approx_s_repair(table, fds)
    update = u_repair_from_s_repair(table, fds, s_result.repair, cover)
    return URepairResult(
        update=update,
        distance=table.dist_upd(update),
        optimal=False,
        ratio_bound=2.0 * len(cover),
        method="2·mlc",
    )


def u_repair(
    table: Table,
    fds: FDSet,
    allow_exact_search: bool = True,
    exact_budget: int = 50_000,
    index=None,
    decomposed: Optional[bool] = None,
    parallel: Optional[int] = None,
) -> URepairResult:
    """Best-effort U-repair: optimal where the paper proves tractability
    (or exhaustive search fits the budget), bounded approximation
    otherwise.

    The returned :class:`URepairResult` states exactly which guarantee was
    achieved, per component.

    ``decomposed=True`` (implied by ``parallel``) dispatches per conflict
    component of the instance — orthogonal to (and on top of) the
    attribute-disjoint decomposition of Δ this dispatcher always applies.
    Only conflicting tuples enter a solver, exhaustive search budgets
    apply per component (so small hard pockets inside a large table are
    still searched exactly), and components run on ``parallel`` worker
    processes when requested.  The merge is globally re-validated with a
    fall back to this global path, so decomposition never costs
    soundness.

    A consistent table short-circuits to the zero-update result without
    touching the per-component machinery — read off the prebuilt
    :class:`~repro.core.conflict_index.ConflictIndex` when one is passed
    (or cached on the table), detected by streaming otherwise, so the
    reported guarantee never depends on whether an index was supplied.
    The per-component S-repair subcalls share the table's per-FD-set
    index cache either way.
    """
    if decomposed is None:
        decomposed = bool(parallel and parallel > 1)
    if decomposed:
        from ..exec import decomposed_u_repair  # deferred: exec imports us

        return decomposed_u_repair(
            table,
            fds,
            allow_exact_search=allow_exact_search,
            exact_budget=exact_budget,
            parallel=parallel,
            index=index,
        )
    normalised = fds.with_singleton_rhs().without_trivial()
    if index is not None:
        index.ensure_for(fds, table)
        consistent = index.is_consistent()
    else:
        consistent = satisfies(table, fds)
    if consistent:
        return URepairResult(
            update=table,
            distance=0.0,
            optimal=True,
            ratio_bound=1.0,
            method="already consistent",
        )
    updates: Dict[Tuple[TupleId, str], object] = {}
    optimal = True
    ratio = 1.0
    methods: List[str] = []
    for component in normalised.attribute_disjoint_components():
        outcome = _component_u_repair(
            table, component, allow_exact_search, exact_budget
        )
        updates.update(outcome.updates)
        optimal = optimal and outcome.optimal
        ratio = max(ratio, outcome.ratio)
        methods.extend(outcome.methods)
    update = table.with_updates(updates)
    if not satisfies(update, normalised):
        raise AssertionError("u_repair produced an inconsistent update")
    return URepairResult(
        update=update,
        distance=table.dist_upd(update),
        optimal=optimal,
        ratio_bound=1.0 if optimal else ratio,
        method="; ".join(methods) if methods else "trivial",
    )


def optimal_u_repair(
    table: Table,
    fds: FDSet,
    exact_budget: int = 500_000,
    index=None,
    decomposed: Optional[bool] = None,
    parallel: Optional[int] = None,
) -> URepairResult:
    """A provably optimal U-repair, or :class:`UnknownURepairComplexity`.

    Succeeds on the paper's tractable cases — attribute-disjoint unions of
    consensus FDs, common-lhs FD sets passing ``OSRSucceeds`` (hence all
    chain FD sets, Corollary 4.8), and ``{A→B, B→A}`` — and on any
    instance small enough for exhaustive search.  The conflict-decomposed
    path (``decomposed=True``, implied by ``parallel``) extends the last
    case: the budget applies per component, so a large table whose hard
    conflicts form small pockets is still solved optimally.
    """
    result = u_repair(
        table,
        fds,
        allow_exact_search=True,
        exact_budget=exact_budget,
        index=index,
        decomposed=decomposed,
        parallel=parallel,
    )
    if not result.optimal:
        raise UnknownURepairComplexity(
            f"no optimality-preserving technique applies to {fds} and the "
            f"instance exceeds the exact-search budget; "
            f"best known ratio bound is {result.ratio_bound:g}"
        )
    return result
