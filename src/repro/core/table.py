"""Tables with tuple identifiers and weights (Section 2.1 of the paper).

A :class:`Table` over a schema ``R(A1, …, Ak)`` maps each tuple identifier
to a k-tuple of values and a positive weight.  Identifiers make duplicate
tuples representable and let update repairs say exactly which cells changed.

The module also provides:

* :class:`FreshValue` — labelled nulls standing in for values drawn from
  the paper's countably infinite domain ``Val`` outside the active domain.
  Fresh values compare equal only to themselves, which is all FD
  satisfaction can observe.
* The two distance functions of Section 2.3, ``dist_sub`` and ``dist_upd``
  (weighted deletions and weighted Hamming distance).
"""

from __future__ import annotations

import itertools
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .fd import Attribute, AttrSet, attrset

Value = Hashable
TupleId = Hashable
Row = Tuple[Value, ...]

__all__ = [
    "FreshValue",
    "fresh_value_factory",
    "Table",
    "hamming_distance",
]


class FreshValue:
    """A labelled null: a value guaranteed distinct from every other value.

    The paper's update repairs may use values from an infinite domain that
    never occur in the table (e.g. ``F01`` in Figure 1(e)).  Only the
    *equality pattern* of values matters to FD satisfaction, so identity-
    distinct sentinel objects are a faithful model of such fresh constants.
    """

    __slots__ = ("label",)
    _counter = itertools.count()

    def __init__(self, label: Optional[str] = None) -> None:
        if label is None:
            label = f"⊥{next(FreshValue._counter)}"
        self.label = label

    def __repr__(self) -> str:
        return self.label

    # Identity-based equality/hash (object defaults) are exactly what we
    # want; declared explicitly for clarity.
    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)


def fresh_value_factory(prefix: str = "⊥") -> Iterator[FreshValue]:
    """An infinite stream of distinct fresh values with readable labels."""
    for i in itertools.count():
        yield FreshValue(f"{prefix}{i}")


def hamming_distance(t: Sequence[Value], u: Sequence[Value]) -> int:
    """``H(t, u)`` — the number of positions where *t* and *u* disagree."""
    if len(t) != len(u):
        raise ValueError("Hamming distance of tuples with different arity")
    return sum(1 for a, b in zip(t, u) if a != b)


class Table:
    """A weighted table with tuple identifiers over a named schema.

    Parameters
    ----------
    schema:
        Attribute names, in column order.
    rows:
        Mapping from tuple identifier to a value tuple of matching arity.
    weights:
        Optional mapping from identifier to a positive weight; missing
        identifiers default to ``1.0`` (the *unweighted* case).
    name:
        Optional relation name, used only for display.

    Instances are immutable in spirit: all mutating operations return new
    tables.  Iteration order of identifiers is the insertion order of
    ``rows``, which keeps every algorithm in the library deterministic.

    Immutability lets each table memoise derived structures in ``_cache``:
    :meth:`group_by` buckets (reused across the OptSRepair recursion) and
    per-FD-set :class:`~repro.core.conflict_index.ConflictIndex` instances
    (shared by every repair entry point, see :meth:`conflict_index`).
    """

    __slots__ = (
        "_schema", "_rows", "_weights", "name", "_index", "_cache",
        "__weakref__",  # ConflictIndex holds a weakref to its source table
    )

    def __init__(
        self,
        schema: Sequence[Attribute],
        rows: Mapping[TupleId, Sequence[Value]],
        weights: Optional[Mapping[TupleId, float]] = None,
        name: str = "R",
    ) -> None:
        self._schema: Tuple[Attribute, ...] = tuple(schema)
        if len(set(self._schema)) != len(self._schema):
            raise ValueError(f"duplicate attribute in schema {self._schema!r}")
        arity = len(self._schema)
        normalised: Dict[TupleId, Row] = {}
        for tid, row in rows.items():
            row = tuple(row)
            if len(row) != arity:
                raise ValueError(
                    f"tuple {tid!r} has arity {len(row)}, schema has {arity}"
                )
            normalised[tid] = row
        self._rows = normalised
        w: Dict[TupleId, float] = {}
        weights = weights or {}
        for tid in normalised:
            weight = float(weights.get(tid, 1.0))
            if weight <= 0:
                raise ValueError(f"tuple {tid!r} has non-positive weight {weight}")
            w[tid] = weight
        extra = set(weights) - set(normalised)
        if extra:
            raise ValueError(f"weights for unknown identifiers: {sorted(map(str, extra))}")
        self._weights = w
        self.name = name
        self._index: Dict[Attribute, int] = {a: i for i, a in enumerate(self._schema)}
        self._cache: Dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _from_trusted(
        cls,
        schema: Tuple[Attribute, ...],
        rows: Dict[TupleId, Row],
        weights: Dict[TupleId, float],
        name: str,
        index: Dict[Attribute, int],
    ) -> "Table":
        """Internal fast path: build a table from already-validated parts.

        ``rows`` and ``weights`` are adopted without copying or
        re-validation, and ``index`` is shared; callers must hand over
        freshly-built dicts whose invariants (matching key sets, tuple
        rows of schema arity, positive weights) already hold.  This is
        what makes :meth:`subset` / :meth:`union` — the hot constructors
        of the OptSRepair recursion — O(|rows|) instead of O(|rows|·k)
        with per-row checks.
        """
        table = cls.__new__(cls)
        table._schema = schema
        table._rows = rows
        table._weights = weights
        table.name = name
        table._index = index
        table._cache = {}
        return table

    @classmethod
    def from_rows(
        cls,
        schema: Sequence[Attribute],
        rows: Iterable[Sequence[Value]],
        weights: Optional[Sequence[float]] = None,
        name: str = "R",
    ) -> "Table":
        """Build a table from a list of value tuples; ids are 1, 2, 3, …"""
        rows = list(rows)
        row_map = {i + 1: tuple(row) for i, row in enumerate(rows)}
        weight_map = None
        if weights is not None:
            weights = list(weights)
            if len(weights) != len(rows):
                raise ValueError("weights and rows have different lengths")
            weight_map = {i + 1: w for i, w in enumerate(weights)}
        return cls(schema, row_map, weight_map, name=name)

    @classmethod
    def from_dicts(
        cls,
        schema: Sequence[Attribute],
        records: Iterable[Mapping[Attribute, Value]],
        weights: Optional[Sequence[float]] = None,
        name: str = "R",
    ) -> "Table":
        """Build a table from dict records keyed by attribute name."""
        schema = tuple(schema)
        rows = [tuple(rec[a] for a in schema) for rec in records]
        return cls.from_rows(schema, rows, weights, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Tuple[Attribute, ...]:
        return self._schema

    def ids(self) -> Tuple[TupleId, ...]:
        """Identifiers in insertion order."""
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __contains__(self, tid: TupleId) -> bool:
        return tid in self._rows

    def __getitem__(self, tid: TupleId) -> Row:
        return self._rows[tid]

    def weight(self, tid: TupleId) -> float:
        return self._weights[tid]

    def weights(self) -> Dict[TupleId, float]:
        return dict(self._weights)

    def rows(self) -> Dict[TupleId, Row]:
        return dict(self._rows)

    def tuples(self) -> Iterator[Tuple[TupleId, Row, float]]:
        """Iterate ``(id, row, weight)`` in insertion order."""
        for tid, row in self._rows.items():
            yield tid, row, self._weights[tid]

    def value(self, tid: TupleId, attr: Attribute) -> Value:
        """The value of attribute *attr* in tuple *tid*."""
        return self._rows[tid][self._index[attr]]

    def project_row(self, row: Sequence[Value], attrs: Iterable[Attribute]) -> Row:
        """``t[X]`` — the sub-tuple of *row* on attributes *attrs*.

        Attributes are taken in sorted order so projections are canonical
        and comparable across calls.
        """
        return tuple(row[self._index[a]] for a in sorted(attrs))

    def project(self, tid: TupleId, attrs: Iterable[Attribute]) -> Row:
        return self.project_row(self._rows[tid], attrs)

    # ------------------------------------------------------------------
    # Whole-table properties (Section 2.1)
    # ------------------------------------------------------------------
    @property
    def is_duplicate_free(self) -> bool:
        """True iff distinct identifiers carry distinct tuples."""
        return len(set(self._rows.values())) == len(self._rows)

    @property
    def is_unweighted(self) -> bool:
        """True iff all tuple weights are equal."""
        return len(set(self._weights.values())) <= 1

    def total_weight(self, ids: Optional[Iterable[TupleId]] = None) -> float:
        """``w_T(S)`` — sum of weights over *ids* (default: all tuples)."""
        if ids is None:
            return sum(self._weights.values())
        return sum(self._weights[tid] for tid in ids)

    def active_domain(self, attr: Attribute) -> Set[Value]:
        """All values occurring in column *attr*."""
        idx = self._index[attr]
        return {row[idx] for row in self._rows.values()}

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def subset(self, ids: Iterable[TupleId]) -> "Table":
        """The sub-table containing exactly the given identifiers.

        Ordering contract: a *sequence* of ids sets the new table's
        iteration order (construction is O(|ids|) — this is what keeps
        the OptSRepair recursion linear, its :meth:`group_by` buckets
        being table-ordered already); a *set* is filtered in table
        order at O(|T|).  Callers holding an arbitrarily-ordered id
        collection should pass a set to get the canonical order.
        """
        rows_src = self._rows
        if isinstance(ids, (set, frozenset)):
            missing = ids - rows_src.keys()
            if missing:
                raise KeyError(f"unknown identifiers: {sorted(map(str, missing))}")
            rows = {tid: row for tid, row in rows_src.items() if tid in ids}
        else:
            if not isinstance(ids, (list, tuple)):
                ids = list(ids)
            try:
                rows = {tid: rows_src[tid] for tid in ids}
            except KeyError:
                missing = set(ids) - rows_src.keys()
                raise KeyError(
                    f"unknown identifiers: {sorted(map(str, missing))}"
                ) from None
        weights_src = self._weights
        weights = {tid: weights_src[tid] for tid in rows}
        return Table._from_trusted(
            self._schema, rows, weights, self.name, self._index
        )

    def select_eq(self, assignment: Mapping[Attribute, Value]) -> "Table":
        """``σ_{A1=a1, …}T`` — tuples matching the given attribute values."""
        items = [(self._index[a], v) for a, v in assignment.items()]
        rows = {
            tid: row
            for tid, row in self._rows.items()
            if all(row[i] == v for i, v in items)
        }
        weights = {tid: self._weights[tid] for tid in rows}
        return Table._from_trusted(
            self._schema, rows, weights, self.name, self._index
        )

    def group_by(self, attrs: Iterable[Attribute]) -> Dict[Row, List[TupleId]]:
        """Identifiers grouped by their projection onto *attrs*.

        Attributes are sorted (see :meth:`project_row`), so the group keys
        are canonical value tuples.  Grouping by the empty attribute set
        puts every tuple in the single group keyed by ``()``.

        The grouping is memoised per attribute set (tables are immutable);
        treat the returned dict and its lists as read-only.
        """
        attrs = sorted(attrset(attrs) if not isinstance(attrs, (list, tuple, set, frozenset)) else attrs)
        cache_key = ("group_by", tuple(attrs))
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        positions = [self._index[a] for a in attrs]
        groups: Dict[Row, List[TupleId]] = {}
        setdefault = groups.setdefault
        for tid, row in self._rows.items():
            key = tuple(row[i] for i in positions)
            setdefault(key, []).append(tid)
        self._cache[cache_key] = groups
        return groups

    def conflict_index(self, fds) -> "ConflictIndex":
        """The cached :class:`~repro.core.conflict_index.ConflictIndex`
        of this table under *fds*.

        Built on first use and memoised per FD set, so the violation
        buckets and the materialised conflict graph are shared by every
        repair entry point (assessment, approximation, exact search, …)
        — and by batched repair of many FD sets over one table.  The
        returned index is the pristine cached instance: callers that
        mutate it (incremental tuple removal) must work on a
        :meth:`~repro.core.conflict_index.ConflictIndex.copy`.
        """
        from .conflict_index import ConflictIndex  # deferred: avoid cycle

        cache_key = ("conflict_index", fds)
        cached = self._cache.get(cache_key)
        if cached is None:
            cached = ConflictIndex(self, fds)
            self._cache[cache_key] = cached
        return cached

    def cached_conflict_index(self, fds) -> "Optional[ConflictIndex]":
        """The already-built index for *fds*, or ``None`` — never builds.

        For callers that want the materialised fast path only when it is
        free (e.g. :func:`repro.core.violations.satisfies`), without
        committing to an O(|T|·|Δ|) build.
        """
        return self._cache.get(("conflict_index", fds))

    # ------------------------------------------------------------------
    # Pickling (process-pool execution of per-component repairs)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle the table data, never the derived-structure cache.

        The cache may hold :class:`ConflictIndex` instances, which carry a
        weakref to this table and are therefore unpicklable — and sending
        them across a process boundary would be wasteful anyway (workers
        rebuild exactly the sub-index they need).  Everything else is
        plain data.
        """
        return (self._schema, self._rows, self._weights, self.name)

    def __setstate__(self, state) -> None:
        schema, rows, weights, name = state
        self._schema = schema
        self._rows = rows
        self._weights = weights
        self.name = name
        self._index = {a: i for i, a in enumerate(schema)}
        self._cache = {}

    def clear_derived_cache(self) -> None:
        """Drop all memoised derived structures (group_by buckets,
        conflict indexes).

        The cache only ever grows — one entry per distinct attribute set
        or FD set queried — which is right for the repair workloads but
        can pin substantial memory on a long-lived table probed against
        many candidate FD sets.  Clearing is always safe: entries are
        pure functions of the (immutable) table and rebuild on demand.
        """
        self._cache.clear()

    def distinct_projection(self, attrs: Iterable[Attribute]) -> List[Row]:
        """``π_X T[*]`` — distinct projections, in first-seen order."""
        seen: Set[Row] = set()
        out: List[Row] = []
        for tid in self._rows:
            key = self.project(tid, attrs)
            if key not in seen:
                seen.add(key)
                out.append(key)
        return out

    def union(self, other: "Table") -> "Table":
        """Disjoint union of two tables over the same schema.

        Used to stitch per-group repairs back together; identifier sets
        must be disjoint.
        """
        if other.schema != self._schema:
            raise ValueError("schema mismatch in union")
        overlap = set(self._rows) & set(other._rows)
        if overlap:
            raise ValueError(f"overlapping identifiers in union: {sorted(map(str, overlap))}")
        rows = dict(self._rows)
        rows.update(other._rows)
        weights = dict(self._weights)
        weights.update(other._weights)
        return Table._from_trusted(
            self._schema, rows, weights, self.name, self._index
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def with_updates(
        self, updates: Mapping[Tuple[TupleId, Attribute], Value]
    ) -> "Table":
        """A new table with the given ``(id, attribute) → value`` updates.

        Identifier set and weights are unchanged, as required of an update
        of T (Section 2.3).
        """
        changed: Dict[TupleId, List[Value]] = {}
        for (tid, attr), value in updates.items():
            if tid not in self._rows:
                raise KeyError(f"unknown identifier {tid!r}")
            vals = changed.get(tid)
            if vals is None:
                vals = changed[tid] = list(self._rows[tid])
            vals[self._index[attr]] = value
        rows = {
            tid: (tuple(changed[tid]) if tid in changed else row)
            for tid, row in self._rows.items()
        }
        return Table._from_trusted(
            self._schema, rows, dict(self._weights), self.name, self._index
        )

    def is_subset_of(self, other: "Table") -> bool:
        """True iff self is a subset of *other* (ids, rows, and weights).

        Dict-view containment runs at C speed; it is exercised on every
        repair (``dist_sub`` validates its argument), so the naive
        per-tuple Python loop was a measurable slice of the streaming
        session's per-delta cost.
        """
        if other.schema != self._schema:
            return False
        return (
            self._rows.items() <= other._rows.items()
            and self._weights.items() <= other._weights.items()
        )

    def is_update_of(self, other: "Table") -> bool:
        """True iff self is an update of *other* (same ids and weights)."""
        if other.schema != self._schema:
            return False
        if set(self._rows) != set(other.ids()):
            return False
        return all(self._weights[tid] == other.weight(tid) for tid in self._rows)

    def changed_cells(self, original: "Table") -> List[Tuple[TupleId, Attribute]]:
        """The cells on which self (an update of *original*) differs."""
        out: List[Tuple[TupleId, Attribute]] = []
        for tid, row in self._rows.items():
            orig = original[tid]
            for i, attr in enumerate(self._schema):
                if row[i] != orig[i]:
                    out.append((tid, attr))
        return out

    # ------------------------------------------------------------------
    # Distances (Section 2.3)
    # ------------------------------------------------------------------
    def dist_sub(self, subset: "Table") -> float:
        """``dist_sub(S, T)`` — total weight of the tuples missing from S.

        ``self`` is the original table T; *subset* must be a subset of T.
        """
        if not subset.is_subset_of(self):
            raise ValueError("dist_sub: argument is not a subset of this table")
        missing = self._rows.keys() - subset._rows.keys()
        return sum(self._weights[tid] for tid in missing)

    def dist_upd(self, update: "Table") -> float:
        """``dist_upd(U, T)`` — weighted Hamming distance of an update."""
        if not update.is_update_of(self):
            raise ValueError("dist_upd: argument is not an update of this table")
        return sum(
            self._weights[tid] * hamming_distance(row, update[tid])
            for tid, row in self._rows.items()
        )

    # ------------------------------------------------------------------
    # Display / export
    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """Rows as dicts including ``id`` and ``weight`` keys."""
        out = []
        for tid, row, weight in self.tuples():
            rec: Dict[str, Any] = {"id": tid}
            rec.update(zip(self._schema, row))
            rec["weight"] = weight
            out.append(rec)
        return out

    def to_string(self) -> str:
        """A small fixed-width rendering, in the style of Figure 1."""
        headers = ["id", *self._schema, "w"]
        body = [
            [str(tid), *[str(v) for v in row], f"{weight:g}"]
            for tid, row, weight in self.tuples()
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table({self.name}, {len(self)} tuples, schema={self._schema})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self._schema == other._schema
            and self._rows == other._rows
            and self._weights == other._weights
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._schema,
                frozenset(self._rows.items()),
                frozenset(self._weights.items()),
            )
        )
