"""Algorithm 1 of the paper: ``OptSRepair`` and its three subroutines.

``OptSRepair(Δ, T)`` computes an optimal S-repair (minimum-weight set of
tuple deletions) whenever Δ can be fully simplified by three rules:

* **common lhs** (Subroutine 1, ``CommonLHSRep``): if some attribute A
  appears in the lhs of every FD, partition T by A, solve each block under
  ``Δ − A``, and return the union of the block repairs.
* **consensus** (Subroutine 2, ``ConsensusRep``): if Δ contains ``∅ → A``,
  partition T by A, solve each block under ``Δ − A``, and keep only the
  block repair of maximum weight.
* **lhs marriage** (Subroutine 3, ``MarriageRep``): if two lhs X1, X2 have
  equal closures and every lhs contains one of them, solve each
  ``(X1, X2)``-value block under ``Δ − X1X2`` and combine blocks along a
  maximum-weight matching of the bipartite graph between X1-values and
  X2-values.

If none applies to a nontrivial Δ, the algorithm *fails*; Theorem 3.4 shows
the problem is then APX-complete (see :mod:`repro.core.dichotomy`).

The implementation is faithful to the paper, handles weighted tables and
duplicate tuples, and is polynomial even in combined complexity
(Theorem 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..graphs.bipartite import max_weight_bipartite_matching
from .fd import FD, AttrSet, FDSet
from .table import Row, Table

__all__ = [
    "DichotomyFailure",
    "opt_s_repair",
    "optimal_s_repair",
    "SRepairResult",
]


class DichotomyFailure(Exception):
    """Raised when ``OptSRepair`` reaches a nontrivial, unsimplifiable Δ.

    By Theorem 3.4 computing an optimal S-repair for such Δ is
    APX-complete; callers can fall back to
    :func:`repro.core.exact.exact_s_repair` (exponential) or
    :func:`repro.core.approx.approx_s_repair` (2-approximation).
    """

    def __init__(self, fds: FDSet):
        self.fds = fds
        super().__init__(
            f"OptSRepair fails: no simplification applies to {fds}"
        )


@dataclass(frozen=True)
class SRepairResult:
    """Outcome of an S-repair computation.

    ``ratio_bound`` is a proven upper bound on
    ``dist_sub(repair)/dist_sub(optimal)`` — 1.0 when the repair is optimal.
    Decomposed computations additionally record the per-component method
    mix (``method_counts``, portfolio method → number of components) and
    the component count; both are ``None`` on global computations.
    """

    repair: Table
    distance: float
    optimal: bool
    ratio_bound: float
    method: str
    method_counts: Optional[Mapping[str, int]] = None
    component_count: Optional[int] = None


def opt_s_repair(fds: FDSet, table: Table) -> Table:
    """``OptSRepair(Δ, T)`` — Algorithm 1.

    Returns an optimal S-repair of *table* under *fds*, or raises
    :class:`DichotomyFailure` when the FD set is on the hard side of the
    dichotomy.  Following Section 3 we first normalise Δ so that every FD
    has a single attribute on its right-hand side (this preserves
    equivalence).
    """
    return _opt_s_repair(fds.with_singleton_rhs(), table)


def _opt_s_repair(fds: FDSet, table: Table) -> Table:
    fds = fds.without_trivial()
    if fds.is_trivial:  # successful termination (line 1–2)
        return table
    common = fds.common_lhs()
    if common:  # line 4–5
        return _common_lhs_rep(fds, table, min(sorted(common)))
    consensus = fds.consensus_fds()
    if consensus:  # line 6–7
        return _consensus_rep(fds, table, consensus[0])
    marriages = fds.lhs_marriages()
    if marriages:  # line 8–9
        return _marriage_rep(fds, table, marriages[0])
    raise DichotomyFailure(fds)  # line 10


def _common_lhs_rep(fds: FDSet, table: Table, attr: str) -> Table:
    """Subroutine 1 (``CommonLHSRep``): group by a common-lhs attribute.

    Tuples in different A-blocks disagree on A and hence on the lhs of
    every FD, so blocks never conflict and the union of per-block optimal
    repairs is optimal (Lemma A.1).
    """
    reduced = fds.minus((attr,))
    result: Optional[Table] = None
    for ids in table.group_by((attr,)).values():
        block_repair = _opt_s_repair(reduced, table.subset(ids))
        result = block_repair if result is None else result.union(block_repair)
    return result if result is not None else table


def _consensus_rep(fds: FDSet, table: Table, consensus_fd: FD) -> Table:
    """Subroutine 2 (``ConsensusRep``): keep the heaviest A-block repair.

    Under ``∅ → A`` every consistent subset lives inside a single A-block,
    so we repair each block under ``Δ − A`` and return the block repair of
    maximum total weight (Lemma A.2).
    """
    (attr,) = tuple(consensus_fd.rhs)  # singleton-rhs normal form
    reduced = fds.minus((attr,))
    best: Optional[Table] = None
    best_weight = float("-inf")
    for ids in table.group_by((attr,)).values():
        block_repair = _opt_s_repair(reduced, table.subset(ids))
        weight = block_repair.total_weight()
        if weight > best_weight:
            best = block_repair
            best_weight = weight
    if best is None:  # empty table
        return table
    return best


def _marriage_rep(
    fds: FDSet, table: Table, marriage: Tuple[AttrSet, AttrSet]
) -> Table:
    """Subroutine 3 (``MarriageRep``): maximum-weight bipartite matching.

    With an lhs marriage ``(X1, X2)`` (and no common lhs), any consistent
    subset pairs each X1-value with at most one X2-value and vice versa.
    We compute the optimal repair of every co-occurring value block under
    ``Δ − X1X2``, weight the bipartite edge ``(a1, a2)`` by that repair's
    weight, take a maximum-weight matching, and return the union of the
    matched block repairs (Lemma A.3).
    """
    x1, x2 = marriage
    reduced = fds.minus(x1 | x2)
    combined = sorted(x1 | x2)

    # Group tuples by their (X1, X2) value pair.
    block_repairs: Dict[Tuple[Row, Row], Table] = {}
    edge_weights: Dict[Tuple[Row, Row], float] = {}
    for ids in table.group_by(combined).values():
        sample = ids[0]
        a1 = table.project(sample, x1)
        a2 = table.project(sample, x2)
        repair = _opt_s_repair(reduced, table.subset(ids))
        block_repairs[(a1, a2)] = repair
        edge_weights[(a1, a2)] = repair.total_weight()

    left = table.distinct_projection(x1)
    right = table.distinct_projection(x2)
    matching = max_weight_bipartite_matching(left, right, edge_weights)

    result: Optional[Table] = None
    for pair in matching:
        repair = block_repairs[pair]
        result = repair if result is None else result.union(repair)
    if result is None:  # empty table or empty matching
        return table.subset(())
    return result


def optimal_s_repair(
    table: Table,
    fds: FDSet,
    method: str = "auto",
    index=None,
    decomposed: Optional[bool] = None,
    parallel: Optional[int] = None,
    exact_budget_s: Optional[float] = None,
) -> SRepairResult:
    """High-level optimal S-repair with an automatic method choice.

    * ``method="dichotomy"`` — run ``OptSRepair`` (raises
      :class:`DichotomyFailure` on the hard side).
    * ``method="exact"`` — exact minimum-weight vertex cover of the
      conflict graph (works for every Δ, exponential worst case).
    * ``method="auto"`` — dichotomy when ``OSRSucceeds(Δ)``, exact
      otherwise.

    A prebuilt :class:`~repro.core.conflict_index.ConflictIndex` may be
    passed to share violation detection across entry points (the exact
    path consumes it; the dichotomy path never builds a conflict graph).

    ``decomposed=True`` solves per conflict component instead of
    globally (the chosen method applied to each component; only the
    conflicting tuples ever enter a solver), optionally across
    ``parallel`` worker processes.  Requesting ``parallel`` implies
    decomposition.  The repair distance is identical either way.

    The result is always a true optimal S-repair (``ratio_bound == 1``)
    — unless *exact_budget_s* is set and an exact vertex-cover solve
    outruns it: the decomposed path then re-solves that component with
    the 2-approximation (reported in the method mix), while the global
    exact path lets
    :class:`~repro.graphs.vertex_cover.ExactBudgetExceeded` propagate
    (there is no per-component fallback to offer).  The dichotomy path
    is polynomial and ignores the budget.
    """
    from .dichotomy import osr_succeeds  # local import to avoid a cycle
    from .exact import exact_s_repair

    if method not in ("auto", "dichotomy", "exact"):
        raise ValueError(f"unknown method {method!r}")
    if decomposed is None:
        decomposed = bool(parallel and parallel > 1)
    if decomposed:
        from ..exec import decomposed_s_repair  # deferred: exec imports us

        if method == "auto":
            # The "optimal" portfolio: dichotomy where Δ permits, exact
            # vertex cover otherwise — optimal at every component size.
            return decomposed_s_repair(
                table, fds, guarantee="optimal", parallel=parallel,
                index=index, budget_s=exact_budget_s,
            )
        return decomposed_s_repair(
            table, fds, method=method, parallel=parallel, index=index,
            budget_s=exact_budget_s,
        )
    if method == "dichotomy" or (method == "auto" and osr_succeeds(fds)):
        repair = opt_s_repair(fds, table)
        used = "OptSRepair"
    else:
        repair = exact_s_repair(table, fds, index=index,
                                exact_budget_s=exact_budget_s)
        used = "exact-vertex-cover"
    return SRepairResult(
        repair=repair,
        distance=table.dist_sub(repair),
        optimal=True,
        ratio_bound=1.0,
        method=used,
    )
