"""Repair checking: the local-minimality notions of Section 2.3.

The paper works with *global* optima but defines the classical repair
notions for compatibility with the literature [1]:

* a **subset repair** (S-repair) is a consistent subset that is not
  strictly contained in any other consistent subset — i.e. a *maximal*
  consistent subset;
* an **update repair** (U-repair) is a consistent update that becomes
  inconsistent if any nonempty set of updated values is restored to the
  original values.

This module provides checkers for both (the repair-checking problem of
Afrati & Kolaitis [1]), used by the test suite to certify that the
optimal repairs our algorithms produce are repairs in the local sense
too — every optimal S-repair is maximal, and every optimal U-repair
restores no cell for free.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Tuple

from .fd import FDSet
from .table import Table, TupleId
from .violations import satisfies

__all__ = [
    "is_consistent_subset",
    "is_s_repair",
    "is_consistent_update",
    "is_u_repair",
    "non_restorable_cells",
]


def is_consistent_subset(table: Table, fds: FDSet, subset: Table) -> bool:
    """True iff *subset* is a subset of *table* satisfying Δ."""
    return subset.is_subset_of(table) and satisfies(subset, fds)


def is_s_repair(table: Table, fds: FDSet, subset: Table) -> bool:
    """True iff *subset* is a *maximal* consistent subset (an S-repair).

    Maximality for FDs is checkable one tuple at a time: a consistent
    subset is maximal iff no single excluded tuple can be added back —
    adding a tuple can only create violations involving that tuple.
    """
    if not is_consistent_subset(table, fds, subset):
        return False
    kept = list(subset.ids())
    for tid in table.ids():
        if tid in subset:
            continue
        if satisfies(table.subset([*kept, tid]), fds):
            return False
    return True


def is_consistent_update(table: Table, fds: FDSet, update: Table) -> bool:
    """True iff *update* is an update of *table* satisfying Δ."""
    return update.is_update_of(table) and satisfies(update, fds)


def non_restorable_cells(
    table: Table, fds: FDSet, update: Table
) -> List[Tuple[TupleId, str]]:
    """The changed cells that cannot *individually* be restored.

    A changed cell is individually restorable when resetting just that
    cell to its original value keeps the update consistent.  U-repair
    minimality requires that **no set** of changed cells is restorable;
    see :func:`is_u_repair` for the full (exponential in the number of
    changed cells) check.
    """
    out = []
    for tid, attr in update.changed_cells(table):
        restored = update.with_updates({(tid, attr): table.value(tid, attr)})
        if not satisfies(restored, fds):
            out.append((tid, attr))
    return out


def is_u_repair(
    table: Table, fds: FDSet, update: Table, max_changed_cells: int = 16
) -> bool:
    """True iff *update* is a U-repair: consistent, and restoring any
    nonempty subset of its changed cells breaks consistency.

    Exact by subset enumeration over the changed cells (2^c checks);
    guarded by *max_changed_cells*.  Optimal U-repairs always pass: if a
    restorable subset existed, restoring it would give a cheaper
    consistent update.
    """
    if not is_consistent_update(table, fds, update):
        return False
    changed = update.changed_cells(table)
    if len(changed) > max_changed_cells:
        raise ValueError(
            f"is_u_repair limited to {max_changed_cells} changed cells, "
            f"got {len(changed)}"
        )
    for r in range(1, len(changed) + 1):
        for cells in itertools.combinations(changed, r):
            restored = update.with_updates(
                {cell: table.value(*cell) for cell in cells}
            )
            if satisfies(restored, fds):
                return False
    return True
