"""Functional dependencies and FD sets (Section 2.2 of the paper).

This module implements the FD calculus that every other part of the library
builds on:

* :class:`FD` — a single functional dependency ``X → Y`` over attribute
  names, with the paper's notions of *trivial* and *consensus* FDs.
* :class:`FDSet` — an ordered, duplicate-free collection of FDs with
  closures, entailment, equivalence, the attribute-removal operator
  ``Δ − X``, and the structural tests used by the dichotomy:
  *common lhs*, *consensus attributes* (``cl_Δ(∅)``), *lhs marriages*,
  *local minima*, *chain* FD sets, and the *minimum lhs cover* ``mlc(Δ)``.

Attribute values are plain strings.  Attribute *sets* are ``frozenset`` of
strings throughout; the helper :func:`attrset` accepts either an iterable of
names or a single whitespace/comma separated string (mirroring the paper's
convention of writing attribute sets without braces, e.g. ``"A B C"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

Attribute = str
AttrSet = FrozenSet[Attribute]

__all__ = [
    "Attribute",
    "AttrSet",
    "attrset",
    "FD",
    "FDSet",
    "parse_fd",
    "parse_fd_set",
]


def attrset(attrs: Union[str, Iterable[Attribute], None]) -> AttrSet:
    """Normalise *attrs* into a frozenset of attribute names.

    Accepts ``None`` (empty set), an iterable of names, or a single string
    in which attribute names are separated by whitespace and/or commas::

        >>> sorted(attrset("A, B C"))
        ['A', 'B', 'C']
        >>> attrset(None)
        frozenset()
    """
    if attrs is None:
        return frozenset()
    if isinstance(attrs, str):
        parts = attrs.replace(",", " ").split()
        return frozenset(parts)
    return frozenset(attrs)


def _format_attrs(attrs: AttrSet) -> str:
    """Render an attribute set the way the paper writes it (``A B C``)."""
    if not attrs:
        return "∅"
    return " ".join(sorted(attrs))


@dataclass(frozen=True)
class FD:
    """A functional dependency ``lhs → rhs`` (Section 2.2).

    Both sides are attribute sets.  An empty ``lhs`` denotes a *consensus*
    FD ``∅ → Y``; an FD with ``rhs ⊆ lhs`` is *trivial*.

    Instances are immutable and hashable, so they can live in sets and be
    used as dictionary keys.
    """

    lhs: AttrSet
    rhs: AttrSet

    def __init__(
        self,
        lhs: Union[str, Iterable[Attribute], None],
        rhs: Union[str, Iterable[Attribute], None],
    ) -> None:
        object.__setattr__(self, "lhs", attrset(lhs))
        object.__setattr__(self, "rhs", attrset(rhs))

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """True iff ``rhs ⊆ lhs`` — satisfied by every table."""
        return self.rhs <= self.lhs

    @property
    def is_consensus(self) -> bool:
        """True iff the lhs is empty (``∅ → Y``)."""
        return not self.lhs

    @property
    def attributes(self) -> AttrSet:
        """All attributes mentioned in the FD (lhs ∪ rhs)."""
        return self.lhs | self.rhs

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def minus(self, attrs: Union[str, Iterable[Attribute]]) -> "FD":
        """The FD with the attributes *attrs* erased from both sides.

        This is the per-FD piece of the paper's ``Δ − X`` operator.
        """
        drop = attrset(attrs)
        return FD(self.lhs - drop, self.rhs - drop)

    def with_singleton_rhs(self) -> Tuple["FD", ...]:
        """Decompose ``X → A1…An`` into ``(X→A1, …, X→An)``.

        An empty-rhs FD decomposes into the empty tuple (it is trivial).
        """
        return tuple(FD(self.lhs, (a,)) for a in sorted(self.rhs))

    # ------------------------------------------------------------------
    # Parsing / rendering
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FD":
        """Parse ``"A B -> C"`` (or with ``→``) into an FD.

        The lhs may be empty (``"-> C"`` is the consensus FD ``∅ → C``).
        """
        normalised = text.replace("→", "->")
        if "->" not in normalised:
            raise ValueError(f"not an FD (missing '->'): {text!r}")
        left, _, right = normalised.partition("->")
        rhs = attrset(right)
        if not rhs:
            raise ValueError(f"FD with empty rhs: {text!r}")
        return cls(attrset(left), rhs)

    def __str__(self) -> str:
        return f"{_format_attrs(self.lhs)} → {_format_attrs(self.rhs)}"

    def __repr__(self) -> str:
        return f"FD({_format_attrs(self.lhs)!r}, {_format_attrs(self.rhs)!r})"


def parse_fd(text: str) -> FD:
    """Convenience alias for :meth:`FD.parse`."""
    return FD.parse(text)


def _coerce_fd(fd: Union[FD, str]) -> FD:
    if isinstance(fd, FD):
        return fd
    if isinstance(fd, str):
        return FD.parse(fd)
    raise TypeError(f"cannot interpret {fd!r} as an FD")


class FDSet:
    """An ordered, duplicate-free set ``Δ`` of functional dependencies.

    The class exposes every structural operation the paper's algorithms
    need.  Instances are immutable; all transformation methods return new
    ``FDSet`` objects.

    Construction accepts FDs, FD strings, or a single ``;``-separated
    string::

        >>> FDSet("A -> B; B -> C")
        FDSet[A → B, B → C]
        >>> FDSet([FD("A", "B"), "B -> C"])
        FDSet[A → B, B → C]
    """

    __slots__ = ("_fds", "_attr_cache")

    def __init__(self, fds: Union[str, Iterable[Union[FD, str]], None] = None):
        if fds is None:
            items: List[FD] = []
        elif isinstance(fds, str):
            items = [FD.parse(part) for part in fds.split(";") if part.strip()]
        else:
            items = [_coerce_fd(fd) for fd in fds]
        seen: Set[FD] = set()
        unique: List[FD] = []
        for fd in items:
            if fd not in seen:
                seen.add(fd)
                unique.append(fd)
        self._fds: Tuple[FD, ...] = tuple(unique)
        self._attr_cache: Optional[AttrSet] = None

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[FD]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    def __contains__(self, fd: Union[FD, str]) -> bool:
        return _coerce_fd(fd) in set(self._fds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FDSet):
            return NotImplemented
        return set(self._fds) == set(other._fds)

    def __hash__(self) -> int:
        return hash(frozenset(self._fds))

    def __str__(self) -> str:
        return "{" + ", ".join(str(fd) for fd in self._fds) + "}"

    def __repr__(self) -> str:
        return "FDSet[" + ", ".join(str(fd) for fd in self._fds) + "]"

    @property
    def fds(self) -> Tuple[FD, ...]:
        return self._fds

    # ------------------------------------------------------------------
    # Attributes and closure
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> AttrSet:
        """``attr(Δ)`` — all attributes appearing in some FD of Δ."""
        if self._attr_cache is None:
            acc: Set[Attribute] = set()
            for fd in self._fds:
                acc |= fd.attributes
            self._attr_cache = frozenset(acc)
        return self._attr_cache

    def closure(self, attrs: Union[str, Iterable[Attribute], None] = None) -> AttrSet:
        """``cl_Δ(X)`` — all attributes A with ``Δ ⊨ X → A``.

        Standard fixpoint computation; linear passes over Δ until no FD
        fires.  ``closure(None)`` / ``closure(())`` gives ``cl_Δ(∅)``, the
        set of *consensus attributes*.
        """
        result: Set[Attribute] = set(attrset(attrs))
        changed = True
        while changed:
            changed = False
            for fd in self._fds:
                if fd.lhs <= result and not fd.rhs <= result:
                    result |= fd.rhs
                    changed = True
        return frozenset(result)

    def entails(self, fd: Union[FD, str]) -> bool:
        """``Δ ⊨ X → Y`` — true iff ``Y ⊆ cl_Δ(X)``."""
        fd = _coerce_fd(fd)
        return fd.rhs <= self.closure(fd.lhs)

    def is_equivalent(self, other: "FDSet") -> bool:
        """True iff the two FD sets have the same closure."""
        return all(other.entails(fd) for fd in self._fds) and all(
            self.entails(fd) for fd in other
        )

    # ------------------------------------------------------------------
    # Triviality / consensus
    # ------------------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """True iff Δ contains no nontrivial FD (e.g. Δ is empty)."""
        return all(fd.is_trivial for fd in self._fds)

    def without_trivial(self) -> "FDSet":
        """Δ with trivial FDs removed (line 3 of Algorithm 1)."""
        return FDSet(fd for fd in self._fds if not fd.is_trivial)

    def with_singleton_rhs(self) -> "FDSet":
        """Equivalent FD set in which every rhs is a single attribute.

        Trivial fragments (``X → A`` with ``A ∈ X``) are dropped; the result
        is the normal form assumed throughout Section 3 of the paper.
        """
        out: List[FD] = []
        for fd in self._fds:
            for piece in fd.with_singleton_rhs():
                if not piece.is_trivial:
                    out.append(piece)
        return FDSet(out)

    def consensus_fds(self) -> Tuple[FD, ...]:
        """All nontrivial consensus FDs ``∅ → Y`` in Δ."""
        return tuple(fd for fd in self._fds if fd.is_consensus and not fd.is_trivial)

    def consensus_attributes(self) -> AttrSet:
        """``cl_Δ(∅)`` — every attribute A with ``Δ ⊨ ∅ → A``."""
        return self.closure(())

    @property
    def is_consensus_free(self) -> bool:
        """True iff Δ has no consensus attributes (Section 2.2)."""
        return not self.consensus_attributes()

    # ------------------------------------------------------------------
    # Δ − X
    # ------------------------------------------------------------------
    def minus(self, attrs: Union[str, Iterable[Attribute]]) -> "FDSet":
        """``Δ − X``: erase the attributes of X from every lhs and rhs.

        FDs that become trivial after erasure are kept (the paper's
        algorithms strip them explicitly); duplicates collapse.
        """
        drop = attrset(attrs)
        return FDSet(fd.minus(drop) for fd in self._fds)

    # ------------------------------------------------------------------
    # Structural features used by the dichotomy
    # ------------------------------------------------------------------
    def common_lhs(self) -> AttrSet:
        """Attributes appearing in the lhs of *every* FD in Δ.

        Returns the full set of common-lhs attributes; empty when Δ is empty
        or has no common lhs.
        """
        if not self._fds:
            return frozenset()
        common = set(self._fds[0].lhs)
        for fd in self._fds[1:]:
            common &= fd.lhs
            if not common:
                break
        return frozenset(common)

    def lhs_sets(self) -> Tuple[AttrSet, ...]:
        """The distinct lhs attribute sets of Δ, in first-seen order."""
        seen: Set[AttrSet] = set()
        out: List[AttrSet] = []
        for fd in self._fds:
            if fd.lhs not in seen:
                seen.add(fd.lhs)
                out.append(fd.lhs)
        return tuple(out)

    def lhs_marriages(self) -> Tuple[Tuple[AttrSet, AttrSet], ...]:
        """All lhs marriages of Δ (Section 3, *Assumptions and Notation*).

        A pair ``(X1, X2)`` of distinct lhs of FDs in Δ such that
        ``cl_Δ(X1) = cl_Δ(X2)`` and the lhs of every FD in Δ contains X1 or
        X2 (or both).  Pairs are returned in deterministic order.
        """
        lhss = self.lhs_sets()
        result: List[Tuple[AttrSet, AttrSet]] = []
        closures: Dict[AttrSet, AttrSet] = {X: self.closure(X) for X in lhss}
        for X1, X2 in combinations(lhss, 2):
            if closures[X1] != closures[X2]:
                continue
            if all(X1 <= fd.lhs or X2 <= fd.lhs for fd in self._fds):
                result.append((X1, X2))
        return tuple(result)

    def local_minima(self) -> Tuple[AttrSet, ...]:
        """Distinct lhs that are *local minima* (no other lhs ⊂ them).

        Used by the hardness-side classification (Section 3.3): an FD
        ``X → Y`` is a local minimum if no FD ``Z → W`` in Δ has ``Z ⊂ X``.
        """
        lhss = self.lhs_sets()
        minima = [
            X
            for X in lhss
            if not any(Z < X for Z in lhss)
        ]
        return tuple(minima)

    @property
    def is_chain(self) -> bool:
        """True iff the lhs of Δ are totally ordered by ⊆ (Section 2.2)."""
        lhss = self.lhs_sets()
        return all(
            X1 <= X2 or X2 <= X1 for X1, X2 in combinations(lhss, 2)
        )

    # ------------------------------------------------------------------
    # lhs covers (Section 4, Notation)
    # ------------------------------------------------------------------
    def lhs_covers(self, size: int) -> Iterator[AttrSet]:
        """Yield every lhs cover of Δ of exactly *size* attributes.

        An lhs cover is a set C of attributes hitting every lhs
        (``X ∩ C ≠ ∅`` for every FD ``X → Y``).  Only nontrivial FDs with a
        nonempty lhs constrain the cover; a consensus FD makes the notion
        undefined (no finite C hits ∅), and we raise in that case.
        """
        lhss = [fd.lhs for fd in self._fds if not fd.is_trivial]
        if any(not X for X in lhss):
            raise ValueError("lhs cover undefined: Δ has a consensus FD")
        universe = sorted(set().union(*lhss)) if lhss else []
        for combo in combinations(universe, size):
            cand = frozenset(combo)
            if all(X & cand for X in lhss):
                yield cand

    def minimum_lhs_cover(self) -> AttrSet:
        """A minimum-cardinality lhs cover of Δ (brute force, Δ is small).

        Returns ∅ when Δ has no nontrivial FDs.  Raises ``ValueError`` if Δ
        contains a nontrivial consensus FD (no cover can hit an empty lhs).
        """
        lhss = [fd.lhs for fd in self._fds if not fd.is_trivial]
        if not lhss:
            return frozenset()
        if any(not X for X in lhss):
            raise ValueError("lhs cover undefined: Δ has a consensus FD")
        universe = sorted(set().union(*lhss))
        for size in range(1, len(universe) + 1):
            for cover in self.lhs_covers(size):
                return cover
        raise AssertionError("unreachable: the full universe is always a cover")

    def mlc(self) -> int:
        """``mlc(Δ)`` — the minimum cardinality of an lhs cover."""
        return len(self.minimum_lhs_cover())

    # ------------------------------------------------------------------
    # Decomposition (Theorem 4.1)
    # ------------------------------------------------------------------
    def attribute_disjoint_components(self) -> Tuple["FDSet", ...]:
        """Partition Δ into maximal attribute-disjoint sub-FD-sets.

        Two FDs belong to the same component iff their attribute sets are
        connected through shared attributes.  Theorem 4.1 lets us repair
        each component independently.
        """
        if not self._fds:
            return ()
        parent: Dict[FD, FD] = {fd: fd for fd in self._fds}

        def find(x: FD) -> FD:
            while parent[x] is not x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: FD, b: FD) -> None:
            ra, rb = find(a), find(b)
            if ra is not rb:
                parent[ra] = rb

        by_attr: Dict[Attribute, FD] = {}
        for fd in self._fds:
            for a in fd.attributes:
                if a in by_attr:
                    union(by_attr[a], fd)
                else:
                    by_attr[a] = fd
        groups: Dict[FD, List[FD]] = {}
        for fd in self._fds:
            groups.setdefault(find(fd), []).append(fd)
        return tuple(FDSet(group) for group in groups.values())

    # ------------------------------------------------------------------
    # Minimal cover (standard FD theory; convenience for library users)
    # ------------------------------------------------------------------
    def minimal_cover(self) -> "FDSet":
        """A minimal cover of Δ: singleton rhs, no extraneous lhs
        attributes, no redundant FDs.  Equivalent to Δ.
        """
        fds = list(self.with_singleton_rhs())
        # Remove extraneous lhs attributes.
        reduced: List[FD] = []
        for fd in fds:
            lhs = set(fd.lhs)
            for a in sorted(fd.lhs):
                trimmed = frozenset(lhs - {a})
                if fd.rhs <= FDSet(fds).closure(trimmed):
                    lhs.discard(a)
            reduced.append(FD(frozenset(lhs), fd.rhs))
        # Remove redundant FDs.
        result = list(reduced)
        for fd in list(reduced):
            rest = [g for g in result if g != fd]
            if FDSet(rest).entails(fd):
                result = rest
        return FDSet(result)

    # ------------------------------------------------------------------
    # Keys (convenience)
    # ------------------------------------------------------------------
    def is_key(self, attrs: Union[str, Iterable[Attribute]], schema: Union[str, Iterable[Attribute]]) -> bool:
        """True iff *attrs* functionally determines the whole *schema*."""
        return attrset(schema) <= self.closure(attrs)


def parse_fd_set(text: str) -> FDSet:
    """Parse a ``;``-separated FD list, e.g. ``"A -> B; B -> C"``."""
    return FDSet(text)
