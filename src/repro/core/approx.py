"""Approximation algorithms and approximation-ratio formulas (§3.1, §4.4).

S-repairs
---------
:func:`approx_s_repair` implements Proposition 3.3: the conflict graph's
minimum-weight vertex cover is 2-approximated by the Bar-Yehuda–Even
local-ratio algorithm; deleting the cover yields a 2-optimal S-repair.
We additionally grow the kept set to a *maximal* independent set, which
can only reduce the distance and makes the result a subset repair in the
local-minimum sense.

U-repairs
---------
:func:`approx_u_repair` implements Theorem 4.12 (ratio ``2·mlc(Δ)``),
strengthened by Theorem 4.1 (attribute-disjoint decomposition, the ratio
becomes ``2·max_i mlc(Δ_i)``) and Theorem 4.3 (consensus attributes are
repaired optimally by weighted majority and cost nothing extra).
The construction is Proposition 4.4(2): compute a (2-approximate) S-repair
and update a minimum lhs cover of every deleted tuple to fresh constants.

Ratio formulas
--------------
``MFS(Δ)``, ``MCI(Δ)`` and the Kolahi–Lakshmanan guarantee
``(MCI+2)(2·MFS−1)`` of Theorem 4.13 are computed exactly from Δ, enabling
the Section 4.4 comparison between the two incomparable guarantees (our
``2·mlc`` is Θ(k) on ``Δ_k`` where theirs is Θ(k²), and vice versa on
``Δ'_k``).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..graphs.vertex_cover import bar_yehuda_even, maximalize_independent_set
from .conflict_index import ConflictIndex
from .fd import FDSet, AttrSet, attrset
from .srepair import SRepairResult
from .table import FreshValue, Table, TupleId

__all__ = [
    "approx_s_repair",
    "greedy_s_repair",
    "approx_u_repair",
    "u_repair_from_s_repair",
    "s_repair_from_u_repair",
    "consensus_majority_update",
    "mfs",
    "minimal_implicants",
    "minimal_implicants_brute",
    "core_implicant_size",
    "mci",
    "kl_ratio",
    "our_ratio",
]


# ---------------------------------------------------------------------------
# S-repair 2-approximation (Proposition 3.3)
# ---------------------------------------------------------------------------

def approx_s_repair(
    table: Table,
    fds: FDSet,
    index: Optional[ConflictIndex] = None,
    decomposed: bool = False,
    parallel: Optional[int] = None,
) -> SRepairResult:
    """A 2-optimal S-repair in polynomial time (Proposition 3.3).

    Takes a Bar-Yehuda–Even 2-approximate minimum-weight vertex cover of
    the conflict graph and keeps the complement (grown to a maximal
    independent set).  The deleted weight is at most twice the optimum;
    the reduction is strict, so the bound transfers verbatim.

    Both vertex-cover passes read the (cached or prebuilt)
    :class:`ConflictIndex` directly — no per-call graph rebuild.

    ``decomposed=True`` (implied by ``parallel``) runs the construction
    per conflict component.  BYE's local-ratio payments and the
    maximalisation are both component-local operations, so the decomposed
    repair is *identical* to the global one — decomposition here buys
    parallelism, not a different answer.
    """
    if decomposed or (parallel and parallel > 1):
        from ..exec import decomposed_s_repair  # deferred: exec imports us

        return decomposed_s_repair(
            table, fds, method="approx", parallel=parallel, index=index
        )
    if index is None:
        index = table.conflict_index(fds)
    else:
        index.ensure_for(fds, table)
    cover = bar_yehuda_even(index)
    independent = {tid for tid in table.ids() if tid not in cover}
    independent = maximalize_independent_set(index, independent)
    repair = table.subset([tid for tid in table.ids() if tid in independent])
    return SRepairResult(
        repair=repair,
        distance=table.dist_sub(repair),
        optimal=False,
        ratio_bound=2.0,
        method="bar-yehuda-even",
    )


def greedy_s_repair(
    table: Table,
    fds: FDSet,
    index: Optional[ConflictIndex] = None,
    decomposed: bool = False,
    parallel: Optional[int] = None,
) -> SRepairResult:
    """A fast heuristic S-repair by greedy conflict-driven deletion.

    Repeatedly deletes the live tuple minimising weight/degree until no
    conflict remains, then grows the survivors to a maximal independent
    set of the original index.  A kernel-backed index runs the loop
    array-native — flat weight/degree arrays and ``alive`` flags over
    the CSR view (or neighbour bitmasks on a small live index), see
    :func:`repro.core.kernel.greedy_cover_csr` — with the identical
    victim sequence; the reference works on a mutable index copy, each
    deletion an *incremental* update (O(degree + |Δ|)).  Victims come
    off a lazy min-heap either way, so the loop is
    O((|T| + conflicts)·log |T|) — the seed equivalent rebuilt the
    conflict structure per deletion.

    No approximation guarantee (classic weight/degree greedy can be off
    by Θ(log n)); exists as the cheap entry in benchmark comparisons and
    as the canonical consumer of incremental index maintenance.

    ``decomposed=True`` (implied by ``parallel``) runs the deletion loop
    per conflict component; victims in one component never change
    weight/degree keys in another, so the decomposed survivor set equals
    the global one.
    """
    if decomposed or (parallel and parallel > 1):
        from ..exec import decomposed_s_repair  # deferred: exec imports us

        return decomposed_s_repair(
            table, fds, method="greedy", parallel=parallel, index=index
        )
    if index is None:
        index = table.conflict_index(fds)
    else:
        index.ensure_for(fds, table)
    survivors = index.kernel_greedy_survivors()
    if survivors is None:
        live = index.copy()
        # Lazy heap: removal only ever *lowers* neighbours' degrees, i.e.
        # raises their weight/degree key, so a popped entry whose stored
        # key is stale (too small) is re-pushed at its current key; the
        # first up-to-date pop is the true minimum.  Ties break by
        # str(tid), then table position — ids themselves may be of mixed,
        # unorderable types, so they must never reach the tuple
        # comparison.
        heap = [
            (live.weight(tid) / degree, str(tid), position, tid)
            for position, tid in enumerate(live.ids())
            if (degree := live.degree(tid)) > 0
        ]
        heapq.heapify(heap)
        while not live.is_consistent():
            key, label, position, tid = heapq.heappop(heap)
            if tid not in live:
                continue
            degree = live.degree(tid)
            if degree == 0:
                continue  # conflict-free now; degrees never rise again
            current = live.weight(tid) / degree
            if current > key:
                heapq.heappush(heap, (current, label, position, tid))
                continue
            live.remove(tid)
        survivors = set(live.ids())
    independent = maximalize_independent_set(index, survivors)
    repair = table.subset([tid for tid in table.ids() if tid in independent])
    return SRepairResult(
        repair=repair,
        distance=table.dist_sub(repair),
        optimal=False,
        ratio_bound=float("inf"),
        method="greedy-degree (incremental index)",
    )


# ---------------------------------------------------------------------------
# The Proposition 4.4 constructions
# ---------------------------------------------------------------------------

def s_repair_from_u_repair(table: Table, update: Table) -> Table:
    """Proposition 4.4(1): consistent update → consistent subset.

    Keep exactly the tuples the update left intact.  The deleted weight is
    at most the update distance, because every deleted tuple had at least
    one changed cell.
    """
    keep = [
        tid for tid in table.ids() if update[tid] == table[tid]
    ]
    return table.subset(keep)


def u_repair_from_s_repair(
    table: Table,
    fds: FDSet,
    s_repair: Table,
    cover: Optional[AttrSet] = None,
) -> Table:
    """Proposition 4.4(2): consistent subset → consistent update.

    Requires a consensus-free Δ.  Every tuple missing from the subset gets
    the attributes of an lhs cover ``C`` (default: a minimum one) replaced
    by fresh constants; tuples of the subset stay intact.  Two distinct
    tuples can then agree on the lhs of an FD only if both are intact, so
    the result is consistent, at distance ``|C| · dist_sub(s_repair)``.
    """
    if not fds.is_consensus_free:
        raise ValueError(
            "u_repair_from_s_repair requires a consensus-free FD set "
            "(Proposition 4.4); strip consensus attributes first "
            "(Theorem 4.3)"
        )
    if cover is None:
        cover = fds.minimum_lhs_cover()
    kept = set(s_repair.ids())
    updates = {}
    for tid in table.ids():
        if tid in kept:
            continue
        for attr in sorted(cover):
            updates[(tid, attr)] = FreshValue()
    return table.with_updates(updates)


# ---------------------------------------------------------------------------
# Consensus attributes: optimal update by weighted majority (Prop. B.2)
# ---------------------------------------------------------------------------

def consensus_majority_update(
    table: Table, attributes: AttrSet
) -> Dict[Tuple[TupleId, str], object]:
    """Optimal cell updates enforcing ``∅ → A`` for each A in *attributes*.

    For each attribute independently, keep the value of maximum total
    weight and rewrite every other cell to it (Proposition B.2 /
    Corollary B.3; per-attribute decoupling is valid because the weighted
    Hamming distance is a sum over attributes and any value combination is
    permitted).  Returns the update mapping; empty table → no updates.
    """
    updates: Dict[Tuple[TupleId, str], object] = {}
    if not len(table):
        return updates
    for attr in sorted(attributes):
        weight_by_value: Dict[object, float] = {}
        for tid, _row, weight in table.tuples():
            value = table.value(tid, attr)
            weight_by_value[value] = weight_by_value.get(value, 0.0) + weight
        majority = max(
            weight_by_value.items(), key=lambda item: (item[1], -_rank(table, attr, item[0]))
        )[0]
        for tid in table.ids():
            if table.value(tid, attr) != majority:
                updates[(tid, attr)] = majority
    return updates


def _rank(table: Table, attr: str, value: object) -> int:
    """First-seen position of *value* in column *attr* (tie-breaking)."""
    for position, tid in enumerate(table.ids()):
        if table.value(tid, attr) == value:
            return position
    return len(table)


# ---------------------------------------------------------------------------
# U-repair approximation (Theorem 4.12 + Theorems 4.1/4.3)
# ---------------------------------------------------------------------------

def approx_u_repair(
    table: Table, fds: FDSet, index: Optional[ConflictIndex] = None
) -> "URepairApproxResult":
    """A ``2·max_i mlc(Δ_i)``-optimal U-repair in polynomial time.

    Pipeline (each step cites its justification):

    1. normalise Δ; split into attribute-disjoint components — solving
       each independently preserves any ratio (Theorem 4.1);
    2. per component, repair the consensus attributes ``cl_Δ(∅)`` by
       weighted majority — optimal and free of ratio loss (Theorem 4.3,
       Proposition B.2), then recurse on ``Δ − cl_Δ(∅)``;
    3. per consensus-free component, compute a 2-approximate S-repair
       (Proposition 3.3) and convert it with Proposition 4.4(2) using a
       minimum lhs cover — ratio ``2·mlc`` (Theorem 4.12).

    A consistent table short-circuits to the zero-update result — via the
    prebuilt :class:`ConflictIndex` when passed (or the table's cached
    one), by streaming detection otherwise — so the reported guarantee
    never depends on whether an index was supplied.  Per-component
    S-repair subcalls share the table's index cache regardless.
    """
    from .urepair import URepairApproxResult  # avoid import cycle
    from .violations import satisfies

    normalised = fds.with_singleton_rhs().without_trivial()
    if index is not None:
        index.ensure_for(fds, table)
        consistent = index.is_consistent()
    else:
        consistent = satisfies(table, fds)
    if consistent:
        return URepairApproxResult(
            update=table,
            distance=0.0,
            optimal=True,
            ratio_bound=1.0,
            method="already consistent",
        )
    updates: Dict[Tuple[TupleId, str], object] = {}
    ratio = 1.0
    for component in normalised.attribute_disjoint_components():
        component_ratio = _approx_component(table, component, updates)
        ratio = max(ratio, component_ratio)
    update = table.with_updates(updates)
    return URepairApproxResult(
        update=update,
        distance=table.dist_upd(update),
        optimal=False,
        ratio_bound=ratio,
        method="2·mlc approximation (Thm 4.12 + Thm 4.1/4.3)",
    )


def _approx_component(
    table: Table, fds: FDSet, updates: Dict[Tuple[TupleId, str], object]
) -> float:
    """Approximate one attribute-disjoint component; returns its ratio."""
    consensus = fds.consensus_attributes()
    if consensus:
        updates.update(consensus_majority_update(table, consensus))
        rest = fds.minus(consensus).without_trivial()
        ratio = 1.0
        for sub in rest.attribute_disjoint_components():
            ratio = max(ratio, _approx_component(table, sub, updates))
        return ratio
    if fds.is_trivial:
        return 1.0
    cover = fds.minimum_lhs_cover()
    s_result = approx_s_repair(table, fds)
    converted = u_repair_from_s_repair(table, fds, s_result.repair, cover)
    for cell in converted.changed_cells(table):
        updates[cell] = converted.value(*cell)
    return 2.0 * len(cover)


# ---------------------------------------------------------------------------
# Ratio formulas (Section 4.4)
# ---------------------------------------------------------------------------

def mfs(fds: FDSet) -> int:
    """``MFS(Δ)`` — the maximum lhs size over Δ in singleton-rhs form."""
    normalised = fds.with_singleton_rhs().without_trivial()
    return max((len(fd.lhs) for fd in normalised), default=0)


def minimal_implicants_brute(fds: FDSet, attribute: str) -> List[AttrSet]:
    """Minimal implicants by subset enumeration (reference baseline).

    Exponential in ``|attr(Δ)|``; used to cross-validate
    :func:`minimal_implicants` on small FD sets.
    """
    universe = sorted(fds.attributes - {attribute})
    found: List[AttrSet] = []
    for size in range(0, len(universe) + 1):
        for combo in itertools.combinations(universe, size):
            cand = frozenset(combo)
            if any(prev <= cand for prev in found):
                continue
            if attribute in fds.closure(cand):
                found.append(cand)
    return found


def _implicant_antichains(
    fds: FDSet, combo_limit: int = 250_000
) -> Dict[str, Set[AttrSet]]:
    """For every attribute, the antichain of minimal implicant sets.

    Backward chaining to a fixpoint: each attribute starts with its
    trivial implicant ``{A}``; an FD ``Z → B`` contributes, for every
    choice of one implicant per attribute of Z, the union of the chosen
    sets as an implicant of B.  Insertions keep each family an antichain
    (supersets pruned), so the fixpoint holds exactly the minimal
    implicants (plus the trivial singleton).  Far faster than subset
    enumeration for the FD sets of Section 4.4's families.
    """
    normalised = fds.with_singleton_rhs().without_trivial()
    # Seed with the *unnormalised* attribute set: attributes whose FDs all
    # normalise away still have their trivial implicant.
    anti: Dict[str, Set[AttrSet]] = {
        a: {frozenset((a,))}
        for a in sorted(fds.attributes | normalised.attributes)
    }
    changed = True
    while changed:
        changed = False
        for fd in normalised:
            (target,) = tuple(fd.rhs)
            pools = [sorted(anti[a], key=sorted) for a in sorted(fd.lhs)]
            size = 1
            for pool in pools:
                size *= len(pool)
            if size > combo_limit:
                raise ValueError(
                    f"implicant computation exceeds {combo_limit} "
                    f"combinations for {fd}; use minimal_implicants_brute"
                )
            for combo in itertools.product(*pools):
                cand: AttrSet = frozenset().union(*combo)
                if any(existing <= cand for existing in anti[target]):
                    continue
                anti[target] = {
                    x for x in anti[target] if not cand <= x
                } | {cand}
                changed = True
    return anti


def minimal_implicants(fds: FDSet, attribute: str) -> List[AttrSet]:
    """All minimal implicants of *attribute* (Section 4.4 terminology).

    An implicant of A is a set X of attributes with ``A ∉ X`` and
    ``Δ ⊨ X → A``; the inclusion-minimal ones are computed by the
    backward-chaining fixpoint of :func:`_implicant_antichains`.
    """
    if attribute not in fds.attributes:
        return []
    antichain = _implicant_antichains(fds)[attribute]
    return sorted(
        (x for x in antichain if attribute not in x),
        key=lambda x: (len(x), sorted(x)),
    )


def core_implicant_size(
    fds: FDSet,
    attribute: str,
    implicants: Optional[List[AttrSet]] = None,
) -> int:
    """Size of a minimum core implicant of *attribute*.

    A core implicant hits every implicant of A; hitting all *minimal*
    implicants suffices.  Returns 0 when A has no implicants at all.
    Pass precomputed *implicants* to avoid recomputation.
    """
    if implicants is None:
        implicants = minimal_implicants(fds, attribute)
    if not implicants:
        return 0
    if any(not x for x in implicants):
        # ∅ is an implicant (A is a consensus attribute): no finite set
        # hits ∅; Kolahi–Lakshmanan assume consensus-free FD sets, and so
        # do we here.
        raise ValueError(
            f"core implicant undefined: {attribute} is a consensus attribute"
        )
    universe = sorted(set().union(*implicants))
    for size in range(1, len(universe) + 1):
        for combo in itertools.combinations(universe, size):
            cand = frozenset(combo)
            if all(x & cand for x in implicants):
                return size
    raise AssertionError("unreachable: the union of implicants is a hitting set")


def mci(fds: FDSet) -> int:
    """``MCI(Δ)`` — the largest minimum core implicant over all attributes."""
    if not fds.attributes:
        return 0
    antichains = _implicant_antichains(fds)
    best = 0
    for attribute in sorted(fds.attributes):
        implicants = [
            x for x in antichains[attribute] if attribute not in x
        ]
        best = max(best, core_implicant_size(fds, attribute, implicants))
    return best


def kl_ratio(fds: FDSet) -> int:
    """Kolahi–Lakshmanan's guarantee ``(MCI(Δ)+2)·(2·MFS(Δ)−1)``
    (Theorem 4.13)."""
    return (mci(fds) + 2) * (2 * mfs(fds) - 1)


def our_ratio(fds: FDSet) -> float:
    """This paper's guarantee ``2·max_i mlc(Δ_i)`` (Thm 4.12 + Thm 4.1).

    Consensus attributes are stripped first (Theorem 4.3 keeps the ratio);
    a trivial remainder means the U-repair is computed exactly (ratio 1).
    """
    normalised = fds.with_singleton_rhs().without_trivial()
    stripped = normalised.minus(normalised.consensus_attributes()).without_trivial()
    ratio = 1.0
    for component in stripped.attribute_disjoint_components():
        if component.is_trivial:
            continue
        ratio = max(ratio, 2.0 * component.mlc())
    return ratio
