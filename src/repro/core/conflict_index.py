"""Incrementally-maintained conflict substrate for FD repairs.

Every repair path in this library reduces to repeated violation detection
over a shrinking table: greedy vertex cover deletes one tuple at a time,
``OptSRepair`` recurses over sub-tables, the 2-approximation and the
assessment pipeline both need the full conflict graph.  The seed
implementation rebuilt the lhs/rhs hash groupings from scratch on every
call; this module materialises them once per ``(table, Δ)`` and keeps
them **live** under tuple removal.

A :class:`ConflictIndex` holds, per (nontrivial) FD ``X → Y``:

* a two-level bucket index ``lhs-key → rhs-key → {tuple ids}`` — the
  same hash grouping :func:`repro.core.violations.violating_pairs_of_fd`
  streams over, made persistent;
* the reverse map ``tuple id → (lhs-key, rhs-key)`` enabling O(1) bucket
  eviction;

plus the *materialised conflict graph* as an adjacency map with degree
and weight bookkeeping.  :meth:`remove` evicts one tuple in
O(degree + |Δ|) — the affected buckets only — instead of an O(|T|·|Δ|)
rebuild, which is what makes index-driven greedy deletion loops linear
instead of quadratic.  :meth:`insert` is the symmetric counterpart: a
new tuple joins its lhs buckets and gains exactly the conflict edges
its rhs disagreement implies, in O(lhs-group size + |Δ|) — the substrate
of the streaming :class:`repro.session.RepairSession`, which re-repairs
only the components a tuple delta touches.

The index quacks like :class:`repro.graphs.graph.Graph` for the read
access :func:`~repro.graphs.vertex_cover.bar_yehuda_even` and
:func:`~repro.graphs.vertex_cover.maximalize_independent_set` need
(``nodes`` / ``edges`` / ``weight`` / ``neighbors``), so those two
consume a live index directly.  The mutating algorithms
(:func:`~repro.graphs.vertex_cover.exact_min_weight_vertex_cover`,
:func:`~repro.graphs.vertex_cover.greedy_vertex_cover`) need a real
``Graph`` — materialise one with :meth:`graph`.

Instances cached on a table (via :meth:`repro.core.table.Table.conflict_index`)
are pristine and shared; call :meth:`copy` before mutating.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..graphs.graph import Graph
from . import kernel as _kernel
from .fd import FD, FDSet
from .table import Row, Table, TupleId, Value

__all__ = ["ConflictIndex"]


class _FDBuckets:
    """The live two-level hash grouping of one FD over the current tuples."""

    __slots__ = ("fd", "groups", "keys")

    def __init__(self, fd: FD) -> None:
        self.fd = fd
        # lhs-key → rhs-key → set of live tuple ids
        self.groups: Dict[Row, Dict[Row, Set[TupleId]]] = {}
        # tuple id → (lhs-key, rhs-key), for O(1) eviction
        self.keys: Dict[TupleId, Tuple[Row, Row]] = {}

    def add(self, tid: TupleId, lhs_key: Row, rhs_key: Row) -> None:
        group = self.groups.get(lhs_key)
        if group is None:
            group = self.groups[lhs_key] = {}
        bucket = group.get(rhs_key)
        if bucket is None:
            bucket = group[rhs_key] = set()
        bucket.add(tid)
        self.keys[tid] = (lhs_key, rhs_key)

    def discard(self, tid: TupleId) -> None:
        keys = self.keys.pop(tid, None)
        if keys is None:
            return
        lhs_key, rhs_key = keys
        group = self.groups[lhs_key]
        bucket = group[rhs_key]
        bucket.remove(tid)
        if not bucket:
            del group[rhs_key]
            if not group:
                del self.groups[lhs_key]

    def copy(self) -> "_FDBuckets":
        dup = _FDBuckets(self.fd)
        dup.groups = {
            lhs_key: {rhs_key: set(bucket) for rhs_key, bucket in group.items()}
            for lhs_key, group in self.groups.items()
        }
        dup.keys = dict(self.keys)
        return dup


class ConflictIndex:
    """Per-FD bucket indexes + the materialised conflict graph of a table.

    Parameters
    ----------
    table:
        The table to index.  The index snapshots the table's tuples at
        construction; subsequent :meth:`remove` calls shrink the *index*
        only (tables themselves are immutable).
    fds:
        The FD set Δ.  Trivial FDs are skipped (they cannot be violated).
    """

    __slots__ = (
        "fds",
        "_source",
        "_buckets",
        "_live",
        "_position",
        "_adj",
        "_num_edges",
        "_removed_weight",
        "_fd_specs",
        "_arity",
        "_next_position",
        "_position_shared",
        "_lazy_bucket_table",
        "_conflicting",
        "_use_kernel",
        "_codec",
        "_kernel",
        "_mask_cache",
    )

    def __init__(
        self, table: Table, fds: FDSet, use_kernel: Optional[bool] = None
    ) -> None:
        self.fds = fds
        self._source: "weakref.ref[Table]" = weakref.ref(table)
        self._live: Dict[TupleId, float] = dict(table._weights)
        self._position: Dict[TupleId, int] = {
            tid: i for i, tid in enumerate(self._live)
        }
        self._next_position = len(self._live)
        self._position_shared = False
        self._num_edges = 0
        self._removed_weight = 0.0
        self._arity = len(table.schema)
        # Per nontrivial FD: (fd, sorted-lhs positions, sorted-rhs
        # positions).  Immutable and shared by copies/projections; the
        # position lists are what :meth:`insert` and the lazy projection
        # rebuild key rows with, without needing the source table's
        # attribute map.
        self._fd_specs: List[Tuple[FD, List[int], List[int]]] = [
            (
                fd,
                [table._index[a] for a in sorted(fd.lhs)],
                [table._index[a] for a in sorted(fd.rhs)],
            )
            for fd in fds
            if not fd.is_trivial
        ]
        if use_kernel is None:
            use_kernel = _kernel.enabled()
        self._use_kernel: bool = bool(use_kernel)
        self._codec: Optional[_kernel.TableCodec] = None
        self._kernel: Optional[_kernel.ConflictKernel] = None
        self._mask_cache: Optional[Tuple[List[TupleId], List[float], List[int]]] = None
        # _conflicting: live tuples with at least one conflict,
        # maintained under insert/remove so components() costs
        # O(conflicting) instead of O(|T|) — on realistic dirtiness (a
        # few % of tuples conflicting) that is the difference between
        # re-decomposing per streaming delta and scanning the whole
        # table each time.  Each build branch derives it from what it
        # already has in hand.
        if self._use_kernel:
            self._build_with_kernel(table)
        else:
            self._adj: Dict[TupleId, Set[TupleId]] = {
                tid: set() for tid in self._live
            }
            self._lazy_bucket_table: Optional[Table] = None
            self._buckets: Optional[List[_FDBuckets]] = []
            for fd, _lhs_pos, rhs_pos in self._fd_specs:
                self._buckets.append(self._build_fd_buckets(table, fd, rhs_pos))
            self._conflicting: Set[TupleId] = {
                tid for tid, nbrs in self._adj.items() if nbrs
            }

    def _build_with_kernel(self, table: Table) -> None:
        """The columnar build: intern columns once, group by combined
        integer keys, and materialise the conflict graph from the flat
        edge arrays.

        Produces the same live/adjacency/edge-count state as the dict
        build (the kernel grouping is grouping by value equality, which
        is all the dict build observes); the per-FD buckets are left
        lazy — most consumers (the vertex-cover solvers, decomposition)
        never read them, and :meth:`_ensure_buckets` reconstructs them
        exactly when :meth:`insert` or :meth:`violating_pairs` does.
        """
        codec = _kernel.TableCodec.encode(table)
        kern = _kernel.ConflictKernel(
            codec, _kernel.build_conflict_edges(codec, self._fd_specs)
        )
        ids = codec.ids
        adj: Dict[TupleId, Set[TupleId]] = {tid: set() for tid in self._live}
        for u, v in zip(kern.edges_u, kern.edges_v):
            tu = ids[u]
            tv = ids[v]
            adj[tu].add(tv)
            adj[tv].add(tu)
        self._adj = adj
        self._num_edges = kern.num_edges
        self._conflicting = {ids[i] for i in kern.conflicting_rows}
        self._codec = codec
        self._kernel = kern
        # Lazy buckets, rebuilt on first use from the *codec* (which
        # holds every value) — deliberately NOT a strong table ref: the
        # index lives in table._cache, so holding the table here would
        # cycle table → cache → index → table and defeat the module's
        # weakref design.
        self._buckets = None
        self._lazy_bucket_table = None

    def _build_fd_buckets(
        self, table: Table, fd: FD, rhs_pos: List[int]
    ) -> _FDBuckets:
        """Bucket every tuple by (lhs, rhs) projection and materialise the
        conflict edges this FD contributes.

        *rhs_pos* holds the positions of the (canonically sorted) rhs
        attributes, resolved once per FD: projecting via raw row indexing
        keeps the build O(|T|·k) with no per-tuple attribute lookups.
        """
        buckets = _FDBuckets(fd)
        adj = self._adj
        rows = table._rows
        for lhs_key, ids in table.group_by(fd.lhs).items():
            if len(ids) == 1:
                tid = ids[0]
                row = rows[tid]
                buckets.add(tid, lhs_key, tuple(row[i] for i in rhs_pos))
                continue
            group: Dict[Row, List[TupleId]] = {}
            for tid in ids:
                row = rows[tid]
                rhs_key = tuple(row[i] for i in rhs_pos)
                buckets.add(tid, lhs_key, rhs_key)
                group.setdefault(rhs_key, []).append(tid)
            if len(group) < 2:
                continue
            parts = list(group.values())
            for i in range(len(parts)):
                for j in range(i + 1, len(parts)):
                    for t1 in parts[i]:
                        adj_t1 = adj[t1]
                        for t2 in parts[j]:
                            if t2 not in adj_t1:
                                adj_t1.add(t2)
                                adj[t2].add(t1)
                                self._num_edges += 1
        return buckets

    def ensure_for(self, fds: FDSet, table: Optional[Table] = None) -> "ConflictIndex":
        """Guard for entry points accepting a prebuilt index: raise if
        this index was built for a different FD set, or — when *table*
        is given — from a different table object (either mismatch means
        a silently-wrong repair; both are easy to hit when batching
        several Δ or tables).  FD-set comparison is order-insensitive;
        the table check is by identity against the construction-time
        source (held weakly), so equal-content copies are rejected too —
        rebuild or re-fetch the index via ``table.conflict_index(fds)``
        in that case.
        """
        if fds != self.fds:
            raise ValueError(
                f"ConflictIndex was built for {self.fds}, not {fds}"
            )
        if table is not None and self._source() is not table:
            raise ValueError(
                "ConflictIndex was built from a different table than the "
                "one passed alongside it"
            )
        return self

    # ------------------------------------------------------------------
    # Read access (Graph-compatible where it matters)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, tid: TupleId) -> bool:
        return tid in self._live

    def ids(self) -> Tuple[TupleId, ...]:
        """Live tuple identifiers, in table order."""
        return tuple(self._live)

    # Graph-compatible alias, so vertex-cover algorithms accept an index.
    nodes = ids

    def weight(self, tid: TupleId) -> float:
        return self._live[tid]

    def total_weight(self, ids: Optional[Iterable[TupleId]] = None) -> float:
        """Total weight of the live tuples (or of the given subset)."""
        if ids is None:
            return sum(self._live.values())
        live = self._live
        return sum(live[tid] for tid in ids)

    @property
    def removed_weight(self) -> float:
        """Total weight of the tuples removed so far."""
        return self._removed_weight

    def degree(self, tid: TupleId) -> int:
        return len(self._adj[tid])

    def neighbors(self, tid: TupleId) -> Set[TupleId]:
        """The live conflict partners of *tid* (read-only view)."""
        return self._adj[tid]

    @property
    def num_edges(self) -> int:
        return self._num_edges

    conflict_count = num_edges

    def is_consistent(self) -> bool:
        """True iff no violating pair survives among the live tuples."""
        return self._num_edges == 0

    def conflicting_tuples(self) -> List[TupleId]:
        """Live tuples involved in at least one conflict, in table order."""
        return sorted(self._conflicting, key=self._position.__getitem__)

    def edges(self) -> List[Tuple[TupleId, TupleId]]:
        """Each conflict pair exactly once, in canonical table-position
        order (both across and within source tuples).

        The canonical order makes every order-sensitive consumer (greedy
        matching, the Bar-Yehuda–Even sweep) produce identical results on
        a live index and on a from-scratch rebuild of the same survivors
        — adjacency *sets* iterate differently depending on their
        insertion/removal history.
        """
        position = self._position
        out: List[Tuple[TupleId, TupleId]] = []
        for tid, nbrs in self._adj.items():
            p = position[tid]
            forward = [other for other in nbrs if position[other] > p]
            if forward:
                forward.sort(key=position.__getitem__)
                out.extend((tid, other) for other in forward)
        return out

    conflicting_ids = edges

    def _ensure_buckets(self) -> List[_FDBuckets]:
        """Materialise the per-FD buckets of a lazily-projected index.

        :meth:`project` defers bucket construction: component indexes
        produced during decomposition are consumed adjacency-only by the
        vertex-cover solvers (and, in a streaming session, cache-hit
        components are never solved at all), so re-deriving their buckets
        eagerly would be pure waste.  The keys are pure row projections,
        so rebuilding them here from the strongly-held sub-table and the
        shared per-FD position lists is exact — removals that happened
        while lazy need no replay, because only live tuples are bucketed.
        """
        buckets_list = self._buckets
        if buckets_list is None:
            rows = self._lazy_bucket_rows()
            buckets_list = []
            for fd, lhs_pos, rhs_pos in self._fd_specs:
                buckets = _FDBuckets(fd)
                for tid in self._live:
                    row = rows[tid]
                    buckets.add(
                        tid,
                        tuple(row[i] for i in lhs_pos),
                        tuple(row[i] for i in rhs_pos),
                    )
                buckets_list.append(buckets)
            self._buckets = buckets_list
            self._lazy_bucket_table = None
        return buckets_list

    def _lazy_bucket_rows(self) -> Dict[TupleId, Row]:
        """The live rows a deferred bucket rebuild reads from.

        Projections hold their sub-table strongly
        (``_lazy_bucket_table``); a kernel-built full index decodes from
        its codec instead (same value objects, no table → index → table
        cycle); last resort is the construction-time weakref — alive in
        every supported flow, since whoever triggers a rebuild (insert,
        violating_pairs) reached the index through the table.
        """
        table = self._lazy_bucket_table
        if table is not None:
            return table._rows
        codec = self._codec
        if codec is not None:
            row_index = codec.row_index
            decode = codec.decode_row
            return {tid: decode(row_index[tid]) for tid in self._live}
        table = self._source()
        if table is None:
            raise RuntimeError(
                "deferred bucket rebuild needs the source table, which "
                "has been garbage-collected"
            )
        return table._rows

    def violating_pairs(self) -> Iterator[Tuple[TupleId, TupleId, FD]]:
        """Yield ``(t1, t2, fd)`` per violated FD from the live buckets.

        Like :func:`repro.core.violations.violating_pairs` but served from
        the materialised buckets; a pair violating several FDs is yielded
        once per FD.
        """
        for buckets in self._ensure_buckets():
            for group in buckets.groups.values():
                if len(group) < 2:
                    continue
                parts = list(group.values())
                for i in range(len(parts)):
                    for j in range(i + 1, len(parts)):
                        for t1 in parts[i]:
                            for t2 in parts[j]:
                                yield t1, t2, buckets.fd

    # ------------------------------------------------------------------
    # Connected components (the decomposition substrate)
    # ------------------------------------------------------------------
    def _kernel_view(self) -> Optional[_kernel.ConflictKernel]:
        """The live kernel view, sync-checked — or ``None`` (dict paths).

        The O(1) guard against the stale-snapshot hazard: every
        :meth:`insert`/:meth:`remove` patches the view's live-row count
        in lockstep with ``_live``, so a mutation that bypassed the
        patch hooks (the bug class this defends against — it would
        silently serve pre-mutation adjacency) trips the comparison and
        fails loudly instead.
        """
        kern = self._kernel
        if kern is not None and kern.live_count != len(self._live):
            raise RuntimeError(
                f"ConflictKernel view out of sync with the live index "
                f"({kern.live_count} kernel rows vs {len(self._live)} live "
                f"tuples): a mutation bypassed insert()/remove()"
            )
        return kern

    def components(self) -> List[List[TupleId]]:
        """Connected components of the live conflict graph, restricted to
        tuples with at least one conflict.

        Deterministic: components are listed by the table position of
        their earliest member, and members within a component are in
        table order.  Conflict-free tuples never appear — they belong to
        every repair verbatim (see :meth:`consistent_ids`).

        A pristine kernel-built index answers from the CSR arrays (row
        index *is* table position, so ascending row order is table order
        and the listing is identical).  A **patched** view stays
        array-native too:
        :func:`~repro.core.kernel.components_csr_patched` walks the CSR
        slices merged with the overflow adjacency under byte-flag
        alive/seen filters, rooted at the index's live conflicting rows
        (construction-time roots are stale after mutations, which is why
        :func:`~repro.core.kernel.components_csr` refuses patched views
        outright).  The dict sweep below remains the reference and the
        ``--no-kernel`` path.
        """
        kern = self._kernel_view()
        if kern is not None:
            ids = kern.codec.ids
            if not kern.patched:
                row_components = _kernel.components_csr(kern)
            else:
                row_index = kern.codec.row_index
                roots = sorted(row_index[tid] for tid in self._conflicting)
                row_components = _kernel.components_csr_patched(kern, roots)
            return [
                [ids[i] for i in members] for members in row_components
            ]
        position = self._position
        adj = self._adj
        seen: Set[TupleId] = set()
        out: List[List[TupleId]] = []
        # Roots visited in table (position) order yield components listed
        # by earliest member, identically to a full-table scan — but the
        # sweep only ever touches conflicting tuples.  The frontier step
        # is C-level set arithmetic (adj[v] - seen) rather than a
        # per-neighbour membership loop; traversal order becomes
        # arbitrary, which the final member sort erases.
        for tid in sorted(self._conflicting, key=position.__getitem__):
            if tid in seen:
                continue
            stack = [tid]
            seen.add(tid)
            members: List[TupleId] = []
            while stack:
                current = stack.pop()
                members.append(current)
                fresh = adj[current] - seen
                if fresh:
                    seen |= fresh
                    stack.extend(fresh)
            members.sort(key=position.__getitem__)
            out.append(members)
        return out

    def consistent_ids(self) -> List[TupleId]:
        """Live tuples with no conflict, in table order — the tuples every
        S-repair keeps and every U-repair leaves untouched."""
        return [tid for tid, nbrs in self._adj.items() if not nbrs]

    def project(self, subtable: Table, ids: Set[TupleId]) -> "ConflictIndex":
        """The restriction of this index to *ids*, re-anchored on
        *subtable* (which must contain exactly those tuples).

        Intended for connected components, where the projection is exact:
        adjacency is closed under the component, and every surviving
        bucket entry is simply filtered.  The projected index is seeded
        into *subtable*'s derived cache, so per-component solvers calling
        ``subtable.conflict_index(fds)`` reuse it instead of re-bucketing
        — this is what makes decomposition O(conflicting tuples) on top
        of the one shared parent build.

        Bucket projection is **lazy**: the vertex-cover solvers consume a
        component index adjacency-only, and a streaming session's
        cache-hit components are never solved at all, so the per-FD
        buckets are rebuilt from the (strongly held) sub-table's rows
        only if something actually reads or mutates them
        (:meth:`_ensure_buckets`).  Projection therefore costs the
        adjacency filter alone.
        """
        dup = object.__new__(ConflictIndex)
        dup.fds = self.fds
        dup._source = weakref.ref(subtable)
        live = self._live
        dup._live = {tid: live[tid] for tid in subtable.ids()}
        # Relative table order is preserved by subsetting, so sharing the
        # parent's position map keeps edges() canonical and cheap.
        dup._position = self._position
        dup._position_shared = True
        self._position_shared = True
        dup._next_position = self._next_position
        num_edges = 0
        adj: Dict[TupleId, Set[TupleId]] = {}
        conflicting: Set[TupleId] = set()
        for tid in dup._live:
            nbrs = self._adj[tid] & ids
            adj[tid] = nbrs
            if nbrs:
                conflicting.add(tid)
            num_edges += len(nbrs)
        dup._adj = adj
        dup._num_edges = num_edges // 2
        dup._conflicting = conflicting
        dup._removed_weight = 0.0
        dup._arity = self._arity
        dup._fd_specs = self._fd_specs
        # Kernel view: the fast-path flag carries over (components run
        # the bitmask BYE/exact paths); the parent's CSR arrays and
        # codec are row-indexed against the *parent* snapshot and are
        # not projected — the mask view rebuilds from the filtered
        # adjacency in O(component) when a fast path asks for it.
        dup._use_kernel = self._use_kernel
        dup._codec = None
        dup._kernel = None
        dup._mask_cache = None
        dup._buckets = None
        dup._lazy_bucket_table = subtable
        subtable._cache.setdefault(("conflict_index", self.fds), dup)
        return dup

    def graph(self) -> Graph:
        """Materialise the live conflict graph as a mutable ``Graph``
        (for consumers that destructively edit it, e.g. the exact
        vertex-cover branch & bound)."""
        g = Graph()
        for tid, weight in self._live.items():
            g.add_node(tid, weight=weight)
        for t1, t2 in self.edges():
            g.add_edge(t1, t2)
        return g

    def _mask_view(self) -> Optional[Tuple[List[TupleId], List[float], List[int]]]:
        """Members, weights, and neighbour bitmasks of a small live index.

        The bitmask view the kernel fast paths share: bit *i* is the
        *i*-th live tuple.  Live order is always ascending table
        position (removals preserve order, inserts append), so bit order
        matches the canonical ``edges()`` order.  Masks past 64 tuples
        are multi-word Python ints — still C-level word arrays — so the
        view serves every component up to
        :data:`~repro.core.kernel.MAX_BITMASK_VERTICES` tuples.  ``None``
        when the kernel is off for this index or the index is too large
        for masks to pay off.
        """
        if not self._use_kernel or len(self._live) > _kernel.MAX_BITMASK_VERTICES:
            return None
        cached = self._mask_cache
        if cached is not None:
            return cached
        members = list(self._live)
        position = {tid: i for i, tid in enumerate(members)}
        adjacency = self._adj
        masks = [0] * len(members)
        for i, tid in enumerate(members):
            mask = 0
            for other in adjacency[tid]:
                mask |= 1 << position[other]
            masks[i] = mask
        weights = [self._live[tid] for tid in members]
        view = (members, weights, masks)
        # Cached until the next mutation: assessment + exact solving of
        # one component would otherwise rebuild the same view three
        # times (BYE, matching bound, branch & bound).
        self._mask_cache = view
        return view

    def kernel_bye_cover(self) -> Optional[Set[TupleId]]:
        """Array fast path for :func:`~repro.graphs.vertex_cover.bar_yehuda_even`.

        A kernel-built index — pristine *or* incrementally patched —
        runs the local-ratio sweep over its flat CSR edge arrays (merged
        with the overflow adjacency after mutations); a small live index
        — the per-component case — over neighbour bitmasks.  All visit
        the edges in the same canonical order as the dict reference, so
        the cover is identical.  ``None`` means "no fast path; run the
        reference loop".
        """
        kern = self._kernel_view()
        if kern is not None:
            ids = kern.codec.ids
            return {ids[i] for i in _kernel.bye_cover_csr(kern)}
        view = self._mask_view()
        if view is None:
            return None
        members, weights, masks = view
        cover = _kernel.bye_cover_masks(weights, masks)
        out: Set[TupleId] = set()
        while cover:
            low = cover & -cover
            out.add(members[low.bit_length() - 1])
            cover ^= low
        return out

    def kernel_greedy_survivors(self) -> Optional[Set[TupleId]]:
        """Array fast path for the greedy deletion loop of
        :func:`repro.core.approx.greedy_s_repair`: run the lazy-heap
        weight/degree loop over the kernel view (or the mask view of a
        small live index) and return the surviving tuple ids.  ``None``
        means "no fast path; run the reference loop on an index copy".
        """
        kern = self._kernel_view()
        if kern is not None:
            ids = kern.codec.ids
            removed = _kernel.greedy_cover_csr(kern)
            # One C-level copy minus the (few) removed ids — never a
            # per-live-tuple membership loop.
            return set(self._live).difference(ids[r] for r in removed)
        view = self._mask_view()
        if view is None:
            return None
        members, weights, masks = view
        removed_mask = _kernel.greedy_cover_masks(
            weights, masks, [str(tid) for tid in members]
        )
        return {
            tid for i, tid in enumerate(members) if not (removed_mask >> i) & 1
        }

    def kernel_maximalize(self, independent: Set[TupleId]) -> Optional[Set[TupleId]]:
        """Array fast path for
        :func:`~repro.graphs.vertex_cover.maximalize_independent_set`
        (same candidate order and blocking test, hence the identical
        maximal set).  ``None`` means "no fast path; run the reference".
        """
        kern = self._kernel_view()
        if kern is not None:
            return _kernel.mis_maximalize_csr(kern, independent)
        view = self._mask_view()
        if view is None:
            return None
        members, weights, masks = view
        position = {tid: i for i, tid in enumerate(members)}
        mask = 0
        for tid in independent:
            mask |= 1 << position[tid]
        grown = _kernel.mis_maximalize_masks(
            weights, masks, [str(tid) for tid in members], mask
        )
        return {members[i] for i in _kernel._bits_ascending(grown)}

    def matching_lower_bound(self) -> float:
        """Admissible deletion-cost bound: greedy tuple-disjoint matching
        over the conflict edges, paying the lighter endpoint per pair.

        Delegates to the shared matching-bound implementation in
        :mod:`repro.graphs.vertex_cover`, which only needs the
        ``edges()``/``weight()`` interface this index provides; small
        kernel-backed indexes answer over neighbour bitmasks (same edge
        order, same arithmetic, same bound).
        """
        view = self._mask_view()
        if view is not None:
            _members, weights, masks = view
            full = (1 << len(weights)) - 1
            return _kernel._matching_lower_bound_masks(full, weights, masks)
        from ..graphs.vertex_cover import _matching_lower_bound

        return _matching_lower_bound(self)

    def lp_lower_bound(self) -> Optional[float]:
        """LP-relaxation lower bound on the deletion cost, or ``None``.

        The half-integral vertex-cover LP optimum over the live conflict
        graph (see :func:`~repro.core.kernel.lp_half_integral_bound`):
        always ≥ the matching bound and ≤ the exact optimum, so
        ``max(matching, LP)`` is a strictly tighter-or-equal bracket
        floor — strictly tighter exactly on components whose matching
        bound is not LP-optimal (odd cycles being the canonical case).

        ``None`` past :data:`~repro.core.kernel.LP_BOUND_MAX_VERTICES`
        live tuples, where the flow computation stops paying for itself
        — callers keep the matching bound.  Vertices are numbered by
        live (table) order on both the mask-view and dict arms, and the
        shared core sorts the edge list, so kernel-backed and reference
        indexes return the bit-identical float.
        """
        n = len(self._live)
        if n > _kernel.LP_BOUND_MAX_VERTICES:
            return None
        if self._num_edges == 0:
            return 0.0
        view = self._mask_view()
        if view is not None:
            _members, weights, masks = view
            edge_list = []
            for i, mask in enumerate(masks):
                forward = (mask >> (i + 1)) << (i + 1)
                while forward:
                    low = forward & -forward
                    forward ^= low
                    edge_list.append((i, low.bit_length() - 1))
            return _kernel.lp_half_integral_bound(weights, edge_list)
        members = list(self._live)
        rank = {tid: i for i, tid in enumerate(members)}
        weights = [self._live[tid] for tid in members]
        edge_list = [(rank[u], rank[v]) for u, v in self.edges()]
        return _kernel.lp_half_integral_bound(weights, edge_list)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def remove(self, tid: TupleId) -> None:
        """Evict *tid*, updating buckets and adjacency incrementally.

        O(degree(tid) + |Δ|): only the buckets and edges touching *tid*
        are visited — never the rest of the table.  A kernel view is
        patched in place (tombstone + live degree bookkeeping, see
        :meth:`~repro.core.kernel.ConflictKernel.apply_remove`) so the
        array fast paths survive the mutation; the cached mask view is
        per-state and rebuilds on demand.
        """
        weight = self._live.pop(tid, None)
        if weight is None:
            raise KeyError(f"unknown or already-removed identifier {tid!r}")
        kern = self._kernel
        if kern is not None:
            kern.apply_remove(self._codec.row_index[tid])
        self._mask_cache = None
        self._removed_weight += weight
        nbrs = self._adj.pop(tid)
        self._num_edges -= len(nbrs)
        self._conflicting.discard(tid)
        adj = self._adj
        for other in nbrs:
            other_nbrs = adj[other]
            other_nbrs.remove(tid)
            if not other_nbrs:
                self._conflicting.discard(other)
        if self._buckets is not None:
            for buckets in self._buckets:
                buckets.discard(tid)
        # While the buckets are still lazy there is nothing to maintain:
        # materialisation only ever buckets the tuples live at that time.
        if kern is not None and kern.should_compact():
            self.refresh_kernel()

    def remove_many(self, ids: Iterable[TupleId]) -> None:
        for tid in ids:
            self.remove(tid)

    def insert(
        self, tid: TupleId, row: Sequence[Value], weight: float = 1.0
    ) -> int:
        """Add a tuple, updating buckets and adjacency incrementally —
        the symmetric counterpart of :meth:`remove`.

        The new tuple joins, per FD, the bucket of its lhs/rhs projection
        and gains a conflict edge to every live tuple sharing its lhs key
        under a different rhs key (deduplicated across FDs, exactly as
        the from-scratch build does).  Cost: O(lhs-group size + |Δ|).

        The tuple is positioned *after* every tuple ever seen, matching a
        table that appends new rows at the end — so after any interleaving
        of inserts and removals the canonical :meth:`edges` order (and
        hence every order-sensitive consumer) agrees with a from-scratch
        rebuild on the corresponding table.  Returns the number of
        conflict edges the insertion created.
        """
        if tid in self._live:
            raise ValueError(f"identifier {tid!r} is already live")
        row = tuple(row)
        if len(row) != self._arity:
            raise ValueError(
                f"tuple {tid!r} has arity {len(row)}, index expects {self._arity}"
            )
        weight = float(weight)
        if weight <= 0:
            raise ValueError(f"tuple {tid!r} has non-positive weight {weight}")
        buckets_list = self._ensure_buckets()
        self._mask_cache = None
        if self._codec is not None:
            # Keep the codes live: the appended tuple interns its values
            # so coded shipping (worker pools) keeps working mid-stream.
            self._codec.append_row(tid, row, weight)
        if self._position_shared and tid in self._position:
            # Copy-on-write: the position map may be shared with the
            # pristine cached index, a projection's parent, or sibling
            # copies.  Appending an entry for a brand-new identifier is
            # safe (sharers only ever look up their own live tuples), but
            # *re-positioning* an identifier another holder may still
            # have live would corrupt its canonical edge order — so that
            # is the case that forces a private map.
            self._position = dict(self._position)
            self._position_shared = False
        self._live[tid] = weight
        self._position[tid] = self._next_position
        self._next_position += 1
        nbrs: Set[TupleId] = set()
        self._adj[tid] = nbrs
        adj = self._adj
        new_edges = 0
        for buckets, (_fd, lhs_pos, rhs_pos) in zip(buckets_list, self._fd_specs):
            lhs_key = tuple(row[i] for i in lhs_pos)
            rhs_key = tuple(row[i] for i in rhs_pos)
            group = buckets.groups.get(lhs_key)
            if group:
                for other_rhs, bucket in group.items():
                    if other_rhs != rhs_key:
                        for other in bucket:
                            if other not in nbrs:
                                nbrs.add(other)
                                adj[other].add(tid)
                                new_edges += 1
            buckets.add(tid, lhs_key, rhs_key)
        self._num_edges += new_edges
        if new_edges:
            self._conflicting.add(tid)
            self._conflicting.update(nbrs)
        kern = self._kernel
        if kern is not None:
            # Patch the kernel view: the appended row grafts onto the
            # overflow adjacency with exactly the edges the bucket probe
            # above discovered (ascending row order = table order).
            row_index = self._codec.row_index
            kern.apply_insert(
                row_index[tid], sorted(row_index[other] for other in nbrs)
            )
            if kern.should_compact():
                self.refresh_kernel()
        return new_edges

    def insert_many(
        self, tuples: Iterable[Tuple[TupleId, Sequence[Value], float]]
    ) -> int:
        """Insert ``(tid, row, weight)`` triples; returns new edge count."""
        return sum(self.insert(tid, row, weight) for tid, row, weight in tuples)

    def reanchor(self, table: Table) -> "ConflictIndex":
        """Re-point this index at an equal-content *table* snapshot.

        The streaming session fast path: the session mutates one
        long-lived index via :meth:`insert`/:meth:`remove` while its
        table is re-snapshotted per delta (tables are immutable), so the
        construction-time source the :meth:`ensure_for` identity check
        pins is stale by design.  Re-anchoring is only sound when the
        snapshot holds exactly the live tuples — verified here in O(n)
        (C-level key-set comparison) before the weakref moves.
        """
        if table._rows.keys() != self._live.keys():
            raise ValueError(
                "reanchor target does not hold exactly the live tuples"
            )
        self._source = weakref.ref(table)
        return self

    def refresh_kernel(self) -> bool:
        """Rebuild the CSR view from the live adjacency (compaction).

        Folds accumulated tombstones and overflow adjacency back into
        plain flat arrays — O(live tuples + live edges).  Called
        automatically once churn passes
        :meth:`~repro.core.kernel.ConflictKernel.should_compact`; public
        because the streaming benchmarks use it as the
        snapshot-invalidate comparison arm (rebuild per delta instead of
        patch per delta).  Returns ``False`` when this index has no
        kernel to refresh (kernel off, or a projection).
        """
        codec = self._codec
        if codec is None or not self._use_kernel:
            return False
        n = len(codec.ids)
        row_index = codec.row_index
        packed: List[int] = []
        append = packed.append
        for tid, nbrs in self._adj.items():
            u = row_index[tid]
            base = u * n
            for other in nbrs:
                v = row_index[other]
                if u < v:
                    append(base + v)
        packed.sort()
        self._kernel = _kernel.ConflictKernel(
            codec, packed, alive_rows=[row_index[tid] for tid in self._live]
        )
        return True

    def copy(self) -> "ConflictIndex":
        """An independent, mutable duplicate of the current live state."""
        dup = object.__new__(ConflictIndex)
        dup.fds = self.fds
        dup._source = self._source
        dup._live = dict(self._live)
        # Positions only ever grow; share until an insert re-positions
        # (copy-on-write, see :meth:`insert`).
        dup._position = self._position
        dup._position_shared = True
        self._position_shared = True
        dup._next_position = self._next_position
        dup._adj = {tid: set(nbrs) for tid, nbrs in self._adj.items()}
        dup._num_edges = self._num_edges
        dup._removed_weight = self._removed_weight
        dup._conflicting = set(self._conflicting)
        dup._arity = self._arity
        dup._fd_specs = self._fd_specs
        dup._use_kernel = self._use_kernel
        # Neither the codec (mutable, extended by insert) nor the CSR
        # snapshot is shared with a mutable duplicate: a copy exists to
        # be mutated, and the mask view rebuilds from adjacency anyway.
        dup._codec = None
        dup._kernel = None
        dup._mask_cache = None
        dup._lazy_bucket_table = self._lazy_bucket_table
        dup._buckets = (
            [buckets.copy() for buckets in self._buckets]
            if self._buckets is not None
            else None
        )
        return dup

    def __repr__(self) -> str:
        return (
            f"ConflictIndex({len(self)} live tuples, "
            f"{self._num_edges} conflicts, {len(self._fd_specs)} FDs)"
        )
