"""Incrementally-maintained conflict substrate for FD repairs.

Every repair path in this library reduces to repeated violation detection
over a shrinking table: greedy vertex cover deletes one tuple at a time,
``OptSRepair`` recurses over sub-tables, the 2-approximation and the
assessment pipeline both need the full conflict graph.  The seed
implementation rebuilt the lhs/rhs hash groupings from scratch on every
call; this module materialises them once per ``(table, Δ)`` and keeps
them **live** under tuple removal.

A :class:`ConflictIndex` holds, per (nontrivial) FD ``X → Y``:

* a two-level bucket index ``lhs-key → rhs-key → {tuple ids}`` — the
  same hash grouping :func:`repro.core.violations.violating_pairs_of_fd`
  streams over, made persistent;
* the reverse map ``tuple id → (lhs-key, rhs-key)`` enabling O(1) bucket
  eviction;

plus the *materialised conflict graph* as an adjacency map with degree
and weight bookkeeping.  :meth:`remove` evicts one tuple in
O(degree + |Δ|) — the affected buckets only — instead of an O(|T|·|Δ|)
rebuild, which is what makes index-driven greedy deletion loops linear
instead of quadratic.

The index quacks like :class:`repro.graphs.graph.Graph` for the read
access :func:`~repro.graphs.vertex_cover.bar_yehuda_even` and
:func:`~repro.graphs.vertex_cover.maximalize_independent_set` need
(``nodes`` / ``edges`` / ``weight`` / ``neighbors``), so those two
consume a live index directly.  The mutating algorithms
(:func:`~repro.graphs.vertex_cover.exact_min_weight_vertex_cover`,
:func:`~repro.graphs.vertex_cover.greedy_vertex_cover`) need a real
``Graph`` — materialise one with :meth:`graph`.

Instances cached on a table (via :meth:`repro.core.table.Table.conflict_index`)
are pristine and shared; call :meth:`copy` before mutating.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..graphs.graph import Graph
from .fd import FD, FDSet
from .table import Row, Table, TupleId

__all__ = ["ConflictIndex"]


class _FDBuckets:
    """The live two-level hash grouping of one FD over the current tuples."""

    __slots__ = ("fd", "groups", "keys")

    def __init__(self, fd: FD) -> None:
        self.fd = fd
        # lhs-key → rhs-key → set of live tuple ids
        self.groups: Dict[Row, Dict[Row, Set[TupleId]]] = {}
        # tuple id → (lhs-key, rhs-key), for O(1) eviction
        self.keys: Dict[TupleId, Tuple[Row, Row]] = {}

    def add(self, tid: TupleId, lhs_key: Row, rhs_key: Row) -> None:
        group = self.groups.get(lhs_key)
        if group is None:
            group = self.groups[lhs_key] = {}
        bucket = group.get(rhs_key)
        if bucket is None:
            bucket = group[rhs_key] = set()
        bucket.add(tid)
        self.keys[tid] = (lhs_key, rhs_key)

    def discard(self, tid: TupleId) -> None:
        keys = self.keys.pop(tid, None)
        if keys is None:
            return
        lhs_key, rhs_key = keys
        group = self.groups[lhs_key]
        bucket = group[rhs_key]
        bucket.remove(tid)
        if not bucket:
            del group[rhs_key]
            if not group:
                del self.groups[lhs_key]

    def copy(self) -> "_FDBuckets":
        dup = _FDBuckets(self.fd)
        dup.groups = {
            lhs_key: {rhs_key: set(bucket) for rhs_key, bucket in group.items()}
            for lhs_key, group in self.groups.items()
        }
        dup.keys = dict(self.keys)
        return dup


class ConflictIndex:
    """Per-FD bucket indexes + the materialised conflict graph of a table.

    Parameters
    ----------
    table:
        The table to index.  The index snapshots the table's tuples at
        construction; subsequent :meth:`remove` calls shrink the *index*
        only (tables themselves are immutable).
    fds:
        The FD set Δ.  Trivial FDs are skipped (they cannot be violated).
    """

    __slots__ = (
        "fds",
        "_source",
        "_buckets",
        "_live",
        "_position",
        "_adj",
        "_num_edges",
        "_removed_weight",
    )

    def __init__(self, table: Table, fds: FDSet) -> None:
        self.fds = fds
        self._source: "weakref.ref[Table]" = weakref.ref(table)
        self._live: Dict[TupleId, float] = dict(
            (tid, table.weight(tid)) for tid in table.ids()
        )
        self._position: Dict[TupleId, int] = {
            tid: i for i, tid in enumerate(self._live)
        }
        self._adj: Dict[TupleId, Set[TupleId]] = {tid: set() for tid in self._live}
        self._num_edges = 0
        self._removed_weight = 0.0
        self._buckets: List[_FDBuckets] = []
        for fd in fds:
            if fd.is_trivial:
                continue
            self._buckets.append(self._build_fd_buckets(table, fd))

    def _build_fd_buckets(self, table: Table, fd: FD) -> _FDBuckets:
        """Bucket every tuple by (lhs, rhs) projection and materialise the
        conflict edges this FD contributes."""
        buckets = _FDBuckets(fd)
        adj = self._adj
        # Positions of the (canonically sorted) rhs attributes, resolved
        # once: projecting via raw row indexing keeps the build O(|T|·k)
        # with no per-tuple attribute lookups.
        rhs_pos = [table._index[a] for a in sorted(fd.rhs)]
        rows = table._rows
        for lhs_key, ids in table.group_by(fd.lhs).items():
            if len(ids) == 1:
                tid = ids[0]
                row = rows[tid]
                buckets.add(tid, lhs_key, tuple(row[i] for i in rhs_pos))
                continue
            group: Dict[Row, List[TupleId]] = {}
            for tid in ids:
                row = rows[tid]
                rhs_key = tuple(row[i] for i in rhs_pos)
                buckets.add(tid, lhs_key, rhs_key)
                group.setdefault(rhs_key, []).append(tid)
            if len(group) < 2:
                continue
            parts = list(group.values())
            for i in range(len(parts)):
                for j in range(i + 1, len(parts)):
                    for t1 in parts[i]:
                        adj_t1 = adj[t1]
                        for t2 in parts[j]:
                            if t2 not in adj_t1:
                                adj_t1.add(t2)
                                adj[t2].add(t1)
                                self._num_edges += 1
        return buckets

    def ensure_for(self, fds: FDSet, table: Optional[Table] = None) -> "ConflictIndex":
        """Guard for entry points accepting a prebuilt index: raise if
        this index was built for a different FD set, or — when *table*
        is given — from a different table object (either mismatch means
        a silently-wrong repair; both are easy to hit when batching
        several Δ or tables).  FD-set comparison is order-insensitive;
        the table check is by identity against the construction-time
        source (held weakly), so equal-content copies are rejected too —
        rebuild or re-fetch the index via ``table.conflict_index(fds)``
        in that case.
        """
        if fds != self.fds:
            raise ValueError(
                f"ConflictIndex was built for {self.fds}, not {fds}"
            )
        if table is not None and self._source() is not table:
            raise ValueError(
                "ConflictIndex was built from a different table than the "
                "one passed alongside it"
            )
        return self

    # ------------------------------------------------------------------
    # Read access (Graph-compatible where it matters)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, tid: TupleId) -> bool:
        return tid in self._live

    def ids(self) -> Tuple[TupleId, ...]:
        """Live tuple identifiers, in table order."""
        return tuple(self._live)

    # Graph-compatible alias, so vertex-cover algorithms accept an index.
    nodes = ids

    def weight(self, tid: TupleId) -> float:
        return self._live[tid]

    def total_weight(self, ids=None) -> float:
        """Total weight of the live tuples (or of the given subset)."""
        if ids is None:
            return sum(self._live.values())
        live = self._live
        return sum(live[tid] for tid in ids)

    @property
    def removed_weight(self) -> float:
        """Total weight of the tuples removed so far."""
        return self._removed_weight

    def degree(self, tid: TupleId) -> int:
        return len(self._adj[tid])

    def neighbors(self, tid: TupleId) -> Set[TupleId]:
        """The live conflict partners of *tid* (read-only view)."""
        return self._adj[tid]

    @property
    def num_edges(self) -> int:
        return self._num_edges

    conflict_count = num_edges

    def is_consistent(self) -> bool:
        """True iff no violating pair survives among the live tuples."""
        return self._num_edges == 0

    def conflicting_tuples(self) -> List[TupleId]:
        """Live tuples involved in at least one conflict, in table order."""
        return [tid for tid, nbrs in self._adj.items() if nbrs]

    def edges(self) -> List[Tuple[TupleId, TupleId]]:
        """Each conflict pair exactly once, in canonical table-position
        order (both across and within source tuples).

        The canonical order makes every order-sensitive consumer (greedy
        matching, the Bar-Yehuda–Even sweep) produce identical results on
        a live index and on a from-scratch rebuild of the same survivors
        — adjacency *sets* iterate differently depending on their
        insertion/removal history.
        """
        position = self._position
        out: List[Tuple[TupleId, TupleId]] = []
        for tid, nbrs in self._adj.items():
            p = position[tid]
            forward = [other for other in nbrs if position[other] > p]
            if forward:
                forward.sort(key=position.__getitem__)
                out.extend((tid, other) for other in forward)
        return out

    conflicting_ids = edges

    def violating_pairs(self) -> Iterator[Tuple[TupleId, TupleId, FD]]:
        """Yield ``(t1, t2, fd)`` per violated FD from the live buckets.

        Like :func:`repro.core.violations.violating_pairs` but served from
        the materialised buckets; a pair violating several FDs is yielded
        once per FD.
        """
        for buckets in self._buckets:
            for group in buckets.groups.values():
                if len(group) < 2:
                    continue
                parts = list(group.values())
                for i in range(len(parts)):
                    for j in range(i + 1, len(parts)):
                        for t1 in parts[i]:
                            for t2 in parts[j]:
                                yield t1, t2, buckets.fd

    # ------------------------------------------------------------------
    # Connected components (the decomposition substrate)
    # ------------------------------------------------------------------
    def components(self) -> List[List[TupleId]]:
        """Connected components of the live conflict graph, restricted to
        tuples with at least one conflict.

        Deterministic: components are listed by the table position of
        their earliest member, and members within a component are in
        table order.  Conflict-free tuples never appear — they belong to
        every repair verbatim (see :meth:`consistent_ids`).
        """
        position = self._position
        adj = self._adj
        seen: Set[TupleId] = set()
        out: List[List[TupleId]] = []
        for tid, nbrs in adj.items():
            if not nbrs or tid in seen:
                continue
            stack = [tid]
            seen.add(tid)
            members: List[TupleId] = []
            while stack:
                current = stack.pop()
                members.append(current)
                for other in adj[current]:
                    if other not in seen:
                        seen.add(other)
                        stack.append(other)
            members.sort(key=position.__getitem__)
            out.append(members)
        return out

    def consistent_ids(self) -> List[TupleId]:
        """Live tuples with no conflict, in table order — the tuples every
        S-repair keeps and every U-repair leaves untouched."""
        return [tid for tid, nbrs in self._adj.items() if not nbrs]

    def project(self, subtable: Table, ids: Set[TupleId]) -> "ConflictIndex":
        """The restriction of this index to *ids*, re-anchored on
        *subtable* (which must contain exactly those tuples).

        Intended for connected components, where the projection is exact:
        adjacency is closed under the component, and every surviving
        bucket entry is simply filtered.  The projected index is seeded
        into *subtable*'s derived cache, so per-component solvers calling
        ``subtable.conflict_index(fds)`` reuse it instead of re-bucketing
        — this is what makes decomposition O(conflicting tuples) on top
        of the one shared parent build.
        """
        dup = object.__new__(ConflictIndex)
        dup.fds = self.fds
        dup._source = weakref.ref(subtable)
        live = self._live
        dup._live = {tid: live[tid] for tid in subtable.ids()}
        # Relative table order is preserved by subsetting, so sharing the
        # parent's position map keeps edges() canonical and cheap.
        dup._position = self._position
        num_edges = 0
        adj: Dict[TupleId, Set[TupleId]] = {}
        for tid in dup._live:
            nbrs = self._adj[tid] & ids
            adj[tid] = nbrs
            num_edges += len(nbrs)
        dup._adj = adj
        dup._num_edges = num_edges // 2
        dup._removed_weight = 0.0
        buckets: List[_FDBuckets] = []
        for source in self._buckets:
            projected = _FDBuckets(source.fd)
            for tid in dup._live:
                keys = source.keys.get(tid)
                if keys is not None:
                    projected.add(tid, keys[0], keys[1])
            buckets.append(projected)
        dup._buckets = buckets
        subtable._cache.setdefault(("conflict_index", self.fds), dup)
        return dup

    def graph(self) -> Graph:
        """Materialise the live conflict graph as a mutable ``Graph``
        (for consumers that destructively edit it, e.g. the exact
        vertex-cover branch & bound)."""
        g = Graph()
        for tid, weight in self._live.items():
            g.add_node(tid, weight=weight)
        for t1, t2 in self.edges():
            g.add_edge(t1, t2)
        return g

    def matching_lower_bound(self) -> float:
        """Admissible deletion-cost bound: greedy tuple-disjoint matching
        over the conflict edges, paying the lighter endpoint per pair.

        Delegates to the shared matching-bound implementation in
        :mod:`repro.graphs.vertex_cover`, which only needs the
        ``edges()``/``weight()`` interface this index provides.
        """
        from ..graphs.vertex_cover import _matching_lower_bound

        return _matching_lower_bound(self)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def remove(self, tid: TupleId) -> None:
        """Evict *tid*, updating buckets and adjacency incrementally.

        O(degree(tid) + |Δ|): only the buckets and edges touching *tid*
        are visited — never the rest of the table.
        """
        weight = self._live.pop(tid, None)
        if weight is None:
            raise KeyError(f"unknown or already-removed identifier {tid!r}")
        self._removed_weight += weight
        nbrs = self._adj.pop(tid)
        self._num_edges -= len(nbrs)
        for other in nbrs:
            self._adj[other].remove(tid)
        for buckets in self._buckets:
            buckets.discard(tid)

    def remove_many(self, ids) -> None:
        for tid in ids:
            self.remove(tid)

    def copy(self) -> "ConflictIndex":
        """An independent, mutable duplicate of the current live state."""
        dup = object.__new__(ConflictIndex)
        dup.fds = self.fds
        dup._source = self._source
        dup._live = dict(self._live)
        dup._position = self._position  # positions are immutable; share
        dup._adj = {tid: set(nbrs) for tid, nbrs in self._adj.items()}
        dup._num_edges = self._num_edges
        dup._removed_weight = self._removed_weight
        dup._buckets = [buckets.copy() for buckets in self._buckets]
        return dup

    def __repr__(self) -> str:
        return (
            f"ConflictIndex({len(self)} live tuples, "
            f"{self._num_edges} conflicts, {len(self._buckets)} FDs)"
        )
