"""Core algorithms: the paper's primary contribution.

Re-exports the public API of the core modules; see the individual modules
for full documentation:

* :mod:`repro.core.fd` — FDs and FD sets;
* :mod:`repro.core.table` — weighted tables with identifiers;
* :mod:`repro.core.violations` — violation detection and conflict graphs;
* :mod:`repro.core.srepair` — Algorithm 1 (``OptSRepair``);
* :mod:`repro.core.dichotomy` — Algorithm 2 and hardness classification;
* :mod:`repro.core.exact` — exact baselines for both repair problems;
* :mod:`repro.core.approx` — approximation algorithms and ratio formulas;
* :mod:`repro.core.urepair` — the U-repair dispatcher (Section 4);
* :mod:`repro.core.mpd` — Most Probable Database (Theorem 3.10).
"""

from .fd import FD, FDSet, attrset, parse_fd, parse_fd_set
from .table import FreshValue, Table, fresh_value_factory, hamming_distance
from .conflict_index import ConflictIndex
from .violations import (
    conflict_graph,
    conflicting_ids,
    satisfies,
    violating_pairs,
    violating_pairs_of_fd,
)
from .decompose import (
    EXACT_COMPONENT_THRESHOLD,
    Component,
    Decomposition,
    decompose,
    plan_s_method,
)
from .srepair import DichotomyFailure, SRepairResult, opt_s_repair, optimal_s_repair
from .dichotomy import (
    DELTA_A_B_C,
    DELTA_A_C_B,
    DELTA_AB_C_B,
    DELTA_TRIANGLE,
    HARD_FD_SETS,
    DichotomyResult,
    HardnessWitness,
    SimplificationStep,
    classify,
    classify_stuck,
    osr_succeeds,
    simplification_trace,
)
from .exact import (
    ExactSearchLimit,
    brute_force_s_repair,
    exact_s_repair,
    exact_u_repair,
    exact_u_repair_exhaustive,
)
from .approx import (
    approx_s_repair,
    approx_u_repair,
    greedy_s_repair,
    consensus_majority_update,
    core_implicant_size,
    kl_ratio,
    mci,
    mfs,
    minimal_implicants,
    minimal_implicants_brute,
    our_ratio,
    s_repair_from_u_repair,
    u_repair_from_s_repair,
)
from .urepair import (
    UnknownURepairComplexity,
    URepairResult,
    optimal_u_repair,
    u_repair,
)
from .counting import (
    NotChainError,
    brute_force_count_s_repairs,
    count_s_repairs,
    enumerate_s_repairs,
)
from .checking import (
    is_consistent_subset,
    is_consistent_update,
    is_s_repair,
    is_u_repair,
    non_restorable_cells,
)
from .mpd import (
    MPDResult,
    brute_force_mpd,
    most_probable_database,
    s_repair_via_mpd,
    subset_probability,
)

__all__ = [
    # fd
    "FD", "FDSet", "attrset", "parse_fd", "parse_fd_set",
    # table
    "FreshValue", "Table", "fresh_value_factory", "hamming_distance",
    # conflict index
    "ConflictIndex",
    # decompose
    "EXACT_COMPONENT_THRESHOLD", "Component", "Decomposition",
    "decompose", "plan_s_method",
    # violations
    "conflict_graph", "conflicting_ids", "satisfies",
    "violating_pairs", "violating_pairs_of_fd",
    # srepair
    "DichotomyFailure", "SRepairResult", "opt_s_repair", "optimal_s_repair",
    # dichotomy
    "DELTA_A_B_C", "DELTA_A_C_B", "DELTA_AB_C_B", "DELTA_TRIANGLE",
    "HARD_FD_SETS", "DichotomyResult", "HardnessWitness",
    "SimplificationStep", "classify", "classify_stuck", "osr_succeeds",
    "simplification_trace",
    # exact
    "ExactSearchLimit", "brute_force_s_repair", "exact_s_repair",
    "exact_u_repair", "exact_u_repair_exhaustive",
    # approx
    "approx_s_repair", "approx_u_repair", "greedy_s_repair",
    "consensus_majority_update",
    "core_implicant_size", "kl_ratio", "mci", "mfs", "minimal_implicants", "minimal_implicants_brute",
    "our_ratio", "s_repair_from_u_repair", "u_repair_from_s_repair",
    # urepair
    "UnknownURepairComplexity", "URepairResult", "optimal_u_repair",
    "u_repair",
    # counting
    "NotChainError", "brute_force_count_s_repairs", "count_s_repairs",
    "enumerate_s_repairs",
    # checking
    "is_consistent_subset", "is_consistent_update", "is_s_repair",
    "is_u_repair", "non_restorable_cells",
    # mpd
    "MPDResult", "brute_force_mpd", "most_probable_database",
    "s_repair_via_mpd", "subset_probability",
]
