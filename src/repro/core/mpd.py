"""The Most Probable Database problem (Section 3.4, Theorem 3.10).

A *probabilistic table* is a table whose weights lie in ``(0, 1]`` and are
read as independent tuple probabilities (a tuple-independent probabilistic
database).  MPD asks for the consistent subset of maximum probability

    Pr(S) = Π_{i ∈ S} w(i) × Π_{i ∉ S} (1 − w(i)).

Theorem 3.10 settles the complexity for arbitrary FD sets by reducing MPD
to optimal S-repairing and back:

* tuples with ``w ≤ 0.5`` can be excluded up front (removing them never
  lowers the probability);
* *certain* tuples (``w = 1``) must be kept when jointly consistent —
  otherwise every consistent subset has probability zero;
* for the rest, maximising ``Π w/(1−w)`` over kept tuples is exactly
  minimising the deleted weight under log-odds weights
  ``λ(i) = log(w(i)/(1−w(i))) > 0``.

The module provides the forward reduction (:func:`most_probable_database`),
the reverse reduction used in the hardness direction
(:func:`s_repair_via_mpd`), and a brute-force baseline.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from .fd import FDSet
from .srepair import optimal_s_repair
from .table import Table, TupleId
from .violations import satisfies

__all__ = [
    "MPDResult",
    "subset_probability",
    "most_probable_database",
    "brute_force_mpd",
    "s_repair_via_mpd",
]


@dataclass(frozen=True)
class MPDResult:
    """A most probable consistent database and its probability."""

    database: Table
    probability: float
    method: str


def _check_probabilistic(table: Table) -> None:
    for tid in table.ids():
        w = table.weight(tid)
        if not (0.0 < w <= 1.0):
            raise ValueError(
                f"tuple {tid!r} has weight {w}, not a probability in (0, 1]"
            )


def subset_probability(table: Table, kept: Iterable[TupleId]) -> float:
    """``Pr_T(S)`` — equation (2) of the paper."""
    _check_probabilistic(table)
    kept = set(kept)
    prob = 1.0
    for tid in table.ids():
        w = table.weight(tid)
        prob *= w if tid in kept else (1.0 - w)
    return prob


def most_probable_database(
    table: Table, fds: FDSet, method: str = "auto"
) -> MPDResult:
    """MPD via the Theorem 3.10 reduction to optimal S-repairing.

    ``method`` is forwarded to :func:`repro.core.srepair.optimal_s_repair`
    (``"auto"`` uses ``OptSRepair`` when ``OSRSucceeds(Δ)`` and the exact
    vertex-cover solver otherwise), so by the dichotomy the overall
    algorithm is polynomial exactly when ``OSRSucceeds(Δ)`` holds.
    """
    _check_probabilistic(table)
    certain = [tid for tid in table.ids() if table.weight(tid) == 1.0]
    if not satisfies(table.subset(certain), fds):
        # Every consistent subset misses a certain tuple and has
        # probability zero; the paper then returns e.g. the empty subset.
        empty = table.subset(())
        return MPDResult(empty, 0.0, method="certain-tuples-inconsistent")

    # Tuples with w ≤ 0.5 are never needed (removal cannot lower Pr).
    undecided = [
        tid
        for tid in table.ids()
        if 0.5 < table.weight(tid) < 1.0
    ]
    relevant = certain + undecided
    if not relevant:
        kept: List[TupleId] = []
        return MPDResult(
            table.subset(kept),
            subset_probability(table, kept),
            method="all-tuples-unlikely",
        )

    # Log-odds weights; certain tuples get a weight exceeding any possible
    # total of the others, forcing them into the optimal repair.
    log_odds = {
        tid: math.log(table.weight(tid) / (1.0 - table.weight(tid)))
        for tid in undecided
    }
    big = sum(log_odds.values()) + 1.0
    weights = dict(log_odds)
    weights.update({tid: big for tid in certain})
    weighted = Table(
        table.schema,
        {tid: table[tid] for tid in relevant},
        weights,
        name=table.name,
    )
    result = optimal_s_repair(weighted, fds, method=method)
    kept = list(result.repair.ids())
    if not set(certain) <= set(kept):
        raise AssertionError(
            "big-M weighting failed to retain the certain tuples"
        )
    return MPDResult(
        table.subset(set(kept)),  # set ⇒ canonical table order
        subset_probability(table, kept),
        method=f"s-repair reduction ({result.method})",
    )


def brute_force_mpd(table: Table, fds: FDSet, max_tuples: int = 20) -> MPDResult:
    """MPD by enumerating all subsets (baseline for tests/benchmarks)."""
    _check_probabilistic(table)
    ids = table.ids()
    if len(ids) > max_tuples:
        raise ValueError(
            f"brute force limited to {max_tuples} tuples, got {len(ids)}"
        )
    best_kept: Tuple[TupleId, ...] = ()
    best_prob = -1.0
    for r in range(len(ids) + 1):
        for kept in itertools.combinations(ids, r):
            if not satisfies(table.subset(kept), fds):
                continue
            prob = subset_probability(table, kept)
            if prob > best_prob:
                best_prob = prob
                best_kept = kept
    return MPDResult(table.subset(best_kept), best_prob, method="brute-force")


def s_repair_via_mpd(table: Table, fds: FDSet, probability: float = 0.9) -> Table:
    """The reverse reduction of Theorem 3.10 (hardness direction).

    Given an *unweighted* table, assign every tuple the same probability
    ``> 0.5``; a subset is most probable iff it keeps a maximum number of
    tuples, i.e. iff it is an optimal S-repair.  Implemented with the
    brute-force MPD oracle, for demonstration and testing.
    """
    if not table.is_unweighted:
        raise ValueError("the reverse reduction applies to unweighted tables")
    if not (0.5 < probability < 1.0):
        raise ValueError("probability must lie in (0.5, 1)")
    prob_table = Table(
        table.schema,
        table.rows(),
        {tid: probability for tid in table.ids()},
        name=table.name,
    )
    result = brute_force_mpd(prob_table, fds)
    return table.subset(result.database.ids())
