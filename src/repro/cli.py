"""Command-line interface: ``fdrepair <command>``.

Commands
--------
``classify``
    Dichotomy verdict and Example 3.5-style simplification trace for an
    FD set given as a string (``"A B -> C; C -> D"``).
``assess``
    Dirtiness assessment of a CSV table: conflict statistics, the
    per-component bracket on the optimal deletion cost, and the
    dichotomy verdict — no repair is committed.
``s-repair``
    S-repair of a CSV table via the cleaning pipeline; ``--guarantee``
    picks optimal / best-effort / fast-approximate.
``u-repair``
    U-repair of a CSV table via the cleaning pipeline, reporting the
    guarantee achieved.
``mpd``
    Most probable database of a probabilistic CSV table (weights are the
    tuple probabilities).
``stream``
    A streaming repair session: consume JSONL tuple batches (appends and
    deletes), re-repairing incrementally after each — only the conflict
    components a batch touches are re-solved.  Malformed batches are
    reported and skipped (the session survives; the exit code turns
    nonzero); ``--strict`` restores abort-on-first-error.
``serve``
    The multi-tenant repair daemon: many concurrent ``(tenant, table,
    Δ)`` sessions over one shared worker pool and content-addressed
    solution cache, speaking the JSONL protocol of
    :mod:`repro.protocol` over TCP or stdio.
``recover``
    Inspect (``--dry-run``) or offline-recover a daemon ``--state-dir``:
    snapshot age and contents, the retained journal chain, and a replay
    estimate — without starting the daemon.
``trace summarize``
    Roll a ``--trace`` JSONL telemetry log up into phase / method /
    tenant / op tables (see :mod:`repro.obs` for the record schema).
``calibrate``
    Fit the difficulty cost model's seconds-per-unit constant (and
    optionally its exponent) from the predicted-vs-actual solve records
    of a ``--trace`` log.

``assess``, ``s-repair``, ``u-repair``, ``stream``, and ``serve`` all
take ``--trace PATH`` to append a structured telemetry trace — spans,
per-component solve records, and a closing summary — consumable by the
two analysis verbs above.

The repair commands run the conflict-decomposed engine: ``--parallel N``
solves components on N worker processes (``stream`` keeps them warm
across batches), ``--exact-threshold`` moves the exact-vs-approximate
component-size boundary, ``--portfolio`` prints the per-component method
mix, and ``--global`` restores the undecomposed path.  The CSV layout is
``id,<attributes...>,weight`` (see :mod:`repro.io.tables`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .core.dichotomy import classify
from .core.fd import FDSet, parse_fd_set
from .core.mpd import most_probable_database
from .io.tables import table_from_csv, table_to_csv
from .pipeline import CleaningResult, assess, clean

__all__ = ["main", "build_parser"]


def _add_repair_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--guarantee",
        choices=("best", "optimal", "fast"),
        default="best",
        help=(
            "repair guarantee: optimal where affordable (best, default), "
            "provably optimal or fail (optimal), polynomial approximation "
            "(fast)"
        ),
    )
    parser.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        default=None,
        help="solve conflict components on N worker processes",
    )
    parser.add_argument(
        "--exact-threshold",
        type=int,
        metavar="N",
        default=None,
        help=(
            "component-size boundary between exact and approximate "
            "solving on hard FD sets (default 128); raise for tighter "
            "repairs, lower to bound latency"
        ),
    )
    _add_exact_budget_option(parser)
    parser.add_argument(
        "--portfolio",
        action="store_true",
        help="print the per-component solver portfolio mix",
    )
    parser.add_argument(
        "--global",
        dest="decomposed",
        action="store_false",
        help="disable conflict decomposition (one global solver call)",
    )
    _add_kernel_option(parser)
    _add_trace_option(parser)
    parser.add_argument("--out", help="write the result CSV here")


def _add_exact_budget_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--exact-budget",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "global exact-solve budget in wall-clock seconds: components "
            "are ranked by predicted branch & bound difficulty and "
            "solved exactly easiest-first while the predicted spend "
            "fits; the rest fall to the LP-bracketed 2-approximation "
            "up front (default: unlimited).  Bounds deletion repairs "
            "and assessment brackets; u-repair's update search has its "
            "own node budget"
        ),
    )
    parser.add_argument(
        "--per-component-budget",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "wall-clock ceiling per exact vertex-cover solve — the "
            "historical semantics of --exact-budget: a component whose "
            "branch & bound runs longer falls back to the "
            "2-approximation; combinable with --exact-budget, which "
            "then additionally caps each scheduled slice"
        ),
    )
    parser.add_argument(
        "--unit-cost",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "seconds one unit of predicted difficulty costs on this "
            "machine (default: the hand-calibrated constant).  Deploy a "
            "'fdrepair calibrate' fit here to rescale what the global "
            "--exact-budget believes it can afford; the difficulty "
            "ranking — and so the plan's determinism — is unchanged"
        ),
    )


def _add_kernel_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-kernel",
        dest="use_kernel",
        action="store_false",
        default=True,
        help=(
            "force the dict reference paths instead of the interned "
            "columnar kernel (debugging aid; results are identical "
            "either way, the kernel is just faster)"
        ),
    )


def _apply_kernel_choice(args: argparse.Namespace) -> None:
    """Honour ``--no-kernel`` before any conflict structure is built."""
    from .core import kernel

    if not getattr(args, "use_kernel", True):
        kernel.set_enabled(False)


def _add_shard_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=0,
        help=(
            "solve conflict components on N shard host subprocesses "
            "(consistent-hash routing, per-RPC deadlines with retry, "
            "heartbeat failover, journal-replay respawn; results are "
            "byte-identical to local execution, which the executor "
            "degrades to when shards are exhausted)"
        ),
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        metavar="SECONDS",
        default=30.0,
        help="per-RPC deadline on the sharded executor (default 30)",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        metavar="N",
        default=2,
        help=(
            "RPC retries (capped exponential backoff) before the routed "
            "shard is presumed wedged and failed over (default 2)"
        ),
    )


def _shard_executor_for(args: argparse.Namespace):
    """A started :class:`repro.shard.ShardedExecutor` for ``--shards N``,
    or ``None`` (no sharding requested, or the platform cannot spawn
    shard hosts — callers then run the local paths)."""
    shards = getattr(args, "shards", 0)
    if not shards or shards <= 0:
        return None
    from .shard import ShardedExecutor

    executor = ShardedExecutor(
        shards,
        use_kernel=getattr(args, "use_kernel", True),
        rpc_timeout_s=args.shard_timeout,
        rpc_retries=args.shard_retries,
    )
    if not executor.start():
        executor.close()
        print(
            "warning: cannot start shard hosts; running locally",
            file=sys.stderr,
        )
        return None
    return executor


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "append a structured JSONL telemetry trace to PATH: nested "
            "spans, one record per component solve (planned vs effective "
            "method, predicted vs actual seconds), and a closing summary "
            "of counters and latency histograms; analyse with "
            "'fdrepair trace summarize' and 'fdrepair calibrate'"
        ),
    )


def _recorder_for(args: argparse.Namespace):
    """A sink-backed :class:`repro.obs.Recorder` for ``--trace PATH``,
    or ``None`` (commands then run on the guaranteed-no-op recorder)."""
    path = getattr(args, "trace", None)
    if not path:
        return None
    from . import obs

    return obs.Recorder(sink=obs.JsonlTraceSink(path))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fdrepair",
        description=(
            "Optimal subset/update repairs for functional dependencies "
            "(PODS 2018 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser(
        "classify", help="dichotomy verdict for an FD set"
    )
    p_classify.add_argument("fds", help='FD set, e.g. "A -> B; B -> C"')

    p_assess = sub.add_parser(
        "assess", help="dirtiness report with a per-component cost bracket"
    )
    p_assess.add_argument("table", help="CSV file (id,<attrs...>,weight)")
    p_assess.add_argument("fds", help="FD set string")
    p_assess.add_argument(
        "--global",
        dest="decomposed",
        action="store_false",
        help="single global bracket instead of per-component sums",
    )
    p_assess.add_argument(
        "--exact-threshold",
        type=int,
        metavar="N",
        default=None,
        help="bracket components of at most N tuples exactly (default 128)",
    )
    p_assess.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the report as JSON, including one record per conflict "
            "component with its predicted difficulty, scheduled bracket "
            "method, and bracket source (matching / lp / exact)"
        ),
    )
    _add_exact_budget_option(p_assess)
    _add_kernel_option(p_assess)
    _add_trace_option(p_assess)

    p_srepair = sub.add_parser("s-repair", help="compute an S-repair")
    p_srepair.add_argument("table", help="CSV file (id,<attrs...>,weight)")
    p_srepair.add_argument("fds", help="FD set string")
    p_srepair.add_argument(
        "--approx",
        action="store_true",
        help="deprecated alias for --guarantee fast",
    )
    _add_repair_options(p_srepair)
    _add_shard_options(p_srepair)

    p_urepair = sub.add_parser("u-repair", help="compute a U-repair")
    p_urepair.add_argument("table", help="CSV file (id,<attrs...>,weight)")
    p_urepair.add_argument("fds", help="FD set string")
    _add_repair_options(p_urepair)

    p_mpd = sub.add_parser("mpd", help="most probable database")
    p_mpd.add_argument("table", help="CSV file; weights are probabilities")
    p_mpd.add_argument("fds", help="FD set string")
    p_mpd.add_argument("--out", help="write the database CSV here")

    p_stream = sub.add_parser(
        "stream",
        help="incremental repair session over JSONL tuple batches",
        description=(
            "Run a streaming repair session: start from an initial CSV "
            "table (or an empty table over --schema), then apply one "
            "JSONL operation per line and re-repair incrementally.  "
            'Operations: {"op": "append", "rows": [...]} with rows as '
            "value lists or attribute-keyed objects (optional weights/"
            'ids arrays), and {"op": "delete", "ids": [...]}.  Only the '
            "conflict components an operation touches are re-solved; "
            "everything else is served from the session's component "
            "cache."
        ),
    )
    p_stream.add_argument("fds", help="FD set string")
    p_stream.add_argument(
        "batches",
        nargs="?",
        default="-",
        help="JSONL operations file (default: stdin)",
    )
    p_stream.add_argument("--table", help="initial CSV table (id,<attrs...>,weight)")
    p_stream.add_argument(
        "--schema",
        help='comma-separated attributes for an empty initial table, e.g. "A,B,C"',
    )
    p_stream.add_argument(
        "--guarantee",
        choices=("best", "optimal", "fast"),
        default="best",
        help="repair guarantee per re-repair (default: best)",
    )
    p_stream.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        default=None,
        help="keep N warm worker processes for cache-miss components",
    )
    p_stream.add_argument(
        "--exact-threshold",
        type=int,
        metavar="N",
        default=None,
        help="exact-vs-approximate component-size boundary (default 128)",
    )
    _add_shard_options(p_stream)
    _add_exact_budget_option(p_stream)
    _add_kernel_option(p_stream)
    _add_trace_option(p_stream)
    p_stream.add_argument("--out", help="write the final repaired CSV here")
    p_stream.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-batch progress lines",
    )
    p_stream.add_argument(
        "--strict",
        action="store_true",
        help=(
            "abort on the first malformed batch (default: report it to "
            "stderr, skip it, keep streaming, and exit nonzero at "
            "end-of-stream)"
        ),
    )

    p_serve = sub.add_parser(
        "serve",
        help="multi-tenant streaming repair daemon",
        description=(
            "Serve many concurrent (tenant, table, Δ) repair sessions "
            "over one shared worker pool and one content-addressed "
            "solution cache.  Speaks a JSONL protocol (one request "
            "object per line, one response line per request) using the "
            "stream op vocabulary plus addressing: open / append / "
            "delete / repair / assess / status / close carry tenant "
            "and session fields; ping / stats / shutdown drive the "
            "daemon itself.  Ops for one session run in arrival order; "
            "sessions proceed independently, and least-recently-used "
            "sessions beyond --max-resident are frozen to their "
            "serialised state and rehydrated on the next request."
        ),
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=7473,
        metavar="N",
        help="TCP port (0 picks a free one; printed on startup)",
    )
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve a single connection over stdin/stdout instead of TCP",
    )
    p_serve.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        default=1,
        help=(
            "warm worker processes shared by every session (0 solves "
            "in-process on the daemon's executor threads)"
        ),
    )
    p_serve.add_argument(
        "--max-sessions",
        type=int,
        metavar="N",
        default=256,
        help="total open sessions across all tenants",
    )
    p_serve.add_argument(
        "--max-resident",
        type=int,
        metavar="N",
        default=64,
        help="sessions kept live before LRU eviction to serialised state",
    )
    p_serve.add_argument(
        "--max-tenant-sessions",
        type=int,
        metavar="N",
        default=32,
        help="open sessions one tenant may hold",
    )
    p_serve.add_argument(
        "--max-tenant-bytes",
        type=int,
        metavar="N",
        default=None,
        help="per-tenant memory budget in bytes (default 256 MiB)",
    )
    p_serve.add_argument(
        "--state-dir",
        metavar="PATH",
        default=None,
        help=(
            "directory for crash-safe state: an append-only op journal, "
            "periodic snapshots, and the frozen-session spool.  A "
            "restarted daemon recovers every tenant session "
            "byte-identically (sessions are deterministic, so replaying "
            "acknowledged ops rebuilds exactly what was lost).  Omit "
            "for a stateless in-memory daemon"
        ),
    )
    p_serve.add_argument(
        "--journal-fsync",
        type=int,
        metavar="N",
        default=8,
        help=(
            "journal records between fsync calls (writes are flushed "
            "per record regardless; this bounds what a machine crash — "
            "not a process kill — can lose)"
        ),
    )
    p_serve.add_argument(
        "--snapshot-every",
        type=int,
        metavar="N",
        default=256,
        help="journal records between snapshot compactions",
    )
    p_serve.add_argument(
        "--journal-max-bytes",
        type=int,
        metavar="N",
        default=None,
        help=(
            "live journal size that triggers an early snapshot "
            "compaction (rotation with --journal-keep > 0); default: "
            "only the --snapshot-every op-count trigger"
        ),
    )
    p_serve.add_argument(
        "--journal-keep",
        type=int,
        metavar="N",
        default=0,
        help=(
            "rotated journal segments to retain (journal.jsonl.1 … .N) "
            "at each snapshot compaction; recovery replays the whole "
            "retained chain when the snapshot is lost (default 0: "
            "truncate on compact)"
        ),
    )
    _add_shard_options(p_serve)
    p_serve.add_argument(
        "--solve-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "per-solve ceiling on the shared worker pool: a solve stuck "
            "longer gets its worker replaced and rides the supervisor's "
            "retry-then-degrade path (default: none)"
        ),
    )
    p_serve.add_argument(
        "--unit-cost",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "calibrated seconds-per-difficulty-unit applied to every "
            "session this daemon opens (per-open payloads win); deploy "
            "a 'fdrepair calibrate' fit across the fleet here"
        ),
    )
    _add_kernel_option(p_serve)
    _add_trace_option(p_serve)

    p_recover = sub.add_parser(
        "recover",
        help="inspect or recover a daemon --state-dir offline",
        description=(
            "Operate on a crash-safe daemon state directory without the "
            "daemon.  --dry-run inspects it read-only: snapshot age and "
            "contents, the retained journal chain, the ops a recovery "
            "would replay, and a replay estimate.  Without --dry-run the "
            "state is actually recovered offline (snapshot + journal "
            "replay, exactly the daemon's own boot path) and compacted, "
            "so the next daemon start is instant."
        ),
    )
    p_recover.add_argument(
        "--state-dir",
        metavar="PATH",
        required=True,
        help="daemon state directory (journal, snapshot, spool)",
    )
    p_recover.add_argument(
        "--dry-run",
        action="store_true",
        help="inspect only; touch nothing",
    )
    p_recover.add_argument(
        "--journal-keep",
        type=int,
        metavar="N",
        default=0,
        help=(
            "rotated segments the daemon retained (reads the same "
            "journal.jsonl.1 … .N chain recovery would)"
        ),
    )
    p_recover.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    p_trace = sub.add_parser(
        "trace",
        help="analyse a --trace telemetry log",
        description=(
            "Inspect a JSONL telemetry trace written by --trace: roll "
            "spans up into the pipeline phase breakdown, solve records "
            "into per-method predicted-vs-actual totals, and op records "
            "into per-tenant and per-op latency tables."
        ),
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summarize", help="phase / method / tenant / op rollups"
    )
    p_tsum.add_argument("path", help="trace JSONL file")
    p_tsum.add_argument(
        "--json", action="store_true", help="emit the full rollup as JSON"
    )

    p_cal = sub.add_parser(
        "calibrate",
        help="fit the difficulty cost model from a --trace log",
        description=(
            "Fit DIFFICULTY_UNIT_COST_S — the seconds-per-difficulty-"
            "unit constant the scheduler multiplies predicted difficulty "
            "by — from the exact-solve records of a telemetry trace, by "
            "least squares in log space.  Reports the hand-calibrated "
            "constant's mean relative prediction error on the same "
            "trace next to the fitted constant's, so a regression is "
            "visible immediately."
        ),
    )
    p_cal.add_argument("path", help="trace JSONL file")
    p_cal.add_argument(
        "--fit-exponent",
        action="store_true",
        help=(
            "additionally fit the two-parameter model "
            "actual ≈ c · difficulty^γ"
        ),
    )
    p_cal.add_argument(
        "--json", action="store_true", help="emit the fit report as JSON"
    )
    return parser


def _cmd_classify(args: argparse.Namespace) -> int:
    fds = parse_fd_set(args.fds)
    result = classify(fds)
    print(f"FD set: {fds}")
    print(f"optimal S-repair complexity: {result.complexity}")
    for line in result.trace_lines():
        print(f"  {line}")
    if result.witness is not None:
        print(f"hardness witness: {result.witness}")
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    _apply_kernel_choice(args)
    table = table_from_csv(args.table)
    fds = parse_fd_set(args.fds)
    recorder = _recorder_for(args)
    try:
        report = assess(
            table,
            fds,
            decomposed=args.decomposed,
            exact_threshold=args.exact_threshold,
            exact_budget_s=args.exact_budget,
            per_component_budget_s=args.per_component_budget,
            unit_cost_s=args.unit_cost,
            detailed=args.json,
            recorder=recorder,
        )
    finally:
        if recorder is not None:
            recorder.close()
    if args.json:
        from dataclasses import asdict

        details = report.component_details or ()
        predicted = [
            d.predicted_s for d in details if d.predicted_s is not None
        ]
        payload = {
            "total_tuples": report.total_tuples,
            "total_weight": report.total_weight,
            "conflict_count": report.conflict_count,
            "conflicting_tuples": report.conflicting_tuples,
            "lower_bound": report.lower_bound,
            "upper_bound": report.upper_bound,
            "complexity": report.complexity,
            "consistent": report.consistent,
            "dirtiness_fraction": report.dirtiness_fraction,
            "component_count": report.component_count,
            "largest_component": report.largest_component,
            "exact_components": report.exact_components,
            "predicted_total_s": (
                round(sum(predicted), 9) if predicted else None
            ),
            "granted_budget_s": args.exact_budget,
            "components": [asdict(detail) for detail in details],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0


def _guarantee_text(result: CleaningResult) -> str:
    if result.optimal:
        return "optimal"
    if result.ratio_bound == 2.0:
        return f"2-approximation (ratio ≤ {result.ratio_bound:g})"
    return f"ratio ≤ {result.ratio_bound:g}"


def _print_portfolio(result: CleaningResult) -> None:
    if result.component_count is None:
        print("conflict components: n/a (global path, no portfolio)")
        return
    print(f"conflict components: {result.component_count}")
    for method, count in sorted((result.method_counts or {}).items()):
        print(f"  {method}: {count} component{'s' if count != 1 else ''}")


def _run_clean(args: argparse.Namespace, strategy: str) -> CleaningResult:
    _apply_kernel_choice(args)
    table = table_from_csv(args.table)
    fds = parse_fd_set(args.fds)
    guarantee = args.guarantee
    # The deprecated --approx alias must not override an explicit
    # --guarantee choice; it only strengthens the default.
    if getattr(args, "approx", False) and guarantee == "best":
        guarantee = "fast"
    recorder = _recorder_for(args)
    executor = _shard_executor_for(args)
    try:
        return clean(
            table,
            fds,
            strategy=strategy,
            guarantee=guarantee,
            decomposed=args.decomposed,
            parallel=args.parallel,
            exact_threshold=args.exact_threshold,
            exact_budget_s=args.exact_budget,
            per_component_budget_s=args.per_component_budget,
            unit_cost_s=args.unit_cost,
            recorder=recorder,
            executor=executor,
        )
    finally:
        if executor is not None:
            executor.close()
        if recorder is not None:
            recorder.close()


def _cmd_s_repair(args: argparse.Namespace) -> int:
    result = _run_clean(args, "deletions")
    print(f"method: {result.method} ({_guarantee_text(result)})")
    if args.portfolio:
        _print_portfolio(result)
    print(f"deleted weight: {result.distance:g}")
    print(result.cleaned.to_string())
    if args.out:
        table_to_csv(result.cleaned, args.out)
    return 0


def _cmd_u_repair(args: argparse.Namespace) -> int:
    result = _run_clean(args, "updates")
    print(f"method: {result.method} ({_guarantee_text(result)})")
    if args.portfolio:
        _print_portfolio(result)
    print(f"update distance: {result.distance:g}")
    print(result.cleaned.to_string())
    if args.out:
        table_to_csv(result.cleaned, args.out)
    return 0


def _cmd_mpd(args: argparse.Namespace) -> int:
    table = table_from_csv(args.table)
    fds = parse_fd_set(args.fds)
    result = most_probable_database(table, fds)
    print(f"method: {result.method}")
    print(f"probability: {result.probability:.6g}")
    print(result.database.to_string())
    if args.out:
        table_to_csv(result.database, args.out)
    return 0


def _closing_recorder(recorder):
    """Context manager closing *recorder* on exit; no-op for ``None``."""
    import contextlib

    if recorder is None:
        return contextlib.nullcontext()
    return contextlib.closing(recorder)


def _stream_lines(source: str):
    if source == "-":
        yield from sys.stdin
    else:
        with open(source, "r", encoding="utf-8") as handle:
            yield from handle


def _open_stream(source: str):
    """Validate the batches source up front so a missing file diagnoses
    like every other bad input instead of tracebacking mid-stream."""
    if source != "-":
        try:
            open(source, "r", encoding="utf-8").close()
        except OSError as exc:
            print(f"error: cannot read batches file: {exc}", file=sys.stderr)
            return None
    return _stream_lines(source)


#: Ops a stream batch line may carry — the session slice of the daemon
#: protocol (`repro.protocol`); both front ends execute them through the
#: same `apply_session_op`, so stream files replay against a daemon
#: session verbatim.
STREAM_OPS = ("append", "delete", "repair", "assess", "status")


def _cmd_stream(args: argparse.Namespace) -> int:
    from .core.table import Table
    from .protocol import ProtocolError, apply_session_op
    from .session import RepairSession

    _apply_kernel_choice(args)
    fds = parse_fd_set(args.fds)
    if args.table:
        table = table_from_csv(args.table)
    elif args.schema:
        schema = [a.strip() for a in args.schema.split(",") if a.strip()]
        if not schema:
            print("error: --schema is empty", file=sys.stderr)
            return 2
        table = Table(schema, {})
    else:
        print("error: stream needs --table or --schema", file=sys.stderr)
        return 2
    lines = _open_stream(args.batches)
    if lines is None:
        return 2

    recorder = _recorder_for(args)
    # With --shards the session rides a sharded executor as its shared
    # pool (same broadcast-mirror protocol, RPC failover underneath).
    executor = _shard_executor_for(args)
    with _closing_recorder(executor), _closing_recorder(recorder), RepairSession(
        table,
        fds,
        guarantee=args.guarantee,
        parallel=args.parallel,
        pool=executor,
        exact_threshold=args.exact_threshold,
        exact_budget_s=args.exact_budget,
        per_component_budget_s=args.per_component_budget,
        unit_cost_s=args.unit_cost,
        recorder=recorder,
    ) as session:
        result = session.repair()
        if not args.quiet:
            print(
                f"session open: {len(session)} tuples, "
                f"{result.report.conflict_count} conflicts, "
                f"distance {result.distance:g}"
            )
        # A malformed batch is a data problem, not a session problem:
        # diagnose it on stderr, count it, and keep the session (and
        # every later batch) alive.  --strict restores abort-on-error;
        # either way a rejected batch makes the exit code nonzero.
        rejected = 0

        def reject(number: int, message: str) -> bool:
            nonlocal rejected
            print(f"batch {number}: {message}", file=sys.stderr)
            rejected += 1
            return args.strict

        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                op = json.loads(line)
                if not isinstance(op, dict):
                    raise ValueError("operation must be a JSON object")
            except ValueError as exc:
                if reject(number, f"bad JSON ({exc})"):
                    return 1
                continue
            kind = op.get("op")
            if kind not in STREAM_OPS:
                if reject(number, f"unknown op {kind!r}"):
                    return 1
                continue
            payload = {k: v for k, v in op.items() if k != "op"}
            start = time.perf_counter()
            try:
                fields = apply_session_op(session, kind, payload)
            except ProtocolError as exc:
                if reject(number, str(exc)):
                    return 1
                continue
            elapsed_ms = (time.perf_counter() - start) * 1e3
            if session.last_result is not None:
                result = session.last_result
            if not args.quiet:
                stats = session.stats
                if kind in ("status", "assess"):
                    print(
                        f"batch {number}: {kind} → |T|={len(session)}, "
                        f"conflicts {fields['conflicts']}, bracket "
                        f"[{fields['lower_bound']:g}, "
                        f"{fields['upper_bound']:g}], "
                        f"{elapsed_ms:.1f} ms"
                    )
                    continue
                what = (
                    kind
                    if kind == "repair"
                    else f"{kind} ×{fields.get('applied', 0)}"
                )
                print(
                    f"batch {number}: {what} → |T|={len(session)}, "
                    f"distance {fields.get('distance', result.distance):g}, "
                    f"components {fields.get('components', 0)}, "
                    f"cache {stats.cache_hits}h/{stats.cache_misses}m, "
                    f"{elapsed_ms:.1f} ms"
                )
        print(f"method: {result.method} ({_guarantee_text(result)})")
        print(f"deleted weight: {result.distance:g}")
        stats = session.stats
        print(
            f"session totals: {stats.appends} appends, {stats.deletes} "
            f"deletes, {stats.repairs} repairs, cache hit rate "
            f"{100 * stats.hit_rate():.0f}%"
            + (f", {stats.pool_solves} pool solves" if stats.pool_solves else "")
        )
        if rejected:
            print(
                f"{rejected} batch{'es' if rejected != 1 else ''} rejected",
                file=sys.stderr,
            )
        if args.out:
            table_to_csv(result.cleaned, args.out)
    return 1 if rejected else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .server import RepairServer, ServerConfig, SessionManager

    _apply_kernel_choice(args)
    config = ServerConfig(
        workers=args.parallel,
        shards=args.shards,
        shard_timeout_s=args.shard_timeout,
        shard_retries=args.shard_retries,
        max_sessions=args.max_sessions,
        max_resident=args.max_resident,
        max_tenant_sessions=args.max_tenant_sessions,
        state_dir=args.state_dir,
        journal_fsync_every=args.journal_fsync,
        snapshot_every=args.snapshot_every,
        journal_max_bytes=args.journal_max_bytes,
        journal_keep=args.journal_keep,
        solve_timeout_s=args.solve_timeout,
        unit_cost_s=args.unit_cost,
    )
    if args.max_tenant_bytes is not None:
        config.max_tenant_bytes = args.max_tenant_bytes
    recorder = _recorder_for(args)
    server = RepairServer(SessionManager(config, recorder=recorder))

    async def run() -> None:
        # SIGTERM/SIGINT drain gracefully: finish in-flight ops, flush
        # the journal and trace, exit 0 — so a supervisor's stop never
        # loses acknowledged work.
        server.install_signal_handlers()
        if args.stdio:
            await server.serve_stdio()
        else:
            port = await server.serve_tcp(args.host, args.port)
            print(f"listening on {args.host}:{port}", flush=True)
            await server.wait_closed()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        return 130
    finally:
        # manager.shutdown() already closed it on the clean path;
        # Recorder.close is idempotent, this covers interrupts.
        if recorder is not None:
            recorder.close()
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import os

    from .state import JOURNAL_NAME, SNAPSHOT_NAME, OpJournal, load_snapshot

    state_dir = args.state_dir
    if not os.path.isdir(state_dir):
        print(f"error: no state directory at {state_dir}", file=sys.stderr)
        return 2
    journal_path = os.path.join(state_dir, JOURNAL_NAME)
    snapshot_path = os.path.join(state_dir, SNAPSHOT_NAME)
    snapshot = load_snapshot(snapshot_path)
    base_seq = int(snapshot.get("journal_seq", 0)) if snapshot else 0
    snapshot_age_s = None
    if snapshot is not None:
        try:
            snapshot_age_s = round(
                max(0.0, time.time() - os.path.getmtime(snapshot_path)), 3
            )
        except OSError:
            pass
    chain = OpJournal.chain_paths(journal_path, args.journal_keep)
    records, last_seq = OpJournal.load_chain(journal_path, args.journal_keep)
    tail = [r for r in records if int(r.get("seq", 0)) > base_seq]
    tail_ops: dict = {}
    tail_sessions = set()
    for record in tail:
        op = str(record.get("op"))
        tail_ops[op] = tail_ops.get(op, 0) + 1
        tail_sessions.add(
            (str(record.get("tenant") or ""), str(record.get("session") or ""))
        )
    report: dict = {
        "state_dir": state_dir,
        "snapshot": None,
        "journal": {
            "chain": chain,
            "records": len(records),
            "last_seq": last_seq,
        },
        "replay": {
            "ops": len(tail),
            "by_op": dict(sorted(tail_ops.items())),
            "sessions_touched": len(tail_sessions),
            # Solver work happens only on repair replays; append/delete/
            # open are index maintenance — the honest cost breakdown.
            "solver_ops": tail_ops.get("repair", 0),
        },
    }
    if snapshot is not None:
        report["snapshot"] = {
            "path": snapshot_path,
            "age_s": snapshot_age_s,
            "journal_seq": base_seq,
            "sessions": len(snapshot.get("sessions") or ()),
            "cached_solutions": len(snapshot.get("solutions") or ()),
            "supervision": snapshot.get("supervision") or {},
        }
    if args.dry_run:
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        if snapshot is None:
            print("snapshot: none (recovery would replay the full chain)")
        else:
            snap = report["snapshot"]
            print(
                f"snapshot: {snap['sessions']} sessions, "
                f"{snap['cached_solutions']} cached solutions, "
                f"seq {base_seq}"
                + (f", {snap['age_s']:.0f}s old"
                   if snap["age_s"] is not None else "")
            )
            if snap["supervision"]:
                worn = ", ".join(
                    f"{k}={v}" for k, v in sorted(snap["supervision"].items())
                    if v
                )
                if worn:
                    print(f"lifetime supervision: {worn}")
        print(
            f"journal chain: {len(chain)} segment"
            f"{'s' if len(chain) != 1 else ''} "
            f"({len(records)} records, last seq {last_seq})"
        )
        for segment in chain:
            print(f"  {segment}")
        replay = report["replay"]
        if replay["ops"]:
            mix = ", ".join(
                f"{op}×{n}" for op, n in sorted(tail_ops.items())
            )
            print(
                f"replay estimate: {replay['ops']} ops past the snapshot "
                f"({mix}) across {replay['sessions_touched']} sessions, "
                f"{replay['solver_ops']} with solver work"
            )
        else:
            print("replay estimate: nothing to replay (snapshot is current)")
        return 0
    # Real recovery: the daemon's own boot path, offline — construct a
    # manager on the state dir (snapshot load + journal replay + fresh
    # compaction), then shut it down cleanly.
    from .server import ServerConfig, SessionManager

    manager = SessionManager(
        ServerConfig(
            workers=0,
            state_dir=state_dir,
            journal_keep=args.journal_keep,
        )
    )
    recovered = manager.recovered_sessions
    replayed = manager.replayed_ops
    errors = manager.errors
    manager.shutdown()
    result = {
        "recovered_sessions": recovered,
        "replayed_ops": replayed,
        "errors": errors,
        "compacted": True,
    }
    if args.json:
        print(json.dumps({**report, "recovery": result},
                         indent=2, sort_keys=True))
    else:
        print(
            f"recovered {recovered} sessions, replayed {replayed} ops"
            + (f" ({errors} errors)" if errors else "")
            + "; state compacted"
        )
    return 0 if not errors else 1


def _read_trace_or_fail(path: str):
    from . import obs

    try:
        return obs.read_trace(path)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return None


def _cmd_trace(args: argparse.Namespace) -> int:
    from . import obs

    records = _read_trace_or_fail(args.path)
    if records is None:
        return 2
    summary = obs.summarize_trace(records)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    phases = summary["phases"]
    if phases:
        print("phase breakdown:")
        for phase, row in phases.items():
            print(
                f"  {phase:<10} {row['total_s']:>10.4f} s "
                f"({100 * row['share']:5.1f}%)  ×{row['count']}"
            )
    methods = summary["methods"]
    if methods:
        print(f"solves: {summary['solves']}")
        for method, row in sorted(methods.items()):
            line = (
                f"  {method:<12} ×{row['solves']:<5} "
                f"{row['actual_s']:.4f} s total, max {row['max_s']:.4f} s"
            )
            if row["predicted_pairs"]:
                line += (
                    f", predicted {row['predicted_s']:.4f} s over "
                    f"{row['predicted_pairs']} scheduled"
                )
            if row["budget_exhausted"]:
                line += f", {row['budget_exhausted']} budget-exhausted"
            print(line)
    tenants = summary["tenants"]
    if tenants:
        print("tenants:")
        for tenant, row in sorted(tenants.items()):
            print(
                f"  {tenant:<16} {row['ops']} ops, {row['total_s']:.4f} s"
            )
    ops = summary["ops"]
    if ops:
        print("ops:")
        for op, row in sorted(ops.items()):
            line = f"  {op:<10} ×{row['count']:<5} {row['total_s']:.4f} s"
            if row["errors"]:
                line += f", {row['errors']} errors"
            print(line)
    if not (phases or methods or tenants or ops):
        print("trace contains no span, solve, or op records")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from . import obs

    records = _read_trace_or_fail(args.path)
    if records is None:
        return 2
    report = obs.calibrate_trace(records, fit_exponent=args.fit_exponent)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if not report["pairs"]:
        print(
            "no calibratable solve records (need exact solves with "
            "positive predicted difficulty and measured seconds — run "
            "with --trace and a global --exact-budget)"
        )
        return 0
    print(f"training pairs: {report['pairs']} exact solves")
    print(
        f"hand-calibrated unit cost: {report['hand_unit_cost_s']:.3g} s "
        f"(mean relative error {report['hand_mean_rel_error']:.3f})"
    )
    print(
        f"fitted unit cost:          {report['unit_cost_s']:.3g} s "
        f"(mean relative error {report['mean_rel_error']:.3f})"
    )
    if "exponent" in report:
        print(
            f"fitted exponent model:     "
            f"{report['exponent_unit_cost_s']:.3g} s · difficulty^"
            f"{report['exponent']:.3f} "
            f"(mean relative error {report['exponent_mean_rel_error']:.3f})"
        )
    return 0


_COMMANDS = {
    "classify": _cmd_classify,
    "assess": _cmd_assess,
    "s-repair": _cmd_s_repair,
    "u-repair": _cmd_u_repair,
    "mpd": _cmd_mpd,
    "stream": _cmd_stream,
    "serve": _cmd_serve,
    "recover": _cmd_recover,
    "trace": _cmd_trace,
    "calibrate": _cmd_calibrate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
