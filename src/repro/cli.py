"""Command-line interface: ``fdrepair <command>``.

Commands
--------
``classify``
    Dichotomy verdict and Example 3.5-style simplification trace for an
    FD set given as a string (``"A B -> C; C -> D"``).
``s-repair``
    Optimal (or ``--approx`` 2-approximate) S-repair of a CSV table.
``u-repair``
    Best-effort U-repair of a CSV table, reporting the guarantee achieved.
``mpd``
    Most probable database of a probabilistic CSV table (weights are the
    tuple probabilities).

The CSV layout is ``id,<attributes...>,weight`` (see
:mod:`repro.io.tables`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.approx import approx_s_repair
from .core.dichotomy import classify
from .core.fd import FDSet, parse_fd_set
from .core.mpd import most_probable_database
from .core.srepair import optimal_s_repair
from .core.urepair import u_repair
from .io.tables import table_from_csv, table_to_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fdrepair",
        description=(
            "Optimal subset/update repairs for functional dependencies "
            "(PODS 2018 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser(
        "classify", help="dichotomy verdict for an FD set"
    )
    p_classify.add_argument("fds", help='FD set, e.g. "A -> B; B -> C"')

    p_srepair = sub.add_parser("s-repair", help="compute an S-repair")
    p_srepair.add_argument("table", help="CSV file (id,<attrs...>,weight)")
    p_srepair.add_argument("fds", help="FD set string")
    p_srepair.add_argument(
        "--approx",
        action="store_true",
        help="use the polynomial 2-approximation instead of an exact repair",
    )
    p_srepair.add_argument("--out", help="write the repair CSV here")

    p_urepair = sub.add_parser("u-repair", help="compute a U-repair")
    p_urepair.add_argument("table", help="CSV file (id,<attrs...>,weight)")
    p_urepair.add_argument("fds", help="FD set string")
    p_urepair.add_argument("--out", help="write the update CSV here")

    p_mpd = sub.add_parser("mpd", help="most probable database")
    p_mpd.add_argument("table", help="CSV file; weights are probabilities")
    p_mpd.add_argument("fds", help="FD set string")
    p_mpd.add_argument("--out", help="write the database CSV here")
    return parser


def _cmd_classify(args: argparse.Namespace) -> int:
    fds = parse_fd_set(args.fds)
    result = classify(fds)
    print(f"FD set: {fds}")
    print(f"optimal S-repair complexity: {result.complexity}")
    for line in result.trace_lines():
        print(f"  {line}")
    if result.witness is not None:
        print(f"hardness witness: {result.witness}")
    return 0


def _cmd_s_repair(args: argparse.Namespace) -> int:
    table = table_from_csv(args.table)
    fds = parse_fd_set(args.fds)
    if args.approx:
        result = approx_s_repair(table, fds)
        guarantee = f"2-approximation (ratio ≤ {result.ratio_bound:g})"
    else:
        result = optimal_s_repair(table, fds)
        guarantee = "optimal"
    print(f"method: {result.method} ({guarantee})")
    print(f"deleted weight: {result.distance:g}")
    print(result.repair.to_string())
    if args.out:
        table_to_csv(result.repair, args.out)
    return 0


def _cmd_u_repair(args: argparse.Namespace) -> int:
    table = table_from_csv(args.table)
    fds = parse_fd_set(args.fds)
    result = u_repair(table, fds)
    guarantee = (
        "optimal" if result.optimal else f"ratio ≤ {result.ratio_bound:g}"
    )
    print(f"method: {result.method} ({guarantee})")
    print(f"update distance: {result.distance:g}")
    print(result.update.to_string())
    if args.out:
        table_to_csv(result.update, args.out)
    return 0


def _cmd_mpd(args: argparse.Namespace) -> int:
    table = table_from_csv(args.table)
    fds = parse_fd_set(args.fds)
    result = most_probable_database(table, fds)
    print(f"method: {result.method}")
    print(f"probability: {result.probability:.6g}")
    print(result.database.to_string())
    if args.out:
        table_to_csv(result.database, args.out)
    return 0


_COMMANDS = {
    "classify": _cmd_classify,
    "s-repair": _cmd_s_repair,
    "u-repair": _cmd_u_repair,
    "mpd": _cmd_mpd,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
