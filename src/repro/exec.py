"""Execution layer: map repair solvers over conflict components.

:mod:`repro.core.decompose` splits an instance into independent conflict
components; this module runs a solver over them — serially, or on a
process pool — and merges the results in deterministic table order.  The
two are deliberately separate layers: decomposition is pure conflict
math, execution is scheduling.

Determinism contract
--------------------
Serial and parallel execution produce *identical* repairs: tasks are
mapped order-preservingly (``ProcessPoolExecutor.map``), every solver is
a pure function of its component, merge order is canonical table order,
and the fresh labelled nulls a U-repair component may introduce are
relabelled per component (``⊥c<ordinal>.<k>`` in changed-cell order), so
even the serialised form is byte-identical however the components were
scheduled.  A worker-side rebuild of a component's
:class:`~repro.core.conflict_index.ConflictIndex` is equivalent to the
parent's projected sub-index (pinned by the PR-1 index properties), so
shipping plain sub-tables across the process boundary is safe.

The process pool is a genuine pool of *processes* (the solvers are
CPU-bound Python), forked lazily and only when the task count warrants
it; environments without working subprocess support degrade to the
serial path rather than failing.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from itertools import count as _iter_count
from time import perf_counter as _perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from . import faults as _faults
from . import obs as _obs
from .core import kernel as _kernel
from .core.decompose import (
    EXACT_COMPONENT_THRESHOLD,
    ComponentPlan,
    Decomposition,
    decompose,
    plan_s_method,
    resolve_plan_defaults,
)
from .core.fd import FDSet
from .core.table import FreshValue, Table, TupleId

__all__ = [
    "resolve_workers",
    "map_components",
    "solve_components",
    "assemble_s_result",
    "decomposed_s_repair",
    "decomposed_u_repair",
    "PersistentWorkerPool",
    "DEFAULT_SESSION_KEY",
]

#: Display name and proven ratio bound per portfolio method.
S_METHOD_NAMES = {
    "dichotomy": "OptSRepair",
    "exact": "exact-vertex-cover",
    "approx": "bar-yehuda-even",
    "greedy": "greedy-degree",
}
S_METHOD_RATIOS = {
    "dichotomy": 1.0,
    "exact": 1.0,
    "approx": 2.0,
    "greedy": float("inf"),
}


def resolve_workers(parallel: Optional[int], task_count: int) -> int:
    """Effective worker count: 1 (serial) unless parallelism is requested
    *and* there is more than one task; never more workers than tasks.

    An explicit request for more workers than cores is honoured — the OS
    schedules the oversubscription, results are identical regardless, and
    capping silently at ``cpu_count`` would make ``--parallel`` a no-op
    on single-core containers.
    """
    if not parallel or parallel <= 1 or task_count <= 1:
        return 1
    return min(parallel, task_count)


def map_components(worker, tasks: Sequence, parallel: Optional[int] = None) -> List:
    """Order-preserving map of *worker* over picklable *tasks*.

    Serial for ``parallel`` in (None, 0, 1) or a single task; otherwise a
    process pool of :func:`resolve_workers` workers.  Results come back
    in task order either way — parallelism never changes the merge.  If
    the platform cannot spawn workers (sandboxes, missing semaphores),
    the pool degrades to the serial path: the workers are pure, so a
    retry is always safe.
    """
    workers = resolve_workers(parallel, len(tasks))
    if workers <= 1:
        return [worker(task) for task in tasks]
    chunksize = max(1, len(tasks) // (workers * 4))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, tasks, chunksize=chunksize))
    except (OSError, PermissionError, BrokenProcessPool):
        return [worker(task) for task in tasks]


# ---------------------------------------------------------------------------
# Persistent worker pool (streaming sessions, shared by daemon sessions)
# ---------------------------------------------------------------------------

#: Namespace key a single-session pool (constructor schema/fds) binds to.
DEFAULT_SESSION_KEY = ""


def _session_worker_main(inq, outq, node_limit, use_kernel=True,
                         budget_s=None, worker_index=0, generation=0,
                         fault_spec=None) -> None:
    """Worker loop of a :class:`PersistentWorkerPool`.

    Each worker mirrors *every attached session's* table as plain
    ``rows``/``weights`` dicts under a session key, kept in sync by
    broadcast delta messages, and solves components shipped as
    **id lists only** — the payload a fork-per-call pool would re-pickle
    per task (the whole sub-table) crosses the process boundary exactly
    once, as deltas.  Dict insertion order mirrors the owning session's
    (appends at the end, deletions in place), so the sub-table a worker
    builds for an id list is identical to the session-side projection and
    the solves are byte-identical wherever they run.

    Namespacing is what lets one pool serve many concurrent
    ``(tenant, table, Δ)`` sessions: each ``open`` message installs a
    session's schema, FD set, and solver knobs; maintenance and solve
    messages carry the key.  A solve against a missing or stale
    namespace ships an error for *that* request — it never kills the
    worker or touches other sessions' mirrors.
    """
    # The parent's kernel on/off choice must survive spawn/forkserver
    # start methods, where workers re-import the module with the flag at
    # its default — so it travels as an argument, not as ambient state.
    _kernel.set_enabled(use_kernel)
    # The fault plan travels the same way (and additionally carries this
    # worker's index and generation, so a chaos rule can kill exactly
    # one incarnation of one worker): counters restart per process.
    plan = _faults.FaultPlan.from_spec(fault_spec)
    solve_count = 0
    # key -> [schema, fds, node_limit, budget_s, rows, weights]
    spaces: Dict = {}
    while True:
        message = inq.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "open":
            key, schema, fds, space_limit, space_budget = message[1:6]
            spaces[key] = [
                tuple(schema),
                fds,
                node_limit if space_limit is None else space_limit,
                budget_s if space_budget is None else space_budget,
                {},
                {},
            ]
        elif kind == "drop":
            spaces.pop(message[1], None)
        elif kind == "reset":
            space = spaces.get(message[1])
            if space is not None:
                space[4] = dict(message[2])
                space[5] = dict(message[3])
        elif kind == "append":
            space = spaces.get(message[1])
            if space is not None:
                space[4].update(message[2])
                space[5].update(message[3])
        elif kind == "delete":
            space = spaces.get(message[1])
            if space is not None:
                for tid in message[2]:
                    space[4].pop(tid, None)
                    space[5].pop(tid, None)
        elif kind == "solve":
            seq, key, ids, method = message[1], message[2], message[3], message[4]
            solve_count += 1
            try:
                # Inside the try: a ``raise`` action ships as a solve
                # error (like any solver exception), a ``kill`` action
                # exits the process outright.
                plan.fire("worker.solve", worker=worker_index,
                          generation=generation, solve=solve_count,
                          key=key, method=method)
                space = spaces[key]
                schema, fds, space_limit, space_budget, rows, weights = space
                # An optional sixth element is a per-task budget slice
                # (the global scheduler's plans ship one per exact
                # solve); absent, the namespace default applies.
                solve_budget = message[5] if len(message) > 5 else space_budget
                subtable = Table(
                    schema,
                    {tid: rows[tid] for tid in ids},
                    {tid: weights[tid] for tid in ids},
                )
                solve_start = _perf_counter()
                kept, effective = _solve_s_kept(
                    subtable, fds, method, space_limit, budget_s=solve_budget
                )
                elapsed = _perf_counter() - solve_start
            except BaseException as exc:  # ship the failure, don't die
                outq.put((seq, None, None, 0.0, repr(exc)))
            else:
                outq.put((seq, tuple(kept), effective, elapsed, None))


class _Inflight:
    """Parent-side record of one dispatched solve: where it is routed,
    how it has been retried, and what it has degraded to."""

    __slots__ = ("key", "ids", "method", "budget", "widx", "sent_at",
                 "attempts", "degraded")

    def __init__(self, key, ids, method, budget):
        self.key = key
        self.ids = ids
        self.method = method
        self.budget = budget
        self.widx = None       # routed worker slot (None = unrouted)
        self.sent_at = None    # monotonic dispatch time (timeout sweep)
        self.attempts = 0      # retries consumed
        self.degraded = False  # already fell to the approximation tier


class PersistentWorkerPool:
    """Long-lived worker processes shared by streaming repair sessions.

    :func:`map_components` forks a fresh process pool per call and ships
    whole sub-tables — right for one-shot batch repairs, pure overhead
    for a session issuing many small re-repairs.  This pool keeps warm
    workers across calls: each worker holds a mirror of each attached
    session's table (synchronised by broadcasting the same deltas the
    sessions apply locally), so a solve request is just ``(component
    ids, method)``.

    **Multi-tenancy.**  Worker mirrors are namespaced by a session key:
    :meth:`open_session` installs a session's schema, Δ, and solver
    knobs on every worker; :meth:`broadcast` and :meth:`solve` take the
    key.  One pool therefore serves many concurrent ``(tenant, table,
    Δ)`` sessions — the process lifecycle (spawn, dispatch, teardown)
    lives here, while the engine state (mirrors, caches, indexes) stays
    per session.  Constructing with ``schema``/``fds`` binds the default
    namespace, preserving the single-session API.

    **Concurrency.**  ``solve`` is thread-safe: a collector thread drains
    the shared result queue and correlates results to callers by global
    sequence number, so concurrent solves from many sessions interleave
    freely — one session's slow exact solve never blocks another's.

    **Failure and supervision.**  A worker process dying is detected
    within ~0.2 s by the collector's liveness sweep.  By default the
    pool *self-heals*: a supervisor respawns the dead worker with capped
    exponential backoff, replays the parent-side table mirror (full
    snapshot of every attached namespace, so no delta is lost) into the
    replacement, and transparently **retries** the solves that were in
    flight on the dead worker — safe and byte-identical because the
    workers are pure functions of the mirrored component content.
    After ``max_retries`` the failing component **degrades** to the
    approximation tier (reported honestly in method mixes, exactly like
    budget exhaustion); tasks already in the approximation tier fail
    that call instead.  Per-solve timeouts (``solve_timeout_s``) ride
    the same path: the stuck worker is terminated, its other in-flight
    solves retry, and the overdue solve degrades.  A slot that keeps
    crashing is abandoned after ``max_respawns`` attempts; the pool is
    broken only when every slot is gone, and callers then fall back to
    the serial path as before.  ``supervise=False`` restores the PR-6
    fail-fast semantics (no mirror, no respawn, dead workers fail their
    routed solves immediately).  Supervision counters are exposed via
    :meth:`supervision_stats` and the optional *recorder*.  A worker-side
    solve *exception* still fails only that call.  The pool is an
    optimisation, never a dependency: construction degrades gracefully
    (``start`` returns ``False``) on platforms without subprocess
    support, and callers re-solve serially on any failure.

    **Fault injection.**  Parent-side dispatch fires the
    ``pool.dispatch`` site and workers fire ``worker.solve`` (see
    :mod:`repro.faults`); *faults* defaults to the plan named by the
    ``FDREPAIR_FAULTS`` environment variable, so chaos tests drive real
    worker deaths deterministically instead of monkeypatching.
    """

    def __init__(self, workers: int, schema=None, fds: Optional[FDSet] = None,
                 node_limit: int = 2000,
                 use_kernel: Optional[bool] = None,
                 budget_s: Optional[float] = None, *,
                 supervise: bool = True,
                 max_retries: int = 2,
                 max_respawns: int = 8,
                 respawn_backoff_s: float = 0.05,
                 respawn_backoff_cap_s: float = 2.0,
                 solve_timeout_s: Optional[float] = None,
                 faults=None,
                 recorder=None):
        import threading

        self._worker_count = max(1, int(workers))
        self._schema = None if schema is None else tuple(schema)
        self._fds = fds
        self._node_limit = node_limit
        self._budget_s = budget_s
        self._use_kernel = _kernel.enabled() if use_kernel is None else bool(use_kernel)
        self._procs: List = []
        self._inqs: List = []
        self._outq = None
        self._mp_ctx = None
        self._started = False
        self._broken = False
        self._closed = False
        self._stop = threading.Event()
        self._collector = None
        self._cond = threading.Condition()
        self._pending: Dict[int, "_Inflight"] = {}  # seq -> in-flight record
        self._done: Dict[int, Tuple] = {}    # seq -> (kept, method, secs, error)
        self._dead: set = set()
        self._next_seq = 0
        self._rr = 0
        # --- supervision state ---------------------------------------
        self._supervise = bool(supervise)
        self._max_retries = max(0, int(max_retries))
        self._max_respawns = max(0, int(max_respawns))
        self._backoff_s = max(0.0, float(respawn_backoff_s))
        self._backoff_cap_s = max(self._backoff_s, float(respawn_backoff_cap_s))
        self._solve_timeout_s = solve_timeout_s
        self._faults = _faults.resolve(faults)
        self._recorder = _obs.resolve(recorder)
        # Authoritative parent-side mirror of every namespace, replayed
        # into replacement workers: key -> [schema, fds, node_limit,
        # budget_s, rows, weights].  Guarded by _io, which serialises
        # sends and replay so a respawn can never miss a delta.
        self._mirror: Dict = {}
        self._io = threading.Lock()
        self._gens: List[int] = []           # per-slot incarnation number
        self._respawn_at: Dict[int, float] = {}   # slot -> due (monotonic)
        self._respawning: set = set()             # slots mid-respawn
        self._respawn_attempts: Dict[int, int] = {}
        self._abandoned: set = set()
        self._counters = {
            "worker_deaths": 0, "respawns": 0, "retries": 0,
            "degraded": 0, "timeouts": 0, "abandoned": 0,
        }

    @property
    def alive(self) -> bool:
        return self._started and not self._broken

    @property
    def worker_count(self) -> int:
        return self._worker_count

    def live_workers(self) -> int:
        return len(self._procs) - len(self._dead) if self._started else 0

    def supervision_stats(self) -> Dict[str, int]:
        """Counters of the self-healing machinery: ``worker_deaths``,
        ``respawns``, ``retries``, ``degraded``, ``timeouts``,
        ``abandoned`` — the honesty channel for chaos tests and the
        daemon's ``stats`` op."""
        with self._cond:
            return dict(self._counters)

    def start(self) -> bool:
        """Spawn the workers; True on success (idempotent)."""
        if self._started:
            return not self._broken
        self._started = True
        try:
            import multiprocessing as mp
            import threading

            ctx = mp.get_context()
            self._mp_ctx = ctx
            self._outq = ctx.Queue()
            fault_spec = self._faults.to_spec() or None
            for widx in range(self._worker_count):
                inq = ctx.Queue()
                proc = ctx.Process(
                    target=_session_worker_main,
                    args=(inq, self._outq, self._node_limit,
                          self._use_kernel, self._budget_s,
                          widx, 0, fault_spec),
                    daemon=True,
                )
                proc.start()
                self._inqs.append(inq)
                self._procs.append(proc)
                self._gens.append(0)
            self._collector = threading.Thread(
                target=self._collector_loop, name="fdrepair-pool-collector",
                daemon=True,
            )
            self._collector.start()
        except (OSError, PermissionError, ValueError, ImportError):
            self._broken = True
            self._shutdown(force=True)
            return False
        if self._schema is not None and self._fds is not None:
            if not self.open_session(DEFAULT_SESSION_KEY, self._schema, self._fds):
                self._broken = True
                self._shutdown(force=True)
        return not self._broken

    # ------------------------------------------------------------------
    # Session namespaces
    # ------------------------------------------------------------------
    def open_session(self, key, schema, fds: FDSet, *,
                     node_limit: Optional[int] = None,
                     budget_s: Optional[float] = None) -> bool:
        """Install session *key*'s schema/Δ/knobs on every worker (its
        mirror starts empty; follow with a ``reset`` broadcast)."""
        with self._io:
            if self._supervise:
                self._mirror[key] = [tuple(schema), fds, node_limit,
                                     budget_s, {}, {}]
            return self._send_all(
                ("open", key, tuple(schema), fds, node_limit, budget_s)
            )

    def drop_session(self, key) -> bool:
        """Forget session *key*'s mirrors on every worker."""
        with self._io:
            self._mirror.pop(key, None)
            return self._send_all(("drop", key))

    def broadcast(self, op, key=DEFAULT_SESSION_KEY) -> bool:
        """Send one mirror-maintenance op — ``("reset", rows, weights)``,
        ``("append", rows, weights)`` or ``("delete", ids)`` — to every
        worker, for session *key*.  False (pool broken) instead of
        raising."""
        with self._io:
            if self._supervise:
                self._apply_mirror(op, key)
            return self._send_all((op[0], key) + tuple(op[1:]))

    def _apply_mirror(self, op, key) -> None:
        """Apply a maintenance op to the parent-side mirror (under
        ``_io``) — the snapshot respawned workers are rebuilt from."""
        space = self._mirror.get(key)
        if space is None:
            return
        kind = op[0]
        if kind == "reset":
            space[4] = dict(op[1])
            space[5] = dict(op[2])
        elif kind == "append":
            space[4].update(op[1])
            space[5].update(op[2])
        elif kind == "delete":
            for tid in op[1]:
                space[4].pop(tid, None)
                space[5].pop(tid, None)

    def _send_all(self, message) -> bool:
        """Send to every live worker (caller holds ``_io``).  A queue
        that refuses the message fails *that worker* — supervision then
        respawns it and replays the mirror, so one bad pipe no longer
        breaks the whole pool."""
        if not self.alive:
            return False
        failed = []
        for i, inq in enumerate(self._inqs):
            if i in self._dead:
                continue
            try:
                inq.put(message)
            except (OSError, ValueError):
                failed.append(i)
        for i in failed:
            self._fail_worker(i, "mirror broadcast to worker failed")
        return self.alive

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, tasks: Sequence[Tuple],
              timeout: float = 120.0,
              key=DEFAULT_SESSION_KEY
              ) -> List[Tuple[Tuple[TupleId, ...], str, float]]:
        """Solve ``(component ids, method)`` or ``(component ids, method,
        budget_s)`` tasks on the warm workers; returns ``(kept ids,
        effective method, solve seconds)`` per task.  The optional third
        task element is a per-task wall-clock budget overriding the
        session namespace's default — how the global difficulty scheduler
        ships each exact solve's slice so pool and serial runs read the
        identical plan.  The seconds are measured *inside* the worker
        around the solve itself (queueing and pickling excluded), so
        they are the pool-path counterpart of a serially timed solve —
        the telemetry layer's predicted-vs-actual training signal.

        Round-robin dispatch over live workers; results are reassembled
        in task order.  Thread-safe — concurrent calls (one per daemon
        session) interleave without blocking each other.  Under
        supervision (the default) a worker dying mid-batch does **not**
        fail the call: its in-flight solves are retried on surviving or
        respawned workers (byte-identical — workers are pure), degrading
        to the approximation tier only after ``max_retries``.  Raises
        ``RuntimeError`` only when the pool is closed/broken, the batch
        *timeout* expires, or a worker-side solve exception surfaces;
        callers fall back to the serial path.  With ``supervise=False``
        a dead worker fails its routed solves within ~0.2 s, as before.
        """
        import time as _time

        if not self.alive:
            raise RuntimeError("worker pool is not running")
        if not tasks:
            return []
        deadline = _time.monotonic() + timeout
        with self._cond:
            if self._broken:
                raise RuntimeError("worker pool is not running")
            live = [i for i in range(len(self._procs)) if i not in self._dead]
            if not live and not (self._supervise and
                                 (self._respawn_at or self._respawning)):
                self._broken = True
                raise RuntimeError("worker pool has no live workers")
            seqs = []
            for task in tasks:
                ids, method = task[0], task[1]
                budget = task[2] if len(task) > 2 else None
                seq = self._next_seq
                self._next_seq += 1
                self._pending[seq] = _Inflight(key, tuple(ids), method, budget)
                seqs.append(seq)
        self._route_unsent()
        failure = None
        with self._cond:
            while True:
                if all(seq in self._done for seq in seqs):
                    outcomes = [self._done.pop(seq) for seq in seqs]
                    break
                if self._broken:
                    failure = "worker pool failed"
                elif _time.monotonic() >= deadline:
                    failure = f"worker pool timed out after {timeout:g}s"
                if failure is not None:
                    for seq in seqs:  # abandon: late results are discarded
                        self._pending.pop(seq, None)
                        self._done.pop(seq, None)
                    break
                remaining = deadline - _time.monotonic()
                self._cond.wait(min(max(remaining, 0.01), 0.5))
        if failure is not None:
            raise RuntimeError(failure)
        results = []
        for kept, effective, secs, error in outcomes:
            if error is not None:
                raise RuntimeError(f"worker solve failed: {error}")
            results.append((kept, effective, secs))
        return results

    def _route_unsent(self) -> None:
        """Assign every unrouted in-flight solve to a live worker and
        ship it.  Called after registration, after a worker failure
        requeues its solves, and after a respawn brings capacity back —
        when no worker is live yet, solves stay queued for the next
        respawn instead of failing."""
        import time as _time

        to_send: List[Tuple] = []
        with self._cond:
            live = [i for i in range(len(self._procs)) if i not in self._dead]
            if not live:
                return
            for seq, rec in self._pending.items():
                if rec.widx is not None:
                    continue
                rec.widx = live[self._rr % len(live)]
                self._rr += 1
                rec.sent_at = _time.monotonic()
                to_send.append((seq, rec.widx, rec.key, rec.ids,
                                rec.method, rec.budget))
        failed = set()
        with self._io:
            for seq, widx, key, ids, method, budget in to_send:
                if self._faults.fire("pool.dispatch",
                                     worker=widx, seq=seq) == "drop":
                    continue  # lost message: the timeout sweep recovers it
                message = (
                    ("solve", seq, key, ids, method)
                    if budget is None
                    else ("solve", seq, key, ids, method, budget)
                )
                try:
                    self._inqs[widx].put(message)
                except (OSError, ValueError):
                    failed.add(widx)
        for widx in failed:
            self._fail_worker(widx, "dispatch to worker failed")

    # ------------------------------------------------------------------
    # Result collection, worker liveness, and supervision
    # ------------------------------------------------------------------
    def _collector_loop(self) -> None:
        from queue import Empty
        import time as _time

        outq = self._outq
        last_sweep = 0.0
        while not self._stop.is_set():
            now = _time.monotonic()
            if now - last_sweep >= 0.1:
                last_sweep = now
                self._reap_dead_workers()
                self._sweep_timeouts()
                self._service_respawns()
            try:
                item = outq.get(timeout=0.1)
            except Empty:
                continue
            except (OSError, ValueError, EOFError):
                break
            try:
                seq, kept, effective, secs, error = item
            except (TypeError, ValueError):
                continue
            with self._cond:
                if seq in self._pending:
                    del self._pending[seq]
                    self._done[seq] = (kept, effective, secs, error)
                    self._cond.notify_all()

    def _reap_dead_workers(self) -> None:
        """Liveness sweep (~0.2 s): a worker process that died mid-solve
        leaves the dispatch rotation immediately; under supervision its
        in-flight solves are requeued and a replacement is scheduled,
        otherwise they fail fast so callers never burn the full solve
        timeout."""
        fresh_dead = [
            i for i, proc in enumerate(self._procs)
            if i not in self._dead and not proc.is_alive()
        ]
        for widx in fresh_dead:
            self._fail_worker(widx, "worker process died")

    def _fail_worker(self, widx: int, reason: str) -> None:
        requeued = False
        with self._cond:
            if widx in self._dead:
                return
            self._dead.add(widx)
            self._counters["worker_deaths"] += 1
            supervising = self._supervise and not self._closed
            for seq, rec in list(self._pending.items()):
                if rec.widx != widx:
                    continue
                if supervising and rec.attempts < self._max_retries:
                    # Transparent retry: workers are pure, so re-running
                    # the solve elsewhere is byte-identical.
                    rec.attempts += 1
                    rec.widx = None
                    rec.sent_at = None
                    self._counters["retries"] += 1
                    requeued = True
                elif (supervising and not rec.degraded
                        and rec.method in ("exact", "dichotomy")):
                    # Retries exhausted: degrade to the approximation
                    # tier, reported honestly via the effective method —
                    # the same escape hatch as budget exhaustion.
                    rec.method = "approx"
                    rec.degraded = True
                    rec.attempts = 0
                    rec.widx = None
                    rec.sent_at = None
                    self._counters["degraded"] += 1
                    requeued = True
                else:
                    del self._pending[seq]
                    self._done[seq] = (None, None, 0.0, reason)
            if supervising:
                self._schedule_respawn_locked(widx)
            if (len(self._dead) >= len(self._procs)
                    and not (self._respawn_at or self._respawning)):
                self._broken = True
            self._cond.notify_all()
        self._recorder.count("pool.worker_death")
        if requeued:
            self._route_unsent()

    def _schedule_respawn_locked(self, widx: int) -> None:
        """Book a replacement for slot *widx* after a capped-exponential
        backoff; a slot that has crashed ``max_respawns`` times is
        abandoned (caller holds ``_cond``)."""
        import time as _time

        attempts = self._respawn_attempts.get(widx, 0)
        if attempts >= self._max_respawns:
            if widx not in self._abandoned:
                self._abandoned.add(widx)
                self._counters["abandoned"] += 1
            return
        delay = min(self._backoff_s * (2 ** attempts), self._backoff_cap_s)
        self._respawn_at[widx] = _time.monotonic() + delay

    def _sweep_timeouts(self) -> None:
        """Per-solve timeout path: terminate the worker hosting an
        overdue solve (it is presumed stuck).  The overdue solve's
        retries are exhausted on the spot — re-running the identical
        solve would stall again — so the failure handler degrades it,
        while the worker's *other* in-flight solves retry normally."""
        if self._solve_timeout_s is None or not self._supervise:
            return
        import time as _time

        victims = set()
        with self._cond:
            now = _time.monotonic()
            for rec in self._pending.values():
                if (rec.widx is not None and rec.widx not in self._dead
                        and rec.sent_at is not None
                        and now - rec.sent_at > self._solve_timeout_s):
                    rec.attempts = max(rec.attempts, self._max_retries)
                    self._counters["timeouts"] += 1
                    victims.add(rec.widx)
        for widx in victims:
            try:
                self._procs[widx].terminate()
            except (OSError, ValueError, AttributeError):
                pass
            self._recorder.count("pool.timeout")
            self._fail_worker(
                widx, f"solve exceeded {self._solve_timeout_s:g}s"
            )

    def _service_respawns(self) -> None:
        """Run due respawns (collector thread).  A slot moves from the
        backoff book to ``_respawning`` while its replacement spawns, so
        concurrent failure handling never mistakes an in-progress
        respawn for a dead pool."""
        if not self._supervise or self._closed:
            return
        import time as _time

        due = []
        with self._cond:
            now = _time.monotonic()
            for widx, when in list(self._respawn_at.items()):
                if when <= now:
                    del self._respawn_at[widx]
                    self._respawning.add(widx)
                    due.append(widx)
        for widx in due:
            ok = self._respawn_worker(widx)
            with self._cond:
                self._respawning.discard(widx)
                if not ok:
                    self._schedule_respawn_locked(widx)
                if (len(self._dead) >= len(self._procs)
                        and not (self._respawn_at or self._respawning)):
                    self._broken = True
                    self._cond.notify_all()
        if due:
            self._route_unsent()

    def _respawn_worker(self, widx: int) -> bool:
        """Spawn a replacement for slot *widx* and replay the full table
        mirror into it before it rejoins the rotation.  Replay holds
        ``_io``, which also serialises broadcasts — so the replacement's
        snapshot plus subsequent deltas is exactly the state every other
        worker holds, and solves on it stay byte-identical."""
        self._respawn_attempts[widx] = self._respawn_attempts.get(widx, 0) + 1
        generation = self._gens[widx] + 1
        fault_spec = self._faults.to_spec() or None
        try:
            ctx = self._mp_ctx
            inq = ctx.Queue()
            proc = ctx.Process(
                target=_session_worker_main,
                args=(inq, self._outq, self._node_limit,
                      self._use_kernel, self._budget_s,
                      widx, generation, fault_spec),
                daemon=True,
            )
            proc.start()
        except (OSError, PermissionError, ValueError, ImportError,
                AttributeError):
            return False
        with self._io:
            try:
                for key, space in self._mirror.items():
                    schema, fds, nl, bs, rows, weights = space
                    inq.put(("open", key, schema, fds, nl, bs))
                    inq.put(("reset", key, dict(rows), dict(weights)))
            except (OSError, ValueError):
                try:
                    proc.terminate()
                except OSError:
                    pass
                return False
            with self._cond:
                old_inq = self._inqs[widx]
                self._inqs[widx] = inq
                self._procs[widx] = proc
                self._gens[widx] = generation
                self._dead.discard(widx)
                self._counters["respawns"] += 1
                self._cond.notify_all()
        # Retire the dead incarnation's queue so its feeder thread can
        # never block teardown.
        try:
            while True:
                old_inq.get_nowait()
        except Exception:
            pass
        try:
            old_inq.cancel_join_thread()
            old_inq.close()
        except Exception:
            pass
        self._recorder.count("pool.respawn")
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _shutdown(self, force: bool = False) -> None:
        import threading

        self._stop.set()
        collector = self._collector
        if collector is not None and collector is not threading.current_thread():
            collector.join(timeout=2.0)
        self._collector = None
        for inq in self._inqs:
            try:
                inq.put_nowait(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            try:
                proc.join(timeout=0.1 if force else 2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=0.5)
            except (OSError, ValueError, AssertionError):
                pass
        # Drain leftover items (queued solves from a partial dispatch,
        # unread results) and detach the feeder threads so repeated
        # close() calls — including via __del__ at interpreter teardown —
        # can never block on a queue join.
        for q in [*self._inqs, self._outq]:
            if q is None:
                continue
            try:
                while True:
                    q.get_nowait()
            except Exception:
                pass
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass
        self._procs = []
        self._inqs = []
        self._outq = None
        with self._cond:
            self._respawn_at.clear()
            self._respawning.clear()
            self._gens = []
            for seq in list(self._pending):
                del self._pending[seq]
                self._done[seq] = (None, None, 0.0, "worker pool closed")
            self._cond.notify_all()

    def close(self) -> None:
        """Stop the workers; non-blocking and safe to call repeatedly."""
        if not self._started:
            return
        self._broken = True
        if self._closed:
            return
        self._closed = True
        self._shutdown()

    def __enter__(self) -> "PersistentWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# S-repairs
# ---------------------------------------------------------------------------

def _solve_s_kept(
    table: Table,
    fds: FDSet,
    method: str,
    node_limit: int = 2000,
    index=None,
    budget_s: Optional[float] = None,
) -> Tuple[Tuple[TupleId, ...], str]:
    """Solve one component with the given portfolio method; return the
    kept identifiers in table order plus the method that actually ran.

    The effective method differs from the requested one in exactly one
    case: an ``"exact"`` solve that outran *budget_s* falls back to the
    Bar-Yehuda–Even construction and reports ``"approx"`` — so the
    caller's ratio bound, bracket, and portfolio label stay honest about
    what was computed.
    """
    if method == "dichotomy":
        from .core.srepair import opt_s_repair

        return opt_s_repair(fds, table).ids(), method
    if method == "exact":
        from .core.exact import ExactBudgetExceeded, exact_s_repair

        try:
            kept = exact_s_repair(
                table, fds, node_limit=node_limit, index=index,
                exact_budget_s=budget_s,
            ).ids()
        except ExactBudgetExceeded:
            method = "approx"  # the escape hatch: fall through below
        else:
            return kept, "exact"
    if method == "approx":
        from .core.approx import approx_s_repair

        return approx_s_repair(table, fds, index=index).repair.ids(), "approx"
    if method == "greedy":
        from .core.approx import greedy_s_repair

        return greedy_s_repair(table, fds, index=index).repair.ids(), "greedy"
    raise ValueError(f"unknown portfolio method {method!r}")


def _s_worker(task) -> Tuple[Tuple[TupleId, ...], str, float]:
    table, fds, method, node_limit, use_kernel, budget_s = task
    _kernel.set_enabled(use_kernel)
    start = _perf_counter()
    kept, effective = _solve_s_kept(
        table, fds, method, node_limit, budget_s=budget_s
    )
    return kept, effective, _perf_counter() - start


def coded_component_table(
    schema: Tuple[str, ...],
    ids: Tuple[TupleId, ...],
    columns: Tuple,
    weights: Tuple[float, ...],
) -> Table:
    """Rebuild a worker-side sub-table from shipped column-code arrays.

    The values are the integer codes themselves: FD satisfaction — and
    every order-sensitive choice the S-repair solvers make — observes
    only the value equality pattern and the row order, both of which the
    codes preserve (codes are assigned in first-seen table order).  The
    kept identifiers are therefore byte-identical to solving the real
    sub-table, and identifiers are all that ever crosses back.
    """
    rows = dict(zip(ids, zip(*columns))) if columns else {tid: () for tid in ids}
    return Table._from_trusted(
        schema,
        rows,
        dict(zip(ids, weights)),
        "R",
        {a: i for i, a in enumerate(schema)},
    )


def _s_worker_coded(task) -> Tuple[Tuple[TupleId, ...], str, float]:
    schema, ids, columns, weights, fds, method, node_limit, use_kernel, \
        budget_s = task
    _kernel.set_enabled(use_kernel)
    table = coded_component_table(schema, ids, columns, weights)
    start = _perf_counter()
    kept, effective = _solve_s_kept(
        table, fds, method, node_limit, budget_s=budget_s
    )
    return kept, effective, _perf_counter() - start


#: Namespace keys for executor-routed batch solves (one per clean call).
_EXECUTOR_KEYS = _iter_count()


def solve_components(
    decomp: Decomposition,
    methods: Sequence[str],
    parallel: Optional[int] = None,
    node_limit: int = 2000,
    budget_s: Optional[float] = None,
    plans: Optional[Sequence[ComponentPlan]] = None,
    recorder=None,
    executor=None,
) -> Tuple[List[Tuple[TupleId, ...]], List[str]]:
    """Solve each component with its assigned portfolio method; returns
    the kept identifiers per component plus the *effective* methods, both
    in component order (effective ≠ planned exactly when an ``"exact"``
    solve outran its wall-clock budget and fell back to ``"approx"``).

    With *plans* (from :func:`repro.core.decompose.plan_schedule`) each
    component runs under its plan's method and per-solve budget slice,
    and the solves are *dispatched* in ascending predicted difficulty
    (easiest first — the scheduler's granted budget slices assume the
    cheap solves land before the expensive ones); results are still
    reassembled in component order, and since every plan is pure
    prediction the serial and parallel runs stay byte-identical.
    Without *plans*, *budget_s* is the uniform per-component budget
    (historical semantics).

    The scheduling seam shared by :func:`decomposed_s_repair` and
    :func:`repro.pipeline.clean` (which derives its dirtiness report from
    the same solve instead of bracketing components twice).  Serial
    execution reuses the projected sub-indexes; parallel workers rebuild
    them from the shipped sub-tables (equivalent by the index-rebuild
    property).  When the parent index is kernel-backed, components ship
    as column-code arrays instead of sub-``Table`` dicts (see
    :func:`coded_component_table`) — same kept ids, smaller payloads.

    With an enabled *recorder* (:mod:`repro.obs`), one ``solve`` trace
    record is emitted per component carrying the plan evidence
    (difficulty, predicted seconds, budget slice, downgrade flag,
    features), the effective method, and the measured solve seconds —
    timed in-process on the serial path, inside the worker on the pool
    path.  The default :data:`repro.obs.NULL_RECORDER` costs one
    attribute check.

    An *executor* (a :class:`repro.shard.ShardedExecutor`, or anything
    duck-typing the pool seam plus ``attach_table``) takes precedence
    over *parallel*: the table ships once into a per-call namespace and
    components route as id-list tasks.  Pure solvers keep the results
    byte-identical to serial; any executor failure falls back to the
    local paths below.
    """
    rec = _obs.resolve(recorder)
    count = len(methods)
    if plans is not None:
        methods = [plan.method for plan in plans]
        budgets = [plan.budget_s for plan in plans]
        order = sorted(
            range(count),
            key=lambda i: (
                plans[i].difficulty if plans[i].difficulty is not None else 0.0,
                i,
            ),
        )
    else:
        budgets = [budget_s] * count
        order = list(range(count))
    components = decomp.components
    workers = resolve_workers(parallel, count)
    ordered = None
    path = None
    if executor is not None and count and (
        getattr(executor, "alive", False) or executor.start()
    ):
        key = f"clean-{next(_EXECUTOR_KEYS)}"
        if executor.attach_table(key, decomp.table, decomp.fds,
                                 node_limit=node_limit):
            tasks = [
                (components[i].ids, methods[i]) if budgets[i] is None
                else (components[i].ids, methods[i], budgets[i])
                for i in order
            ]
            try:
                ordered = executor.solve(tasks, key=key)
                path = getattr(executor, "executor_kind", "executor")
            except RuntimeError:
                ordered = None  # solver/transport failure: solve locally
            finally:
                executor.drop_session(key)
    if ordered is not None:
        pass
    elif workers > 1:
        # The global kernel flag travels inside each task, as does the
        # exact budget: workers under spawn/forkserver re-import this
        # module and would otherwise run the kernel paths even under
        # --no-kernel (and solve without the requested escape hatch).
        use_kernel = _kernel.enabled()
        codec = getattr(decomp.index, "_codec", None)
        if codec is not None:
            schema = decomp.table.schema
            tasks = [
                (schema, *components[i].code_payload(codec), decomp.fds,
                 methods[i], node_limit, use_kernel, budgets[i])
                for i in order
            ]
            ordered = map_components(_s_worker_coded, tasks, parallel)
        else:
            tasks = [
                (components[i].table, decomp.fds, methods[i], node_limit,
                 use_kernel, budgets[i])
                for i in order
            ]
            ordered = map_components(_s_worker, tasks, parallel)
    else:
        timed = rec.enabled
        ordered = []
        for i in order:
            start = _perf_counter() if timed else 0.0
            kept, effective = _solve_s_kept(
                components[i].table, decomp.fds, methods[i], node_limit,
                index=components[i].index, budget_s=budgets[i],
            )
            ordered.append(
                (kept, effective, _perf_counter() - start if timed else 0.0)
            )
    outcomes: List = [None] * count
    for i, outcome in zip(order, ordered):
        outcomes[i] = outcome
    if rec.enabled:
        if path is None:
            path = "pool" if workers > 1 else "serial"
        for i, (_kept, effective, secs) in enumerate(outcomes):
            component = components[i]
            rec.solve_record(
                ordinal=i,
                size=component.size,
                edges=component.index.num_edges,
                planned=methods[i],
                effective=effective,
                actual_s=secs,
                path=path,
                context="clean",
                plan=plans[i] if plans is not None else None,
            )
    return [kept for kept, _m, _s in outcomes], [m for _k, m, _s in outcomes]


def _method_mix(methods: Sequence[str]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for m in methods:
        counts[m] = counts.get(m, 0) + 1
    return counts


def _mix_label(counts: Mapping[str, int]) -> str:
    return ", ".join(
        f"{S_METHOD_NAMES[m]}×{counts[m]}" for m in sorted(counts)
    )


def decomposed_s_repair(
    table: Table,
    fds: FDSet,
    guarantee: str = "best",
    method: Optional[str] = None,
    parallel: Optional[int] = None,
    index=None,
    node_limit: Optional[int] = None,
    threshold: Optional[int] = None,
    budget_s: Optional[float] = None,
    global_budget_s: Optional[float] = None,
    executor=None,
):
    """S-repair via per-component solving with a portfolio of methods.

    With ``method=None`` each component gets the method the difficulty
    scheduler picks for it (:func:`~repro.core.decompose.plan_schedule`
    under *guarantee*); passing an explicit ``method`` forces it on every
    component (this is how the single-method entry points —
    ``exact_s_repair(..., decomposed=True)`` and friends — reuse this
    engine).  The result's ``ratio_bound`` is instance-specific: 1.0
    whenever every component was solved exactly, even for an FD set that
    is APX-complete in general.  *budget_s* is the per-component exact
    escape hatch (each solve's own wall-clock ceiling);
    *global_budget_s* hands the whole instance one exact budget that
    :func:`~repro.core.decompose.plan_schedule` rations over components
    in ascending predicted difficulty.  ``None`` knobs resolve through
    :func:`~repro.core.decompose.resolve_plan_defaults`.
    """
    from .core.dichotomy import osr_succeeds

    defaults = resolve_plan_defaults(
        threshold, node_limit, global_budget_s, budget_s
    )
    decomp = decompose(table, fds, index)
    if method is None:
        tractable = osr_succeeds(fds)
        plans = decomp.plan_schedule(
            tractable, guarantee, defaults.threshold,
            defaults.exact_budget_s, defaults.per_component_budget_s,
            defaults.node_limit,
        )
        kept_lists, methods = solve_components(
            decomp, [plan.method for plan in plans], parallel,
            defaults.node_limit, plans=plans, executor=executor,
        )
    else:
        methods = [method] * len(decomp.components)
        kept_lists, methods = solve_components(
            decomp, methods, parallel, defaults.node_limit, budget_s,
            executor=executor,
        )
    return assemble_s_result(decomp, methods, kept_lists, parallel)


def assemble_s_result(
    decomp: Decomposition,
    methods: Sequence[str],
    kept_lists: Sequence[Tuple[TupleId, ...]],
    parallel: Optional[int] = None,
):
    """Merge per-component kept sets into one :class:`SRepairResult`."""
    from .core.srepair import SRepairResult

    repair = decomp.merge_kept(kept_lists)
    counts = _method_mix(methods)
    optimal = all(m in ("dichotomy", "exact") for m in methods)
    ratio = max((S_METHOD_RATIOS[m] for m in methods), default=1.0)
    workers = resolve_workers(parallel, len(methods))
    label = (
        f"decomposed[{decomp.component_count} components"
        + (f", parallel={workers}" if workers > 1 else "")
        + (f": {_mix_label(counts)}" if counts else "")
        + "]"
    )
    return SRepairResult(
        repair=repair,
        distance=decomp.table.dist_sub(repair),
        optimal=optimal,
        ratio_bound=1.0 if optimal else ratio,
        method=label,
        method_counts=counts,
        component_count=decomp.component_count,
    )


# ---------------------------------------------------------------------------
# U-repairs
# ---------------------------------------------------------------------------

def _solve_u_component(
    ordinal: int,
    table: Table,
    fds: FDSet,
    allow_exact_search: bool,
    exact_budget: int,
    index=None,
):
    """Run the Section 4 dispatcher on one component sub-table.

    Returns ``(cells, optimal, ratio_bound, method)`` where *cells* maps
    ``(tid, attribute) → value``.  Fresh labelled nulls are relabelled
    ``⊥c<ordinal>.<k>`` in changed-cell order: deterministic across
    serial/parallel execution and collision-free across components, so
    merged updates serialise identically however they were computed.
    """
    from .core.urepair import u_repair

    result = u_repair(
        table,
        fds,
        allow_exact_search=allow_exact_search,
        exact_budget=exact_budget,
        index=index,
    )
    cells: Dict[Tuple[TupleId, str], object] = {}
    relabelled: Dict[FreshValue, FreshValue] = {}
    for tid, attr in result.update.changed_cells(table):
        value = result.update.value(tid, attr)
        if isinstance(value, FreshValue):
            fresh = relabelled.get(value)
            if fresh is None:
                fresh = FreshValue(f"⊥c{ordinal}.{len(relabelled)}")
                relabelled[value] = fresh
            value = fresh
        cells[(tid, attr)] = value
    return cells, result.optimal, result.ratio_bound, result.method


def _u_worker(task):
    ordinal, table, fds, allow_exact_search, exact_budget, use_kernel = task
    _kernel.set_enabled(use_kernel)
    return _solve_u_component(ordinal, table, fds, allow_exact_search, exact_budget)


def decomposed_u_repair(
    table: Table,
    fds: FDSet,
    allow_exact_search: bool = True,
    exact_budget: int = 50_000,
    parallel: Optional[int] = None,
    index=None,
):
    """U-repair via per-component dispatch of :func:`repro.core.urepair.u_repair`.

    Per-component optimal distances sum to at most the global optimum
    (the restriction of any consistent update to a component is a
    consistent update of its sub-table), so when every component reports
    ``optimal`` the merged update is optimal.  Updates that draw
    replacement values from the active domain can — rarely — collide
    across components (a changed cell coming to agree with a tuple of
    another component); the merge is therefore re-checked globally and
    falls back to the global dispatcher when a collision is detected,
    keeping the decomposed path unconditionally sound.
    """
    from .core.urepair import URepairResult, u_repair
    from .core.violations import satisfies

    normalised = fds.with_singleton_rhs().without_trivial()
    decomp = decompose(table, fds, index)
    if not decomp.components:
        return URepairResult(
            update=table,
            distance=0.0,
            optimal=True,
            ratio_bound=1.0,
            method="already consistent",
            component_count=0,
        )
    workers = resolve_workers(parallel, decomp.component_count)
    if workers > 1:
        tasks = [
            (c.ordinal, c.table, fds, allow_exact_search, exact_budget,
             _kernel.enabled())
            for c in decomp.components
        ]
        outcomes = map_components(_u_worker, tasks, parallel)
    else:
        outcomes = [
            _solve_u_component(
                c.ordinal, c.table, fds, allow_exact_search, exact_budget,
                index=c.index,
            )
            for c in decomp.components
        ]
    update = decomp.merge_updates([cells for cells, _opt, _ratio, _m in outcomes])
    if not satisfies(update, normalised):
        fallback = u_repair(
            table,
            fds,
            allow_exact_search=allow_exact_search,
            exact_budget=exact_budget,
            index=decomp.index,
        )
        return URepairResult(
            update=fallback.update,
            distance=fallback.distance,
            optimal=fallback.optimal,
            ratio_bound=fallback.ratio_bound,
            method=f"global fallback (cross-component collision): {fallback.method}",
            component_count=decomp.component_count,
        )
    optimal = all(opt for _c, opt, _r, _m in outcomes)
    ratio = max((r for _c, _opt, r, _m in outcomes), default=1.0)
    counts = _method_mix([m for _c, _opt, _r, m in outcomes])
    label = (
        f"decomposed[{decomp.component_count} components"
        + (f", parallel={workers}" if workers > 1 else "")
        + "]: "
        + "; ".join(f"{m} ×{n}" if n > 1 else m for m, n in sorted(counts.items()))
    )
    return URepairResult(
        update=update,
        distance=table.dist_upd(update),
        optimal=optimal,
        ratio_bound=1.0 if optimal else ratio,
        method=label,
        method_counts=counts,
        component_count=decomp.component_count,
    )
