"""Weighted vertex cover: exact branch & bound and approximations.

The paper reduces optimal S-repairs to minimum-weight vertex cover of the
conflict graph (Proposition 3.3):

* :func:`bar_yehuda_even` — the linear-time local-ratio 2-approximation of
  Bar-Yehuda and Even [7], which gives the paper's 2-optimal S-repair.
* :func:`exact_min_weight_vertex_cover` — a branch & bound solver used as
  the exact baseline throughout the test suite and benchmarks.  It applies
  degree-0/degree-1 eliminations, branches on a maximum-degree vertex
  ("take v" vs "take all neighbours of v"), and prunes with a greedy
  matching lower bound (for each matched edge, any cover pays at least
  ``min(w_u, w_v)``).
* :func:`greedy_vertex_cover` — a weight/degree greedy baseline with no
  guarantee, included for benchmark comparisons.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .graph import Graph, Node

__all__ = [
    "ExactBudgetExceeded",
    "bar_yehuda_even",
    "greedy_vertex_cover",
    "exact_min_weight_vertex_cover",
    "maximalize_independent_set",
]


class ExactBudgetExceeded(Exception):
    """An exact vertex-cover search ran past its wall-clock budget.

    Raised by :func:`exact_min_weight_vertex_cover` and the bitset mirror
    in :mod:`repro.core.kernel` when ``budget_s`` expires mid-search.
    Callers treat it as "this component is too hard for exact solving
    right now" and fall back to the polynomial bounds — the portfolio's
    escape hatch for pathological dense components above the old 64-tuple
    threshold.
    """


#: Search-tree entries between two deadline reads: ``time.monotonic`` is
#: ~100× the cost of the counter decrement, so budget enforcement stays
#: invisible on budget-free solves and ~millisecond-accurate otherwise.
_BUDGET_CHECK_INTERVAL = 256


def bar_yehuda_even(graph: Graph) -> Set[Node]:
    """2-approximate minimum-weight vertex cover (local-ratio).

    Walk the edges once; on each edge, pay the smaller residual weight of
    its endpoints on both endpoints.  Vertices whose residual hits zero
    enter the cover.  The cover weight is at most twice the optimum.

    A kernel-backed :class:`~repro.core.conflict_index.ConflictIndex`
    answers from its flat-array fast path (identical edge order and
    arithmetic, hence an identical cover); everything else runs the
    dict reference loop below.
    """
    kernel_bye = getattr(graph, "kernel_bye_cover", None)
    if kernel_bye is not None:
        cover = kernel_bye()
        if cover is not None:
            return cover
    residual: Dict[Node, float] = {v: graph.weight(v) for v in graph.nodes()}
    cover: Set[Node] = set()
    for u, v in graph.edges():
        if u in cover or v in cover:
            continue
        pay = min(residual[u], residual[v])
        residual[u] -= pay
        residual[v] -= pay
        if residual[u] <= 0:
            cover.add(u)
        if residual[v] <= 0:
            cover.add(v)
    return cover


def greedy_vertex_cover(graph: Graph) -> Set[Node]:
    """Greedy baseline: repeatedly take the vertex minimising weight/degree.

    No approximation guarantee (classic greedy can be off by Θ(log n)); it
    exists as a comparison point in the benchmarks.
    """
    g = graph.copy()
    cover: Set[Node] = set()
    while g.num_edges() > 0:
        best = min(
            (v for v in g.nodes() if g.degree(v) > 0),
            key=lambda v: (g.weight(v) / g.degree(v), str(v)),
        )
        cover.add(best)
        g.remove_node(best)
    return cover


def maximalize_independent_set(graph: Graph, independent: Set[Node]) -> Set[Node]:
    """Grow an independent set to a maximal one (greedy, heaviest first).

    Complementing a vertex cover yields an independent set that may not be
    maximal; adding free vertices only shrinks the corresponding repair
    distance, and maximality is what makes the result a *repair* in the
    local-minimum sense of Section 2.3.

    A kernel-backed :class:`~repro.core.conflict_index.ConflictIndex`
    answers from its flat-array fast path (same candidate order, same
    blocking test, hence the identical maximal set); everything else runs
    the dict reference loop below.
    """
    kernel_mis = getattr(graph, "kernel_maximalize", None)
    if kernel_mis is not None:
        result = kernel_mis(independent)
        if result is not None:
            return result
    result = set(independent)
    candidates = sorted(
        (v for v in graph.nodes() if v not in result),
        key=lambda v: (-graph.weight(v), str(v)),
    )
    for v in candidates:
        if not (graph.neighbors(v) & result):
            result.add(v)
    return result


def _matching_lower_bound(g: Graph) -> float:
    """Greedy maximal matching bound: Σ min(w_u, w_v) over matched edges."""
    matched: Set[Node] = set()
    bound = 0.0
    for u, v in g.edges():
        if u in matched or v in matched:
            continue
        matched.add(u)
        matched.add(v)
        bound += min(g.weight(u), g.weight(v))
    return bound


def exact_min_weight_vertex_cover(
    graph: Graph, node_limit: int = 2000, budget_s: Optional[float] = None
) -> Set[Node]:
    """Exact minimum-weight vertex cover via branch & bound.

    Suitable for the instance sizes used in tests and benchmarks (up to a
    few hundred nodes on sparse conflict graphs).  Raises ``ValueError``
    beyond *node_limit* nodes as a guard against accidental huge inputs.
    With *budget_s* set, :class:`ExactBudgetExceeded` is raised once the
    search has run that many wall-clock seconds — the same escape hatch
    the bitset mirror honours, so ``--no-kernel`` runs respect budgets
    identically.
    """
    if len(graph) > node_limit:
        raise ValueError(
            f"exact vertex cover limited to {node_limit} nodes, got {len(graph)}"
        )

    best_cover: Set[Node] = set(bar_yehuda_even(graph))
    # Summations below happen in node (insertion) order, never in set
    # iteration order: float addition is order-sensitive in the last
    # ulp, and a hash-ordered sum could not be mirrored by the bitmask
    # kernel (repro.core.kernel), whose identical-cover property the
    # test suite pins.
    best_cost = graph.total_weight([v for v in graph.nodes() if v in best_cover])
    deadline = None if budget_s is None else time.monotonic() + budget_s
    ticks = _BUDGET_CHECK_INTERVAL

    def branch(g: Graph, chosen: Set[Node], cost: float) -> None:
        nonlocal best_cover, best_cost, ticks
        if deadline is not None:
            ticks -= 1
            if ticks <= 0:
                ticks = _BUDGET_CHECK_INTERVAL
                if time.monotonic() > deadline:
                    raise ExactBudgetExceeded(
                        f"exact vertex cover exceeded its {budget_s:g}s budget"
                    )
        # Simplifications: drop isolated vertices; resolve pendant edges.
        g = g.copy()
        changed = True
        while changed:
            changed = False
            for v in list(g.nodes()):
                deg = g.degree(v)
                if deg == 0:
                    g.remove_node(v)
                    changed = True
                elif deg == 1:
                    (u,) = g.neighbors(v)
                    # Pendant rule (weighted): when w_u ≤ w_v, any cover
                    # using v can swap it for u without increasing cost,
                    # so taking u is safe.  When w_v < w_u no local rule
                    # is sound (u may be needed for other edges anyway),
                    # so we leave the vertex to the branching step.
                    if g.weight(u) <= g.weight(v):
                        chosen = chosen | {u}
                        cost += g.weight(u)
                        g.remove_node(u)
                        changed = True
                        break
        if cost >= best_cost:
            return
        if g.num_edges() == 0:
            if cost < best_cost:
                best_cost = cost
                best_cover = set(chosen)
            return
        if cost + _matching_lower_bound(g) >= best_cost:
            return
        v = max(g.nodes(), key=lambda n: (g.degree(n), str(n)))
        neighbours = g.neighbors(v)
        # Branch 1: v in the cover.
        g1 = g.copy()
        g1.remove_node(v)
        branch(g1, chosen | {v}, cost + g.weight(v))
        # Branch 2: v not in the cover → all its neighbours are
        # (visited in node order; see the summation note above).
        g2 = g.copy()
        add_cost = 0.0
        for u in [n for n in g.nodes() if n in neighbours]:
            add_cost += g2.weight(u)
            g2.remove_node(u)
        g2.remove_node(v)
        branch(g2, chosen | neighbours, cost + add_cost)

    branch(graph, set(), 0.0)
    return best_cover
