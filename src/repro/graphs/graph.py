"""A small weighted undirected graph.

The library's graph needs are modest — conflict graphs, vertex covers,
triangle instances — so we keep a dependency-free adjacency-set
implementation instead of pulling in networkx for core paths.  Conversion
helpers to/from networkx live in the test suite.

Nodes are arbitrary hashable objects carrying a positive weight
(default 1.0); edges are unweighted and self-loops are rejected.

Adjacency is stored as insertion-ordered dicts (keys are the
neighbours): neighbour iteration order is then a pure function of the
edge insertion sequence, never of value hashes.  That determinism is
what lets the bitmask kernel (:mod:`repro.core.kernel`) mirror the
graph-based exact vertex cover bit for bit — graphs built from a
:meth:`repro.core.conflict_index.ConflictIndex.edges` sweep list every
node's higher-position neighbours in ascending position order, exactly
the order a flat-array edge iteration produces.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["Graph"]


class Graph:
    """Mutable undirected graph with weighted nodes."""

    __slots__ = ("_weights", "_adj")

    def __init__(self) -> None:
        self._weights: Dict[Node, float] = {}
        # node → {neighbour: None}: an insertion-ordered set (see the
        # module docstring for why order determinism matters).
        self._adj: Dict[Node, Dict[Node, None]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        nodes: Optional[Iterable[Node]] = None,
        weights: Optional[Dict[Node, float]] = None,
    ) -> "Graph":
        g = cls()
        for node in nodes or ():
            g.add_node(node, weight=(weights or {}).get(node, 1.0))
        for u, v in edges:
            for node in (u, v):
                if node not in g:
                    g.add_node(node, weight=(weights or {}).get(node, 1.0))
            g.add_edge(u, v)
        return g

    def add_node(self, node: Node, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"node weight must be positive, got {weight}")
        self._weights[node] = float(weight)
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node) -> None:
        if u == v:
            raise ValueError(f"self-loop at {u!r}")
        for node in (u, v):
            if node not in self._weights:
                self.add_node(node)
        self._adj[u][v] = None
        self._adj[v][u] = None

    def remove_node(self, node: Node) -> None:
        for nbr in self._adj.pop(node):
            self._adj[nbr].pop(node, None)
        del self._weights[node]

    def copy(self) -> "Graph":
        g = Graph()
        g._weights = dict(self._weights)
        g._adj = {node: dict(nbrs) for node, nbrs in self._adj.items()}
        return g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._weights)

    def weight(self, node: Node) -> float:
        return self._weights[node]

    def total_weight(self, nodes: Optional[Iterable[Node]] = None) -> float:
        if nodes is None:
            return sum(self._weights.values())
        return sum(self._weights[n] for n in nodes)

    def neighbors(self, node: Node) -> Set[Node]:
        return set(self._adj[node])  # a real set: callers do set algebra

    def degree(self, node: Node) -> int:
        return len(self._adj[node])

    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def edges(self) -> List[Edge]:
        """Each undirected edge exactly once, in deterministic order.

        Deduplication is by insertion position (cheaper than hashing a
        frozenset per edge, which matters on conflict graphs with
        millions of edges).
        """
        position = {node: i for i, node in enumerate(self._weights)}
        out: List[Edge] = []
        for u in self._weights:
            pu = position[u]
            for v in self._adj[u]:
                if pu < position[v]:
                    out.append((u, v))
        return out

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_edge(self, u: Node, v: Node) -> bool:
        return v in self._adj.get(u, ())

    def is_independent_set(self, nodes: Iterable[Node]) -> bool:
        nodes = set(nodes)
        return not any(self._adj[u].keys() & nodes for u in nodes)

    def is_vertex_cover(self, nodes: Iterable[Node]) -> bool:
        cover = set(nodes)
        return all(u in cover or v in cover for u, v in self.edges())

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        keep = set(nodes)
        g = Graph()
        for node in keep:
            g.add_node(node, weight=self._weights[node])
        for u, v in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v)
        return g

    def connected_components(self) -> List[Set[Node]]:
        seen: Set[Node] = set()
        out: List[Set[Node]] = []
        for start in self._weights:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nbr in self._adj[node]:
                    if nbr not in comp:
                        comp.add(nbr)
                        stack.append(nbr)
            seen |= comp
            out.append(comp)
        return out

    def __repr__(self) -> str:
        return f"Graph({len(self)} nodes, {self.num_edges()} edges)"
