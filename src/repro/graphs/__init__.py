"""Graph substrates: conflict graphs, matching, and vertex cover.

* :mod:`repro.graphs.graph` — a dependency-free weighted undirected graph;
* :mod:`repro.graphs.bipartite` — O(n³) Hungarian maximum-weight bipartite
  matching (used by ``MarriageRep``);
* :mod:`repro.graphs.vertex_cover` — Bar-Yehuda–Even 2-approximation,
  greedy baseline, and exact branch & bound (used by the exact S-repair
  baseline and Proposition 3.3).
"""

from .graph import Graph
from .bipartite import (
    hungarian_max_weight,
    matching_weight,
    max_weight_bipartite_matching,
)
from .mis import count_maximal_independent_sets, maximal_independent_sets
from .vertex_cover import (
    bar_yehuda_even,
    exact_min_weight_vertex_cover,
    greedy_vertex_cover,
    maximalize_independent_set,
)

__all__ = [
    "Graph",
    "hungarian_max_weight",
    "matching_weight",
    "max_weight_bipartite_matching",
    "count_maximal_independent_sets",
    "maximal_independent_sets",
    "bar_yehuda_even",
    "exact_min_weight_vertex_cover",
    "greedy_vertex_cover",
    "maximalize_independent_set",
]
