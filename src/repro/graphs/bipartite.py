"""Maximum-weight bipartite matching (Hungarian algorithm).

``MarriageRep`` (Subroutine 3 of the paper) reduces the lhs-marriage case
to a maximum-weight matching of a bipartite graph whose sides are the
distinct ``X1``- and ``X2``-projections of the table.  We implement the
O(n³) potential-based Hungarian algorithm from scratch (the library's
matching substrate); tests cross-check it against
``scipy.optimize.linear_sum_assignment`` and networkx.

Weights may be arbitrary non-negative reals.  The matching returned is a
maximum-*weight* matching: it never pays to match a zero/absent edge, so
absent edges are modelled with weight 0 and filtered from the result.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

__all__ = ["hungarian_max_weight", "max_weight_bipartite_matching"]

_EPS = 1e-12


def hungarian_max_weight(weights: Sequence[Sequence[float]]) -> List[Tuple[int, int]]:
    """Maximum-weight assignment on an n×m weight matrix.

    Returns a list of (row, column) pairs forming a matching of maximum
    total weight among all matchings (not merely among perfect ones);
    entries participating with weight 0 contribute nothing and are pruned.

    Implementation: classic shortest-augmenting-path Hungarian algorithm
    with row/column potentials on the *cost* matrix (negated weights),
    padded to square form with zeros so that leaving a row unmatched is
    free.
    """
    n = len(weights)
    if n == 0:
        return []
    m = len(weights[0])
    if any(len(row) != m for row in weights):
        raise ValueError("weight matrix is ragged")
    if any(w < 0 for row in weights for w in row):
        raise ValueError("weights must be non-negative")
    size = max(n, m)
    # cost[i][j] = -weight (square-padded); minimising cost maximises weight.
    cost = [[0.0] * size for _ in range(size)]
    for i in range(n):
        for j in range(m):
            cost[i][j] = -float(weights[i][j])

    # Potentials u, v; p[j] = row matched to column j (1-based sentinel 0).
    u = [0.0] * (size + 1)
    v = [0.0] * (size + 1)
    p = [0] * (size + 1)
    way = [0] * (size + 1)
    INF = float("inf")
    for i in range(1, size + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (size + 1)
        used = [False] * (size + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, size + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(size + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    pairs: List[Tuple[int, int]] = []
    for j in range(1, size + 1):
        i = p[j]
        if 1 <= i <= n and 1 <= j <= m and weights[i - 1][j - 1] > _EPS:
            pairs.append((i - 1, j - 1))
    return pairs


def max_weight_bipartite_matching(
    left: Sequence[Hashable],
    right: Sequence[Hashable],
    edge_weights: Mapping[Tuple[Hashable, Hashable], float],
) -> List[Tuple[Hashable, Hashable]]:
    """Maximum-weight matching between *left* and *right* node sequences.

    *edge_weights* maps ``(l, r)`` pairs to non-negative weights; missing
    pairs are non-edges.  Returns matched ``(l, r)`` pairs whose edges are
    present in *edge_weights* with positive weight.
    """
    lookup_l = {node: i for i, node in enumerate(left)}
    lookup_r = {node: j for j, node in enumerate(right)}
    matrix = [[0.0] * len(right) for _ in range(len(left))]
    for (l, r), w in edge_weights.items():
        if l not in lookup_l or r not in lookup_r:
            raise KeyError(f"edge ({l!r}, {r!r}) references unknown node")
        matrix[lookup_l[l]][lookup_r[r]] = float(w)
    pairs = hungarian_max_weight(matrix)
    return [(left[i], right[j]) for i, j in pairs]


def matching_weight(
    pairs: Sequence[Tuple[Hashable, Hashable]],
    edge_weights: Mapping[Tuple[Hashable, Hashable], float],
) -> float:
    """Total weight of a matching under *edge_weights*."""
    return sum(edge_weights[pair] for pair in pairs)
