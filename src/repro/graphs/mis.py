"""Enumeration of maximal independent sets (Bron–Kerbosch style).

Subset repairs are exactly the maximal independent sets of the conflict
graph, so enumerating them — feasible for the small instances used in
tests — gives a brute-force baseline for repair counting and
enumeration (:mod:`repro.core.counting`).

The implementation is Bron–Kerbosch with pivoting, run on the
*complement* adjacency (cliques of the complement are independent sets
of the graph).
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Set

from .graph import Graph, Node

__all__ = ["maximal_independent_sets", "count_maximal_independent_sets"]


def maximal_independent_sets(graph: Graph) -> Iterator[FrozenSet[Node]]:
    """Yield every maximal independent set of *graph* exactly once.

    The empty graph yields the single (empty) set.  Exponential in the
    worst case — intended as a baseline on small graphs.
    """
    nodes = list(graph.nodes())
    non_neighbors = {
        v: {u for u in nodes if u != v and not graph.has_edge(u, v)}
        for v in nodes
    }

    def expand(
        current: Set[Node], candidates: Set[Node], excluded: Set[Node]
    ) -> Iterator[FrozenSet[Node]]:
        if not candidates and not excluded:
            yield frozenset(current)
            return
        # Pivot on the vertex covering the most candidates (classic BK).
        pivot = max(
            candidates | excluded,
            key=lambda u: len(candidates & non_neighbors[u]),
        )
        for v in list(candidates - non_neighbors[pivot]):
            current.add(v)
            yield from expand(
                current,
                candidates & non_neighbors[v],
                excluded & non_neighbors[v],
            )
            current.discard(v)
            candidates.discard(v)
            excluded.add(v)

    yield from expand(set(), set(nodes), set())


def count_maximal_independent_sets(graph: Graph) -> int:
    """The number of maximal independent sets of *graph*."""
    return sum(1 for _ in maximal_independent_sets(graph))
