"""MAX-non-mixed-SAT and its reduction to optimal S-repairs (Lemma A.13).

A *non-mixed* CNF formula has clauses that are either all-positive or
all-negative.  Lemma A.13 reduces MAX-non-mixed-SAT to computing an
optimal S-repair under ``Δ_{AB→C→B} = {AB → C, C → B}`` over
``R(A, B, C)``:

* for every all-positive clause ``c_j`` and variable ``x_i ∈ c_j`` the
  table gets the tuple ``(c_j, 1, x_i)``;
* for every all-negative clause and ``¬x_i ∈ c_j`` it gets
  ``(c_j, 0, x_i)``.

The FD ``AB → C`` (with A = clause, B = sign, C = variable) lets a
consistent subset keep at most one tuple per clause, and ``C → B`` forces
a consistent truth assignment; hence the maximum number of simultaneously
satisfiable clauses equals the maximum size of a consistent subset.  The
reduction is strict for the complement (minimisation) problems, which is
what APX-hardness needs (Lemma A.12).

This module provides the formula type, a brute-force MAX-SAT baseline,
both directions of the Lemma A.13 translation, and a random generator
(see :mod:`repro.datagen.cnf` for workload-level helpers).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.dichotomy import DELTA_AB_C_B
from ..core.fd import FDSet
from ..core.table import Table, TupleId

__all__ = [
    "Clause",
    "NonMixedFormula",
    "brute_force_max_sat",
    "formula_to_table",
    "subset_to_assignment",
    "assignment_to_subset",
    "SAT_FDS",
]

#: The FD set of Lemma A.13 (an alias of Table 1's ``Δ_{AB→C→B}``).
SAT_FDS: FDSet = DELTA_AB_C_B


@dataclass(frozen=True)
class Clause:
    """A non-mixed clause: a disjunction of only-positive or only-negative
    literals over the given variables."""

    positive: bool
    variables: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValueError("empty clause")

    def satisfied_by(self, assignment: Dict[str, bool]) -> bool:
        want = self.positive
        return any(assignment.get(v, False) == want for v in self.variables)

    def __str__(self) -> str:
        sign = "" if self.positive else "¬"
        return "(" + " ∨ ".join(f"{sign}{v}" for v in sorted(self.variables)) + ")"


@dataclass(frozen=True)
class NonMixedFormula:
    """A conjunction of non-mixed clauses."""

    clauses: Tuple[Clause, ...]

    @property
    def variables(self) -> FrozenSet[str]:
        out: set = set()
        for clause in self.clauses:
            out |= clause.variables
        return frozenset(out)

    def satisfied_count(self, assignment: Dict[str, bool]) -> int:
        return sum(1 for c in self.clauses if c.satisfied_by(assignment))

    def __str__(self) -> str:
        return " ∧ ".join(str(c) for c in self.clauses)


def brute_force_max_sat(formula: NonMixedFormula, max_vars: int = 20) -> Tuple[Dict[str, bool], int]:
    """The optimum of MAX-non-mixed-SAT by exhausting assignments."""
    variables = sorted(formula.variables)
    if len(variables) > max_vars:
        raise ValueError(
            f"brute force limited to {max_vars} variables, got {len(variables)}"
        )
    best_assignment: Dict[str, bool] = {}
    best = -1
    for bits in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        count = formula.satisfied_count(assignment)
        if count > best:
            best = count
            best_assignment = assignment
    return best_assignment, best


def formula_to_table(formula: NonMixedFormula) -> Table:
    """Lemma A.13's construction: one tuple per (clause, literal).

    Identifiers are ``(clause_index, variable)`` pairs; the table is
    unweighted and duplicate-free, as the hardness statement requires.
    """
    rows: Dict[TupleId, Tuple[object, ...]] = {}
    for j, clause in enumerate(formula.clauses):
        sign = 1 if clause.positive else 0
        for var in sorted(clause.variables):
            rows[(j, var)] = (f"c{j}", sign, var)
    return Table(("A", "B", "C"), rows, name="sat")


def subset_to_assignment(subset: Table) -> Dict[str, bool]:
    """Read a truth assignment off a consistent subset (Lemma A.13, "if").

    ``C → B`` guarantees each variable occurs with a single sign, so
    ``τ(x) = B-value of any kept tuple with C = x`` is well defined.
    """
    assignment: Dict[str, bool] = {}
    for tid in subset.ids():
        _clause, sign, var = subset[tid]
        previous = assignment.get(var)
        truth = bool(sign)
        if previous is not None and previous != truth:
            raise ValueError(
                f"subset is inconsistent: variable {var} appears with both signs"
            )
        assignment[var] = truth
    return assignment


def assignment_to_subset(
    formula: NonMixedFormula, table: Table, assignment: Dict[str, bool]
) -> Table:
    """Lemma A.13, "only if": keep one witness tuple per satisfied clause.

    For every clause the assignment satisfies, keep the tuple of one
    satisfying literal; the result is consistent and has as many tuples as
    satisfied clauses.
    """
    keep: List[TupleId] = []
    for j, clause in enumerate(formula.clauses):
        want = clause.positive
        witness = next(
            (v for v in sorted(clause.variables) if assignment.get(v, False) == want),
            None,
        )
        if witness is not None:
            keep.append((j, witness))
    return table.subset(keep)
