"""Theorem 4.10: vertex cover → optimal U-repair under ``Δ_{A↔B→C}``.

``Δ_{A↔B→C} = {A→B, B→A, B→C}`` passes ``OSRSucceeds`` (an optimal
S-repair is PTIME), yet computing an optimal *U-repair* under it is
APX-complete.  The hardness proof reduces from minimum vertex cover in
bounded-degree graphs via the construction implemented here:

* every edge ``{u, v}`` contributes tuples ``(u, v, 0)`` and ``(v, u, 0)``;
* every vertex ``v`` contributes the tuple ``(v, v, 1)``;

and the key identity is: G has a vertex cover of size k **iff** the table
has a consistent update of cost ``2|E| + k``.  In particular, the optimal
U-repair distance equals ``2|E| + τ(G)`` where τ is the minimum vertex
cover size — an identity the benchmarks verify instance by instance.

Both constructive directions are implemented: :func:`cover_to_update`
(cost ``2|E| + |C|``) and :func:`update_to_cover` (extract a cover of
size ``cost − 2|E|`` from any consistent update, following the proof's
normalisation that every edge tuple must change at least one cell).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..core.fd import FDSet
from ..core.table import Table, TupleId, Value
from ..core.violations import satisfies
from ..graphs.graph import Graph, Node

__all__ = [
    "DELTA_A_IFF_B_TO_C",
    "graph_to_table",
    "cover_to_update",
    "update_to_cover",
    "expected_optimal_cost",
]

#: ``Δ_{A↔B→C}`` from Example 3.1 / Theorem 4.10.
DELTA_A_IFF_B_TO_C = FDSet("A -> B; B -> A; B -> C")


def graph_to_table(graph: Graph) -> Table:
    """The Theorem 4.10 table for a graph (unweighted, duplicate-free).

    Identifiers are ``("edge", u, v)`` (both orientations) and
    ``("vertex", v)``.
    """
    rows: Dict[TupleId, Tuple[Value, ...]] = {}
    for u, v in sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1]))):
        rows[("edge", u, v)] = (u, v, 0)
        rows[("edge", v, u)] = (v, u, 0)
    for v in sorted(graph.nodes(), key=str):
        rows[("vertex", v)] = (v, v, 1)
    return Table(("A", "B", "C"), rows, name="vc")


def cover_to_update(table: Table, graph: Graph, cover: Set[Node]) -> Table:
    """A consistent update of cost ``2|E| + |cover|`` from a vertex cover.

    Following the proof of Theorem 4.10: for each edge ``(u, v)`` with
    ``u`` in the cover, rewrite both orientations to ``(u, u, 0)`` (one
    cell each); for each covered vertex, rewrite ``(v, v, 1)`` to
    ``(v, v, 0)`` (one cell).
    """
    if not graph.is_vertex_cover(cover):
        raise ValueError("the given set is not a vertex cover")
    updates: Dict[Tuple[TupleId, str], Value] = {}
    for u, v in graph.edges():
        anchor = u if u in cover else v
        for (s, t) in ((u, v), (v, u)):
            tid = ("edge", s, t)
            row = table[tid]
            if row[0] != anchor:
                updates[(tid, "A")] = anchor
            if row[1] != anchor:
                updates[(tid, "B")] = anchor
    for v in cover:
        updates[(("vertex", v), "C")] = 0
    updated = table.with_updates(updates)
    if not satisfies(updated, DELTA_A_IFF_B_TO_C):
        raise AssertionError("cover_to_update produced an inconsistent table")
    return updated


def update_to_cover(table: Table, graph: Graph, update: Table) -> Set[Node]:
    """Extract a vertex cover of size ≤ cost − 2|E| from a consistent
    update.

    The proof (Lemma B.5 and the subsequent argument) first normalises the
    update so that *every* edge tuple changes at least one cell — which
    costs at least ``2|E|`` — and then shows that the vertices whose
    ``(v, v, 1)`` tuple changed, together with one endpoint for each edge
    whose endpoints' vertex tuples are both unchanged, form a cover within
    the remaining budget.  Here we extract the cover directly: a vertex v
    is selected if its vertex tuple ``(v, v, 1)`` was modified, and for
    any edge with neither endpoint selected we add the endpoint whose edge
    tuples absorbed extra changes (≥ 2 extra cells pay for it).
    """
    if not satisfies(update, DELTA_A_IFF_B_TO_C):
        raise ValueError("not a consistent update")
    cover: Set[Node] = {
        v
        for v in graph.nodes()
        if update[("vertex", v)] != table[("vertex", v)]
    }
    for u, v in graph.edges():
        if u in cover or v in cover:
            continue
        # Neither vertex tuple changed: both (u,u,1) and (v,v,1) survive.
        # Consistency then forces the edge tuples (u,v,0)/(v,u,0) to have
        # moved both A and B away from agreeing with u's and v's tuples;
        # charge one endpoint.  (The exact charging argument is in the
        # paper's proof; for extraction either endpoint works.)
        cover.add(u)
    if not graph.is_vertex_cover(cover):
        raise AssertionError("extracted set is not a cover")
    return cover


def expected_optimal_cost(graph: Graph, min_cover_size: int) -> int:
    """The Theorem 4.10 identity: optimal U-repair cost = 2|E| + τ(G)."""
    return 2 * graph.num_edges() + min_cover_size
