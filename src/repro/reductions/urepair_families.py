"""Theorem 4.14's embedding reductions (Lemmas B.6 and B.7).

The paper proves APX-completeness of optimal U-repairing for the §4.4
families by embedding known-hard instances:

* **Lemma B.6** — ``S(A,B,C)`` under ``{A→B, B→C}`` embeds into
  ``R(A0…Ak, B0…Bk, C)`` under ``Δ_k``: the tuple ``(a, b, c)`` becomes
  the R-tuple with ``A1 = a``, ``B0 = b``, ``C = c`` and 0 everywhere
  else.  The instance has a consistent update of distance ≤ M iff the
  embedded one does.
* **Lemma B.7** — ``Δ'_1`` instances over ``R(A0, A1, A2, B0, B1)``
  embed into ``Δ'_k`` for any k > 1 by padding every new attribute with
  the constant ⊙.  Distances are preserved exactly.

Both constructions are implemented verbatim so the cost-preservation
identities can be *measured* (benchmark E11/E18); on small instances the
exact solver confirms ``dist_upd`` is identical before and after each
embedding.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.fd import FDSet
from ..core.table import Table, TupleId, Value

__all__ = [
    "delta_k",
    "delta_prime_k",
    "DELTA_ABC_CHAIN",
    "embed_chain_into_delta_k",
    "embed_dp1_into_dpk",
    "PAD",
]

#: The hard source FD set of Lemma B.6 (Kolahi–Lakshmanan's instance).
DELTA_ABC_CHAIN = FDSet("A -> B; B -> C")

#: The padding constant ⊙ of Lemma B.7.
PAD = "⊙"


def delta_k(k: int) -> FDSet:
    """``Δ_k = {A0…Ak → B0, B0 → C, B1 → A0, …, Bk → A0}`` (§4.4)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    lhs = " ".join(f"A{i}" for i in range(k + 1))
    parts = [f"{lhs} -> B0", "B0 -> C"]
    parts += [f"B{i} -> A0" for i in range(1, k + 1)]
    return FDSet("; ".join(parts))


def delta_prime_k(k: int) -> FDSet:
    """``Δ'_k = {A0A1 → B0, …, AkAk+1 → Bk}`` (§4.4)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return FDSet("; ".join(f"A{i} A{i+1} -> B{i}" for i in range(k + 1)))


def delta_k_schema(k: int) -> Tuple[str, ...]:
    return tuple(
        [f"A{i}" for i in range(k + 1)] + [f"B{i}" for i in range(k + 1)] + ["C"]
    )


def delta_prime_k_schema(k: int) -> Tuple[str, ...]:
    return tuple(
        [f"A{i}" for i in range(k + 2)] + [f"B{i}" for i in range(k + 1)]
    )


def embed_chain_into_delta_k(table: Table, k: int) -> Table:
    """Lemma B.6: a ``{A→B, B→C}`` table becomes a ``Δ_k`` table.

    ``(a, b, c) ↦ (0, a, 0, …, 0 | b, 0, …, 0 | c)`` — value *a* lands in
    A1, *b* in B0, *c* in C, and every other attribute carries the
    constant 0.  Identifiers and weights are preserved, so optimal
    U-repair distances coincide (the proof normalises any Δ_k-repair so
    that only A1/B0/C cells change).
    """
    if table.schema != ("A", "B", "C"):
        raise ValueError(f"expected schema (A, B, C), got {table.schema}")
    schema = delta_k_schema(k)
    index = {attr: i for i, attr in enumerate(schema)}
    rows: Dict[TupleId, Tuple[Value, ...]] = {}
    for tid, (a, b, c), _w in table.tuples():
        row = [0] * len(schema)
        row[index["A1"]] = a
        row[index["B0"]] = b
        row[index["C"]] = c
        rows[tid] = tuple(row)
    return Table(schema, rows, table.weights(), name=f"delta_{k}")


def embed_dp1_into_dpk(table: Table, k: int) -> Table:
    """Lemma B.7: a ``Δ'_1`` table becomes a ``Δ'_k`` table (k > 1).

    Values of ``A0, A1, A2, B0, B1`` are kept; every new attribute is the
    constant ⊙.  All new FDs are vacuously satisfied (every tuple agrees
    on their rhs), so consistent updates correspond one-to-one and the
    distances are equal.
    """
    if k <= 1:
        raise ValueError("the embedding targets k > 1")
    source_schema = delta_prime_k_schema(1)
    if table.schema != source_schema:
        raise ValueError(
            f"expected schema {source_schema}, got {table.schema}"
        )
    schema = delta_prime_k_schema(k)
    keep = set(source_schema)
    rows: Dict[TupleId, Tuple[Value, ...]] = {}
    for tid, row, _w in table.tuples():
        values = dict(zip(source_schema, row))
        rows[tid] = tuple(
            values[attr] if attr in keep else PAD for attr in schema
        )
    return Table(schema, rows, table.weights(), name=f"delta_prime_{k}")
