"""Edge-disjoint triangle packing and Lemma A.11's reduction.

Lemma A.11 proves APX-completeness of optimal S-repairing under
``Δ_{AB↔AC↔BC} = {AB→C, AC→B, BC→A}`` by reduction from MECT-B — maximum
edge-disjoint triangles in a bounded-degree tripartite graph (Amini,
Pérennes & Sau [3]).  The reduction itself is delightfully direct: each
triangle ``(a_i, b_j, c_k)`` becomes the tuple ``(a_i, b_j, c_k)``, and a
subset of tuples is consistent iff the corresponding triangles are
pairwise edge-disjoint.

This module implements:

* :class:`TripartiteGraph` — with triangle enumeration;
* :func:`max_edge_disjoint_triangles` — an exact branch & bound packing
  solver (baseline for small instances);
* :func:`triangles_to_table` / :func:`subset_to_packing` — the two
  directions of Lemma A.11;
* :func:`amini_gadget` — a reconstruction of the 13-triangle chain gadget
  of Figure 5: thirteen triangles T1…T13 in which consecutive triangles
  share exactly one edge, so the six even-indexed triangles are pairwise
  edge-disjoint (≥ 6/13 of all triangles are packable — the property the
  paper's Lemma A.9/A.10 analysis relies on).  The published figure's
  exact edge list is not reproduced in the paper text, so this is a
  faithful-by-property reconstruction (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.dichotomy import DELTA_TRIANGLE
from ..core.fd import FDSet
from ..core.table import Table, TupleId

__all__ = [
    "Triangle",
    "TripartiteGraph",
    "max_edge_disjoint_triangles",
    "triangles_to_table",
    "subset_to_packing",
    "packing_to_subset",
    "amini_gadget",
    "TRIANGLE_FDS",
]

#: The FD set of Lemma A.11 (an alias of Table 1's ``Δ_{AB↔AC↔BC}``).
TRIANGLE_FDS: FDSet = DELTA_TRIANGLE

Triangle = Tuple[str, str, str]


def _edges_of(triangle: Triangle) -> FrozenSet[FrozenSet[str]]:
    a, b, c = triangle
    return frozenset((frozenset((a, b)), frozenset((a, c)), frozenset((b, c))))


@dataclass
class TripartiteGraph:
    """A tripartite graph with parts A, B, C and an undirected edge set."""

    part_a: Tuple[str, ...]
    part_b: Tuple[str, ...]
    part_c: Tuple[str, ...]
    edges: Set[FrozenSet[str]] = field(default_factory=set)

    def __post_init__(self) -> None:
        parts = (set(self.part_a), set(self.part_b), set(self.part_c))
        if parts[0] & parts[1] or parts[0] & parts[2] or parts[1] & parts[2]:
            raise ValueError("parts must be disjoint")
        self._membership: Dict[str, int] = {}
        for index, part in enumerate(parts):
            for node in part:
                self._membership[node] = index
        for edge in self.edges:
            self._check_edge(edge)

    def _check_edge(self, edge: FrozenSet[str]) -> None:
        u, v = tuple(edge)
        if self._membership[u] == self._membership[v]:
            raise ValueError(f"edge {set(edge)} stays inside one part")

    def add_edge(self, u: str, v: str) -> None:
        edge = frozenset((u, v))
        self._check_edge(edge)
        self.edges.add(edge)

    def add_triangle(self, a: str, b: str, c: str) -> None:
        self.add_edge(a, b)
        self.add_edge(a, c)
        self.add_edge(b, c)

    def max_degree(self) -> int:
        degree: Dict[str, int] = {}
        for edge in self.edges:
            for node in edge:
                degree[node] = degree.get(node, 0) + 1
        return max(degree.values(), default=0)

    def triangles(self) -> List[Triangle]:
        """All triangles (one node per part), in deterministic order."""
        out: List[Triangle] = []
        for a in self.part_a:
            for b in self.part_b:
                if frozenset((a, b)) not in self.edges:
                    continue
                for c in self.part_c:
                    if (
                        frozenset((a, c)) in self.edges
                        and frozenset((b, c)) in self.edges
                    ):
                        out.append((a, b, c))
        return out


def max_edge_disjoint_triangles(
    triangles: Sequence[Triangle], limit: int = 40
) -> List[Triangle]:
    """An optimum edge-disjoint triangle packing (exact branch & bound).

    Intended as the baseline on the small instances used in tests and
    benchmarks; raises ``ValueError`` beyond *limit* triangles.
    """
    if len(triangles) > limit:
        raise ValueError(
            f"exact packing limited to {limit} triangles, got {len(triangles)}"
        )
    edge_sets = [_edges_of(t) for t in triangles]
    best: List[int] = []

    def branch(index: int, used_edges: FrozenSet[FrozenSet[str]], chosen: List[int]) -> None:
        nonlocal best
        remaining = len(triangles) - index
        if len(chosen) + remaining <= len(best):
            return
        if index == len(triangles):
            if len(chosen) > len(best):
                best = list(chosen)
            return
        # Include triangle `index` if edge-disjoint from the chosen ones.
        if not (edge_sets[index] & used_edges):
            chosen.append(index)
            branch(index + 1, used_edges | edge_sets[index], chosen)
            chosen.pop()
        branch(index + 1, used_edges, chosen)

    branch(0, frozenset(), [])
    return [triangles[i] for i in best]


def triangles_to_table(triangles: Sequence[Triangle]) -> Table:
    """Lemma A.11's construction: one tuple per triangle.

    The resulting (unweighted, duplicate-free) table over ``R(A, B, C)``
    has consistent subsets under ``Δ_{AB↔AC↔BC}`` in 1–1 correspondence
    with edge-disjoint triangle sets.
    """
    rows: Dict[TupleId, Triangle] = {t: t for t in triangles}
    if len(rows) != len(triangles):
        raise ValueError("duplicate triangles in input")
    return Table(("A", "B", "C"), rows, name="triangles")


def subset_to_packing(subset: Table) -> List[Triangle]:
    """Read an edge-disjoint packing off a consistent subset."""
    triangles = [tuple(subset[tid]) for tid in subset.ids()]
    used: Set[FrozenSet[str]] = set()
    for t in triangles:
        edges = _edges_of(t)  # type: ignore[arg-type]
        if edges & used:
            raise ValueError(f"subset is not edge-disjoint at triangle {t}")
        used |= edges
    return triangles  # type: ignore[return-value]


def packing_to_subset(table: Table, packing: Sequence[Triangle]) -> Table:
    """Keep exactly the tuples of a given packing (in table order)."""
    return table.subset(set(packing))


def amini_gadget(
    x: Tuple[str, str],
    y: Tuple[str, str],
    z: Tuple[str, str],
    tag: str = "g",
) -> List[Triangle]:
    """A 13-triangle chain gadget in the style of Figure 5.

    Builds triangles T1…T13 over three parts such that consecutive
    triangles share exactly one edge and non-consecutive ones share at
    most one vertex.  The element pairs *x*, *y*, *z* are embedded in
    T1, T7 and T13 respectively, mirroring how the Amini et al. gadget
    hooks a 3-set ``(x, y, z)`` into the global graph.  Selecting the six
    even triangles is always possible (they are pairwise edge-disjoint);
    selecting the seven odd ones covers the x/y/z edges — the packing
    dichotomy that drives the reduction.

    Returns the triangles; part membership is positional
    (``a``-part, ``b``-part, ``c``-part).
    """
    # Fresh internal nodes a{tag}[i]; x, y, z pairs sit in the b/c parts of
    # triangles T1, T7, T13.
    p = [f"{tag}.p{i}" for i in range(1, 6)]  # a-part nodes p1..p5
    q = [f"{tag}.q{i}" for i in range(1, 6)]  # b-part nodes q1..q5
    r = [f"{tag}.r{i}" for i in range(1, 6)]  # c-part nodes r1..r5
    # Embed the endpoint pairs.
    q[0], r[0] = x  # T1 carries the x-pair
    q[2], r[2] = y  # T7 carries the y-pair
    q[4], r[4] = z  # T13 carries the z-pair

    triangles: List[Triangle] = []
    pi, qi, ri = 0, 0, 0
    triangles.append((p[pi], q[qi], r[ri]))  # T1
    # Rotate which coordinate is refreshed: a, b, c, a, b, c, …
    for step in range(2, 14):
        coordinate = (step - 2) % 3
        if coordinate == 0:
            pi += 1
        elif coordinate == 1:
            qi += 1
        else:
            ri += 1
        triangles.append((p[pi], q[qi], r[ri]))
    assert len(triangles) == 13
    return triangles
