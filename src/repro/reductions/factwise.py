"""Fact-wise reductions (Section 3.3 and Appendix A.2.2).

A *fact-wise reduction* from ``(R, Δ)`` to ``(R′, Δ′)`` is an injective,
polynomial-time tuple mapping Π that preserves consistency and
inconsistency of tuple pairs.  It induces a strict reduction between the
corresponding optimal-S-repair problems (Lemma 3.7): apply Π tuple-wise,
keep identifiers and weights, repair, and pull the kept identifiers back.

This module implements, as executable objects, every fact-wise reduction
in the paper's hardness proof:

* Lemma A.14 — class 1 stuck sets, from ``Δ_{A→C←B}``;
* Lemma A.15 — class 2/3 stuck sets, from ``Δ_{A→B→C}``;
* Lemma A.16 — class 4 stuck sets (three local minima), from
  ``Δ_{AB↔AC↔BC}``;
* Lemma A.17 — class 5 stuck sets, from ``Δ_{AB→C→B}``;
* Lemma A.18 — attribute erasure: from ``(R, Δ−X)`` to ``(R, Δ)`` (the
  glue that lifts hardness back through Algorithm 2's simplifications).

Composite values such as ⟨a, c⟩ are modelled as tagged tuples
``("<>", a, c)``: hashable, and injective in their components.  The
special constant ⊙ is the singleton :data:`DOT`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.dichotomy import (
    DELTA_A_B_C,
    DELTA_A_C_B,
    DELTA_AB_C_B,
    DELTA_TRIANGLE,
    HardnessWitness,
)
from ..core.fd import AttrSet, FDSet
from ..core.table import Table, Value

__all__ = [
    "DOT",
    "FactwiseReduction",
    "class1_reduction",
    "class23_reduction",
    "class4_reduction",
    "class5_reduction",
    "erasure_reduction",
    "reduction_for_witness",
]

#: The constant ⊙ used by the paper's tuple mappings.
DOT = "⊙"


def _pair(*values: Value) -> Value:
    """The composite value ⟨v1, …, vn⟩ as a tagged, hashable tuple."""
    return ("<>",) + values


@dataclass(frozen=True)
class FactwiseReduction:
    """A concrete fact-wise reduction Π from ``(source_schema, source_fds)``
    to ``(target_schema, target_fds)``.

    ``map_tuple`` realises Π on a single tuple; :meth:`map_table` lifts it
    to tables, preserving identifiers and weights, which makes the induced
    S-repair reduction *strict* (Lemma 3.7).
    """

    name: str
    source_schema: Tuple[str, ...]
    source_fds: FDSet
    target_schema: Tuple[str, ...]
    target_fds: FDSet
    mapper: Callable[[Tuple[Value, ...]], Tuple[Value, ...]]

    def map_tuple(self, row: Sequence[Value]) -> Tuple[Value, ...]:
        if len(row) != len(self.source_schema):
            raise ValueError(
                f"tuple arity {len(row)} does not match source schema "
                f"{self.source_schema}"
            )
        return self.mapper(tuple(row))

    def map_table(self, table: Table) -> Table:
        if table.schema != self.source_schema:
            raise ValueError(
                f"table schema {table.schema} does not match source schema "
                f"{self.source_schema}"
            )
        rows = {tid: self.map_tuple(table[tid]) for tid in table.ids()}
        return Table(self.target_schema, rows, table.weights(), name=table.name)

    def pull_back(self, table: Table, repaired: Table) -> Table:
        """Translate a repair of Π(T) back to a repair of T (same ids)."""
        return table.subset(repaired.ids())


def _attr_mapper(
    schema: Sequence[str],
    cases: Sequence[Tuple[AttrSet, Callable[[Value, Value, Value], Value]]],
    fallback: Callable[[Value, Value, Value], Value],
) -> Callable[[Tuple[Value, ...]], Tuple[Value, ...]]:
    """Build a Π over R(A,B,C) → R(schema) from per-attribute case rules.

    *cases* is an ordered list of (attribute-set, value-builder) pairs;
    the first set containing the attribute wins, else *fallback* applies.
    """
    builders = []
    for attr in schema:
        chosen = fallback
        for attrs, builder in cases:
            if attr in attrs:
                chosen = builder
                break
        builders.append(chosen)

    def mapper(row: Tuple[Value, ...]) -> Tuple[Value, ...]:
        a, b, c = row
        return tuple(build(a, b, c) for build in builders)

    return mapper


def class1_reduction(
    schema: Sequence[str], fds: FDSet, x1: AttrSet, x2: AttrSet
) -> FactwiseReduction:
    """Lemma A.14: Π from ``(R(A,B,C), Δ_{A→C←B})`` to ``(R, Δ)``.

    Requires local minima X1, X2 with ``X̂1 ∩ cl(X2) = ∅`` and
    ``X̂2 ∩ cl(X1) = ∅`` (class 1 of Figure 2).
    """
    fds = fds.with_singleton_rhs().without_trivial()
    cl1, cl2 = fds.closure(x1), fds.closure(x2)
    cases = [
        (x1 & x2, lambda a, b, c: DOT),
        (x1 - x2, lambda a, b, c: a),
        (x2 - x1, lambda a, b, c: b),
        (cl1 - x1, lambda a, b, c: _pair(a, c)),
        (cl2 - x2, lambda a, b, c: _pair(b, c)),
    ]
    return FactwiseReduction(
        name="Lemma A.14 (class 1)",
        source_schema=("A", "B", "C"),
        source_fds=DELTA_A_C_B,
        target_schema=tuple(schema),
        target_fds=fds,
        mapper=_attr_mapper(schema, cases, lambda a, b, c: _pair(a, b)),
    )


def class23_reduction(
    schema: Sequence[str], fds: FDSet, x1: AttrSet, x2: AttrSet
) -> FactwiseReduction:
    """Lemma A.15: Π from ``(R(A,B,C), Δ_{A→B→C})`` to ``(R, Δ)``.

    Covers class 2 (``X̂1 ∩ X̂2 ≠ ∅``, ``X̂1 ∩ X2 = ∅``, ``X̂2 ∩ X1 = ∅``)
    and class 3 (``X̂1 ∩ X2 ≠ ∅``, ``X̂2 ∩ X1 = ∅``).
    """
    fds = fds.with_singleton_rhs().without_trivial()
    cl1, cl2 = fds.closure(x1), fds.closure(x2)
    cases = [
        (x1 & x2, lambda a, b, c: DOT),
        (x1 - x2, lambda a, b, c: a),
        (x2 - x1, lambda a, b, c: b),
        ((cl1 - x1) - cl2, lambda a, b, c: _pair(a, c)),
        (cl2 - x2, lambda a, b, c: _pair(b, c)),
    ]
    return FactwiseReduction(
        name="Lemma A.15 (classes 2–3)",
        source_schema=("A", "B", "C"),
        source_fds=DELTA_A_B_C,
        target_schema=tuple(schema),
        target_fds=fds,
        mapper=_attr_mapper(schema, cases, lambda a, b, c: a),
    )


def class4_reduction(
    schema: Sequence[str], fds: FDSet, x1: AttrSet, x2: AttrSet, x3: AttrSet
) -> FactwiseReduction:
    """Lemma A.16: Π from ``(R(A,B,C), Δ_{AB↔AC↔BC})`` to ``(R, Δ)``.

    Requires three distinct local minima X1, X2, X3.
    """
    fds = fds.with_singleton_rhs().without_trivial()
    cases = [
        (x1 & x2 & x3, lambda a, b, c: DOT),
        ((x1 & x2) - x3, lambda a, b, c: a),
        ((x1 & x3) - x2, lambda a, b, c: b),
        ((x2 & x3) - x1, lambda a, b, c: c),
        ((x1 - x2) - x3, lambda a, b, c: _pair(a, b)),
        ((x2 - x1) - x3, lambda a, b, c: _pair(a, c)),
        ((x3 - x1) - x2, lambda a, b, c: _pair(b, c)),
    ]
    return FactwiseReduction(
        name="Lemma A.16 (class 4)",
        source_schema=("A", "B", "C"),
        source_fds=DELTA_TRIANGLE,
        target_schema=tuple(schema),
        target_fds=fds,
        mapper=_attr_mapper(schema, cases, lambda a, b, c: _pair(a, b, c)),
    )


def class5_reduction(
    schema: Sequence[str], fds: FDSet, x1: AttrSet, x2: AttrSet
) -> FactwiseReduction:
    """Lemma A.17: Π from ``(R(A,B,C), Δ_{AB→C→B})`` to ``(R, Δ)``.

    Requires ``X̂1 ∩ X2 ≠ ∅``, ``X̂2 ∩ X1 ≠ ∅`` and
    ``(X2 ∖ X1) ⊄ X̂1`` (class 5 of Figure 2).
    """
    fds = fds.with_singleton_rhs().without_trivial()
    hat1 = fds.closure(x1) - x1
    cases = [
        (x1 & x2, lambda a, b, c: DOT),
        (x1 - x2, lambda a, b, c: c),
        ((x2 - x1) & hat1, lambda a, b, c: b),
        ((x2 - x1) - hat1, lambda a, b, c: _pair(a, b)),
        (hat1 - (x2 - x1), lambda a, b, c: _pair(b, c)),
    ]
    return FactwiseReduction(
        name="Lemma A.17 (class 5)",
        source_schema=("A", "B", "C"),
        source_fds=DELTA_AB_C_B,
        target_schema=tuple(schema),
        target_fds=fds,
        mapper=_attr_mapper(schema, cases, lambda a, b, c: _pair(a, b, c)),
    )


def erasure_reduction(
    schema: Sequence[str], fds: FDSet, erased: AttrSet
) -> FactwiseReduction:
    """Lemma A.18: Π from ``(R, Δ−X)`` to ``(R, Δ)``.

    Maps every erased attribute to ⊙ and keeps the rest; this lifts
    hardness of a simplified FD set back to the original one (Lemmas
    A.19–A.21 are the three instantiations for common lhs, consensus, and
    lhs marriage).
    """
    schema = tuple(schema)
    erased_idx = {i for i, attr in enumerate(schema) if attr in erased}

    def mapper(row: Tuple[Value, ...]) -> Tuple[Value, ...]:
        return tuple(
            DOT if i in erased_idx else value for i, value in enumerate(row)
        )

    return FactwiseReduction(
        name=f"Lemma A.18 (erase {{{' '.join(sorted(erased))}}})",
        source_schema=schema,
        source_fds=fds.minus(erased),
        target_schema=schema,
        target_fds=fds,
        mapper=mapper,
    )


def reduction_for_witness(
    schema: Sequence[str], fds: FDSet, witness: HardnessWitness
) -> FactwiseReduction:
    """The fact-wise reduction matching a dichotomy hardness witness.

    *fds* must be the stuck (residual) FD set the witness classifies; the
    returned reduction maps from the witness's Table 1 source FD set over
    ``R(A, B, C)``.
    """
    if witness.class_id == 1:
        return class1_reduction(schema, fds, witness.x1, witness.x2)
    if witness.class_id in (2, 3):
        return class23_reduction(schema, fds, witness.x1, witness.x2)
    if witness.class_id == 4:
        assert witness.x3 is not None
        return class4_reduction(schema, fds, witness.x1, witness.x2, witness.x3)
    if witness.class_id == 5:
        return class5_reduction(schema, fds, witness.x1, witness.x2)
    raise ValueError(f"unknown class id {witness.class_id}")
