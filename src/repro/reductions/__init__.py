"""Executable hardness constructions from the paper's appendix.

* :mod:`repro.reductions.factwise` — fact-wise reductions
  (Lemmas A.14–A.18), the glue of the dichotomy's hardness side;
* :mod:`repro.reductions.sat` — MAX-non-mixed-SAT → ``Δ_{AB→C→B}``
  (Lemma A.13);
* :mod:`repro.reductions.triangles` — edge-disjoint triangle packing →
  ``Δ_{AB↔AC↔BC}`` (Lemma A.11, Figure 5 gadget);
* :mod:`repro.reductions.vc_upd` — vertex cover → U-repair under
  ``Δ_{A↔B→C}`` (Theorem 4.10).
"""

from .factwise import (
    DOT,
    FactwiseReduction,
    class1_reduction,
    class23_reduction,
    class4_reduction,
    class5_reduction,
    erasure_reduction,
    reduction_for_witness,
)
from .sat import (
    SAT_FDS,
    Clause,
    NonMixedFormula,
    assignment_to_subset,
    brute_force_max_sat,
    formula_to_table,
    subset_to_assignment,
)
from .triangles import (
    TRIANGLE_FDS,
    Triangle,
    TripartiteGraph,
    amini_gadget,
    max_edge_disjoint_triangles,
    packing_to_subset,
    subset_to_packing,
    triangles_to_table,
)
from .urepair_families import (
    DELTA_ABC_CHAIN,
    PAD,
    delta_k,
    delta_prime_k,
    embed_chain_into_delta_k,
    embed_dp1_into_dpk,
)
from .vc_upd import (
    DELTA_A_IFF_B_TO_C,
    cover_to_update,
    expected_optimal_cost,
    graph_to_table,
    update_to_cover,
)

__all__ = [
    "DOT", "FactwiseReduction", "class1_reduction", "class23_reduction",
    "class4_reduction", "class5_reduction", "erasure_reduction",
    "reduction_for_witness",
    "SAT_FDS", "Clause", "NonMixedFormula", "assignment_to_subset",
    "brute_force_max_sat", "formula_to_table", "subset_to_assignment",
    "TRIANGLE_FDS", "Triangle", "TripartiteGraph", "amini_gadget",
    "max_edge_disjoint_triangles", "packing_to_subset", "subset_to_packing",
    "triangles_to_table",
    "DELTA_ABC_CHAIN", "PAD", "delta_k", "delta_prime_k",
    "embed_chain_into_delta_k", "embed_dp1_into_dpk",
    "DELTA_A_IFF_B_TO_C", "cover_to_update", "expected_optimal_cost",
    "graph_to_table", "update_to_cover",
]
