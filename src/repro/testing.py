"""Shared test/benchmark substrate: paper FD sets and data helpers.

Both ``tests/conftest.py`` and ``benchmarks/conftest.py`` re-export from
this module, and test modules import it directly (``from repro.testing
import random_small_table``).  Keeping the helpers inside the installable
package — rather than in a conftest — avoids the classic rootdir trap
where ``from conftest import …`` resolves to *whichever* conftest pytest
put on ``sys.path`` first (the seed suite imported ``benchmarks/conftest``
from inside ``tests/`` and failed collection).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .core.fd import FDSet
from .core.table import Table

__all__ = [
    "DELTA_A_IFF_B_TO_C",
    "DELTA_SSN",
    "EXAMPLE_38",
    "random_small_table",
    "print_table",
]


# FD sets referenced repeatedly in the paper -------------------------------

#: Example 3.1's ``Δ_{A↔B→C}``.
DELTA_A_IFF_B_TO_C = FDSet("A -> B; B -> A; B -> C")

#: Example 3.1's Δ1 over the ssn schema.
DELTA_SSN = FDSet(
    "ssn -> first; ssn -> last; first last -> ssn; ssn -> address; "
    "ssn office -> phone; ssn office -> fax"
)

#: Example 3.8's class representatives Δ1–Δ5.
EXAMPLE_38 = {
    1: FDSet("A -> B; C -> D"),
    2: FDSet("A -> C D; B -> C E"),
    3: FDSet("A -> B C; B -> D"),
    4: FDSet("A B -> C; A C -> B; B C -> A"),
    5: FDSet("A B -> C; C -> A D"),
}


def random_small_table(
    rng: random.Random,
    schema,
    size: int,
    domain: int = 3,
    weighted: bool = False,
) -> Table:
    """A small uniform-random table for cross-checking solvers."""
    rows = [
        tuple(f"v{rng.randrange(domain)}" for _ in schema) for _ in range(size)
    ]
    weights = (
        [float(rng.choice((1, 1, 2, 3))) for _ in range(size)]
        if weighted
        else None
    )
    return Table.from_rows(schema, rows, weights)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render a small fixed-width results table (paper-style)."""
    rows = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
